//! Incremental entailment sessions: encode once, answer by assumptions.
//!
//! Reiter-style query answering (the paper's §3.3) is pure entailment:
//! *certain* truths hold in every alternative world, *possible* truths in
//! some. Both reduce to SAT over the theory's clause form — but a naive
//! implementation re-runs the Tseitin conversion of the entire
//! non-axiomatic section and builds a brand-new CDCL solver for every
//! single question. An [`EntailmentSession`] keeps one solver alive
//! instead:
//!
//! * the theory's *base* wffs are encoded **once** as permanent clauses
//!   ([`EntailmentSession::assert_base`]);
//! * each query wff is Tseitin-encoded to an **activation literal**
//!   ([`EntailmentSession::literal_for`]); the definitional clauses
//!   (`v ↔ subformula`) are pure auxiliary-variable definitions that never
//!   constrain the atom variables, so they can be added permanently and the
//!   wff asserted or denied per query purely through assumptions;
//! * `consistent_with(w)` is one [`Solver::solve_with`] call under
//!   `[lit(w)]`, `entails(w)` one call under `[¬lit(w)]` — and the learnt
//!   clauses from every call stay alive for the next one.
//!
//! Activation literals are cached per wff, so asking the same question
//! twice (or asking `consistent_with` and `entails` of the same wff, the
//! query engine's standard pair) encodes nothing the second time.

use crate::cnf::Tseitin;
use crate::sat::{Lit, SatResult, Solver};
use crate::Wff;
use rustc_hash::FxHashMap;

/// Counters describing the work a session has performed (and avoided).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SessionStats {
    /// Base wffs asserted as permanent clauses.
    pub base_wffs: u64,
    /// Query wffs freshly Tseitin-encoded to an activation literal.
    pub encoded_wffs: u64,
    /// Query wffs answered from the activation-literal cache — each one an
    /// entire theory re-encoding the legacy path would have paid.
    pub encode_reuse_hits: u64,
    /// `solve_with` calls issued.
    pub assumption_solves: u64,
}

/// A persistent incremental entailment engine over a fixed atom universe.
///
/// ```
/// use winslett_logic::{AtomId, EntailmentSession, Wff};
///
/// let a = Wff::Atom(AtomId(0));
/// let b = Wff::Atom(AtomId(1));
/// let mut s = EntailmentSession::new(2);
/// s.assert_base(&a);                       // theory: { a }
/// assert!(s.entails(&a));
/// assert!(!s.entails(&b));
/// assert!(s.consistent_with(&b));          // b is possible
/// assert!(s.consistent_with(&b.clone().not()));
/// assert!(s.entails(&Wff::or2(a, b)));     // a ⊨ a ∨ b
/// ```
pub struct EntailmentSession {
    ts: Tseitin,
    solver: Solver,
    /// Activation literal of every wff encoded so far.
    lits: FxHashMap<Wff, Lit>,
    stats: SessionStats,
}

impl EntailmentSession {
    /// Creates a session over a universe of `num_atoms` ground atoms with
    /// an empty base — useful for pure formula-level work (validity,
    /// equivalence) where there is no theory to hold fixed.
    pub fn new(num_atoms: usize) -> Self {
        EntailmentSession {
            ts: Tseitin::new(num_atoms),
            solver: Solver::new(num_atoms),
            lits: FxHashMap::default(),
            stats: SessionStats::default(),
        }
    }

    /// Creates a session and asserts every wff in `base` permanently.
    pub fn with_base<'a, I>(num_atoms: usize, base: I) -> Self
    where
        I: IntoIterator<Item = &'a Wff>,
    {
        let mut s = Self::new(num_atoms);
        for w in base {
            s.assert_base(w);
        }
        s
    }

    /// The size of the ground-atom universe.
    pub fn num_atoms(&self) -> usize {
        self.ts.num_atoms()
    }

    /// Work counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Clauses the solver has learnt and retained across queries.
    pub fn learned_retained(&self) -> u64 {
        self.solver.learnt_clauses
    }

    /// Direct access to the underlying solver, for incremental algorithms
    /// (backbone extraction, model enumeration) that want to share the
    /// session's clause database and learnt clauses. Adding clauses through
    /// it is safe as long as they are consequences of (or definitions over)
    /// the base — query activation literals must stay unconstrained.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Flushes clauses accumulated in the encoder into the solver.
    fn flush(&mut self) {
        self.solver.ensure_vars(self.ts.num_vars());
        for c in self.ts.take_clauses() {
            if !self.solver.add_clause(&c) {
                // Root-level conflict: only base clauses can cause this
                // (definitional clauses always contain a fresh unassigned
                // variable). The solver remembers; every later answer is
                // the inconsistent-theory answer.
                break;
            }
        }
    }

    /// Asserts `wff` as a permanent part of the base theory.
    pub fn assert_base(&mut self, wff: &Wff) {
        self.ts.assert_true(wff);
        self.stats.base_wffs += 1;
        self.flush();
    }

    /// The activation literal of `wff`: encoded on first sight, cached
    /// afterwards. Assuming the literal asserts the wff for one solve;
    /// assuming its negation denies it.
    pub fn literal_for(&mut self, wff: &Wff) -> Lit {
        if let Some(&l) = self.lits.get(wff) {
            self.stats.encode_reuse_hits += 1;
            return l;
        }
        let l = self.ts.encode(wff);
        self.flush();
        self.stats.encoded_wffs += 1;
        self.lits.insert(wff.clone(), l);
        l
    }

    /// Raw assumption solve, counted in the stats.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SatResult {
        self.stats.assumption_solves += 1;
        self.solver.solve_with(assumptions)
    }

    /// Whether the base plus the assumptions is satisfiable.
    pub fn satisfiable_under(&mut self, assumptions: &[Lit]) -> bool {
        self.solve_under(assumptions).is_sat()
    }

    /// Whether the base itself is satisfiable.
    pub fn is_consistent(&mut self) -> bool {
        self.satisfiable_under(&[])
    }

    /// Whether some model of the base satisfies `wff` (possible truth).
    pub fn consistent_with(&mut self, wff: &Wff) -> bool {
        let l = self.literal_for(wff);
        self.satisfiable_under(&[l])
    }

    /// Whether `wff` is satisfiable together with the base. Over an empty
    /// base this is plain propositional satisfiability — the formula-level
    /// reading used by the analyzer and the equivalence theorems.
    pub fn satisfiable(&mut self, wff: &Wff) -> bool {
        self.consistent_with(wff)
    }

    /// Whether every model of the base satisfies `wff` (certain truth).
    /// Vacuously true over an inconsistent base, matching the fresh-solver
    /// semantics.
    pub fn entails(&mut self, wff: &Wff) -> bool {
        let l = self.literal_for(wff);
        !self.satisfiable_under(&[l.negate()])
    }

    /// Whether `wff` is valid — true under every assignment. Only
    /// meaningful over an empty base (formula-level sessions); over a
    /// non-empty base it coincides with [`EntailmentSession::entails`].
    pub fn valid(&mut self, wff: &Wff) -> bool {
        self.entails(wff)
    }

    /// The standard query pair `(possible, certain)` for one wff: whether
    /// some model of the base satisfies it, and whether every model does.
    /// One activation literal, at most two assumption solves — certainty
    /// is only probed when the wff is possible, so an inconsistent base
    /// answers `(false, false)` exactly like the fresh-solver convention
    /// the query engine and snapshot readers rely on.
    pub fn decide(&mut self, wff: &Wff) -> (bool, bool) {
        let l = self.literal_for(wff);
        let possible = self.satisfiable_under(&[l]);
        let certain = possible && !self.satisfiable_under(&[l.negate()]);
        (possible, certain)
    }

    /// Whether two wffs are logically equivalent (over the base; with an
    /// empty base, plain logical equivalence).
    pub fn equivalent(&mut self, a: &Wff, b: &Wff) -> bool {
        let la = self.literal_for(a);
        let lb = self.literal_for(b);
        !self.satisfiable_under(&[la, lb.negate()]) && !self.satisfiable_under(&[la.negate(), lb])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cnf, AtomId, Formula};

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    #[test]
    fn matches_fresh_solver_on_basics() {
        // Base: a, a → b. Universe of 3.
        let base = [a(0), Wff::implies(a(0), a(1))];
        let mut s = EntailmentSession::with_base(3, base.iter());
        assert!(s.is_consistent());
        assert!(s.entails(&a(0)));
        assert!(s.entails(&a(1))); // modus ponens
        assert!(!s.entails(&a(2)));
        assert!(s.consistent_with(&a(2)));
        assert!(s.consistent_with(&a(2).not()));
        assert!(!s.consistent_with(&a(0).not()));
        // Cross-check against the one-shot path.
        let refs: Vec<&Wff> = base.iter().collect();
        for w in [
            a(0),
            a(1),
            a(2),
            Wff::or2(a(1), a(2)),
            Wff::and2(a(0), a(2)),
        ] {
            assert_eq!(s.entails(&w), cnf::entails(&refs, &w, 3), "{w:?}");
            let mut with = base.to_vec();
            with.push(w.clone());
            let with_refs: Vec<&Wff> = with.iter().collect();
            assert_eq!(
                s.consistent_with(&w),
                cnf::satisfiable(&with_refs, 3),
                "{w:?}"
            );
        }
    }

    #[test]
    fn inconsistent_base_answers_like_fresh_solvers() {
        let base = [a(0), a(0).not()];
        let mut s = EntailmentSession::with_base(2, base.iter());
        assert!(!s.is_consistent());
        // Everything is entailed, nothing is consistent — exactly the
        // fresh-solver convention.
        assert!(s.entails(&a(1)));
        assert!(s.entails(&a(1).not()));
        assert!(!s.consistent_with(&a(1)));
        assert!(!s.consistent_with(&Wff::t()));
    }

    #[test]
    fn base_added_after_queries_still_counts() {
        let mut s = EntailmentSession::new(2);
        assert!(!s.entails(&a(0)));
        s.assert_base(&a(0));
        assert!(s.entails(&a(0)));
        assert!(!s.consistent_with(&a(0).not()));
    }

    #[test]
    fn activation_literals_are_cached() {
        let mut s = EntailmentSession::with_base(2, [a(0)].iter());
        let w = Wff::or2(a(0), a(1));
        assert!(s.consistent_with(&w));
        assert!(s.entails(&w));
        assert!(s.entails(&w));
        let st = s.stats();
        assert_eq!(st.encoded_wffs, 1);
        assert_eq!(st.encode_reuse_hits, 2);
        assert_eq!(st.assumption_solves, 3);
        assert_eq!(st.base_wffs, 1);
    }

    #[test]
    fn decide_matches_the_individual_queries() {
        let base = [a(0), Wff::or2(a(1), a(2))];
        let mut s = EntailmentSession::with_base(3, base.iter());
        for w in [a(0), a(1), Wff::and2(a(1), a(2)), a(0).not()] {
            let (possible, certain) = s.decide(&w);
            assert_eq!(possible, s.consistent_with(&w), "{w:?}");
            assert_eq!(certain, s.entails(&w), "{w:?}");
        }
        // Inconsistent base: nothing possible, nothing certain via decide
        // (the pair short-circuits instead of reporting vacuous truth).
        let mut s = EntailmentSession::with_base(2, [a(0), a(0).not()].iter());
        assert_eq!(s.decide(&a(1)), (false, false));
    }

    #[test]
    fn query_clauses_do_not_pollute_the_base() {
        // Denying a query wff must not make it false for later queries.
        let mut s = EntailmentSession::new(2);
        let w = Wff::and2(a(0), a(1));
        assert!(!s.entails(&w)); // solves under ¬lit(w)
        assert!(s.consistent_with(&w)); // w still possible afterwards
        assert!(s.consistent_with(&a(0)));
        assert!(!s.valid(&a(0)));
    }

    #[test]
    fn validity_and_equivalence_on_empty_base() {
        let mut s = EntailmentSession::new(2);
        assert!(s.valid(&Wff::or2(a(0), a(0).not())));
        assert!(!s.valid(&a(0)));
        // De Morgan.
        let lhs = Wff::and2(a(0), a(1)).not();
        let rhs = Wff::or2(a(0).not(), a(1).not());
        assert!(s.equivalent(&lhs, &rhs));
        assert!(!s.equivalent(&a(0), &a(1)));
        assert_eq!(s.equivalent(&lhs, &rhs), cnf::equivalent(&lhs, &rhs, 2));
    }

    #[test]
    fn random_theories_match_oneshot_cnf() {
        // xorshift-driven cross-validation of the session against the
        // fresh-solver convenience functions.
        let mut state = 0x5E55_10A1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..60 {
            let n = 3 + (next() % 4) as usize;
            let base: Vec<Wff> = (0..(next() % 4))
                .map(|_| random_wff(&mut next, n, 3))
                .collect();
            let refs: Vec<&Wff> = base.iter().collect();
            let mut s = EntailmentSession::with_base(n, base.iter());
            for _ in 0..6 {
                let q = random_wff(&mut next, n, 3);
                assert_eq!(
                    s.entails(&q),
                    cnf::entails(&refs, &q, n),
                    "entails({q:?}) over {base:?}"
                );
                let mut with = base.clone();
                with.push(q.clone());
                let with_refs: Vec<&Wff> = with.iter().collect();
                assert_eq!(
                    s.consistent_with(&q),
                    cnf::satisfiable(&with_refs, n),
                    "consistent_with({q:?}) over {base:?}"
                );
            }
        }
    }

    fn random_wff(next: &mut impl FnMut() -> u64, n: usize, depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(3) {
            return match next() % 8 {
                0 => Wff::t(),
                1 => Wff::f(),
                _ => {
                    let x = a((next() % n as u64) as u32);
                    if next().is_multiple_of(2) {
                        x
                    } else {
                        x.not()
                    }
                }
            };
        }
        match next() % 4 {
            0 => random_wff(next, n, depth - 1).not(),
            1 => Formula::And(vec![
                random_wff(next, n, depth - 1),
                random_wff(next, n, depth - 1),
            ]),
            2 => Formula::Or(vec![
                random_wff(next, n, depth - 1),
                random_wff(next, n, depth - 1),
            ]),
            _ => Wff::iff(
                random_wff(next, n, depth - 1),
                random_wff(next, n, depth - 1),
            ),
        }
    }
}
