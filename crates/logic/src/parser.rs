//! A parser for the concrete wff syntax used in the paper's examples.
//!
//! Grammar (precedence low → high; `→` is right-associative):
//!
//! ```text
//! wff     := iff
//! iff     := imp ( ("<->" | "↔") imp )*
//! imp     := or  ( ("->"  | "→") imp )?
//! or      := and ( ("|" | "∨" | "\/") and )*
//! and     := neg ( ("&" | "∧" | "/\") neg )*
//! neg     := ("!" | "~" | "¬") neg | primary
//! primary := "T" | "F" | "(" wff ")" | atom
//! atom    := IDENT [ "(" term ("," term)* ")" ]
//! term    := IDENT | NUMBER
//! ```
//!
//! `T`/`F` are the truth-value symbols of the language (§2 item 5); a bare
//! identifier is a 0-ary predicate application. Parsing interns symbols and
//! atoms through a [`ParseContext`], which either declares unknown symbols
//! on the fly (handy in tests and examples) or rejects them (the strict mode
//! used by the query layer, where predicate constants must stay invisible).

use crate::atoms::{AtomTable, GroundAtom};
use crate::error::LogicError;
use crate::formula::Wff;
use crate::span::Span;
use crate::symbols::{ConstId, PredicateKind, Vocabulary};

/// Interning environment handed to [`parse_wff`].
pub struct ParseContext<'a> {
    /// The vocabulary to resolve (or extend with) predicates and constants.
    pub vocab: &'a mut Vocabulary,
    /// The atom table to intern atoms into.
    pub atoms: &'a mut AtomTable,
    /// When `true`, unknown predicates/constants are declared on first use;
    /// when `false`, they raise [`LogicError::UnknownSymbol`].
    pub declare: bool,
    /// When `false`, predicate constants (`__p…` and any other 0-ary
    /// predicate of kind [`PredicateKind::PredicateConstant`]) are rejected —
    /// the paper requires that "they may not appear in any query posed to
    /// the database".
    pub allow_predicate_constants: bool,
}

impl<'a> ParseContext<'a> {
    /// A permissive context: declare unknown symbols, allow predicate
    /// constants.
    pub fn permissive(vocab: &'a mut Vocabulary, atoms: &'a mut AtomTable) -> Self {
        ParseContext {
            vocab,
            atoms,
            declare: true,
            allow_predicate_constants: true,
        }
    }

    /// A strict context: every symbol must already exist and predicate
    /// constants are rejected (suitable for user queries and updates).
    pub fn strict(vocab: &'a mut Vocabulary, atoms: &'a mut AtomTable) -> Self {
        ParseContext {
            vocab,
            atoms,
            declare: false,
            allow_predicate_constants: false,
        }
    }
}

/// Parses `input` as a ground wff, interning through `ctx`.
///
/// ```
/// use winslett_logic::{parse_wff, AtomTable, ParseContext, Vocabulary};
///
/// let mut vocab = Vocabulary::new();
/// let mut atoms = AtomTable::new();
/// let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
/// let w = parse_wff("Orders(700,32,9) -> !InStock(32,1) | T", &mut ctx)?;
/// assert_eq!(w.atom_set().len(), 2);
/// # Ok::<(), winslett_logic::LogicError>(())
/// ```
pub fn parse_wff(input: &str, ctx: &mut ParseContext<'_>) -> Result<Wff, LogicError> {
    let mut p = Parser {
        src: input,
        bytes: input.as_bytes(),
        pos: 0,
        ctx,
    };
    p.skip_ws();
    let wff = p.parse_iff()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(wff)
}

struct Parser<'a, 'b> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    ctx: &'a mut ParseContext<'b>,
}

impl Parser<'_, '_> {
    fn err(&self, message: impl Into<String>) -> LogicError {
        LogicError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_str(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.peek_str(s) {
            self.pos += s.len();
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn eat_any(&mut self, options: &[&str]) -> bool {
        options.iter().any(|s| self.eat_str(s))
    }

    fn parse_iff(&mut self) -> Result<Wff, LogicError> {
        let mut lhs = self.parse_imp()?;
        while self.eat_any(&["<->", "↔"]) {
            let rhs = self.parse_imp()?;
            lhs = Wff::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_imp(&mut self) -> Result<Wff, LogicError> {
        let lhs = self.parse_or()?;
        if self.eat_any(&["->", "→"]) {
            let rhs = self.parse_imp()?; // right-associative
            Ok(Wff::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Wff, LogicError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_any(&["\\/", "∨", "|"]) {
            parts.push(self.parse_and()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(Wff::Or(parts))
        }
    }

    fn parse_and(&mut self) -> Result<Wff, LogicError> {
        let mut parts = vec![self.parse_neg()?];
        while self.eat_any(&["/\\", "∧", "&"]) {
            parts.push(self.parse_neg()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(Wff::And(parts))
        }
    }

    fn parse_neg(&mut self) -> Result<Wff, LogicError> {
        if self.eat_any(&["!", "~", "¬"]) {
            Ok(self.parse_neg()?.not())
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Wff, LogicError> {
        if self.eat_str("(") {
            let inner = self.parse_iff()?;
            if !self.eat_str(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(inner);
        }
        let (ident, ident_span) = self.parse_ident()?;
        // Truth values are reserved single letters.
        if ident == "T" && !self.peek_str("(") {
            self.skip_ws();
            return Ok(Wff::t());
        }
        if ident == "F" && !self.peek_str("(") {
            self.skip_ws();
            return Ok(Wff::f());
        }
        self.parse_atom_rest(ident, ident_span)
    }

    fn parse_atom_rest(&mut self, name: String, name_span: Span) -> Result<Wff, LogicError> {
        let mut args: Vec<ConstId> = Vec::new();
        if self.peek_str("(") {
            self.eat_str("(");
            loop {
                let (term, term_span) = self.parse_ident()?;
                self.skip_ws();
                let cid = if self.ctx.declare {
                    self.ctx.vocab.constant(&term)
                } else {
                    self.ctx
                        .vocab
                        .find_constant(&term)
                        .ok_or(LogicError::UnknownSymbol {
                            name: term.clone(),
                            kind: "constant",
                            span: term_span,
                        })?
                };
                args.push(cid);
                if self.eat_str(",") {
                    continue;
                }
                if self.eat_str(")") {
                    break;
                }
                return Err(self.err("expected ',' or ')' in argument list"));
            }
        } else {
            self.skip_ws();
        }

        // The full application `Name(args…)` for arity complaints; just the
        // name for symbol-resolution complaints.
        let application_span = Span::new(name_span.start, self.last_nonspace_end(name_span.end));
        let pred = match self.ctx.vocab.find_predicate(&name) {
            Some(p) => {
                let decl = self.ctx.vocab.predicate(p);
                if decl.arity != args.len() {
                    return Err(LogicError::ArityMismatch {
                        predicate: name,
                        expected: decl.arity,
                        got: args.len(),
                        span: application_span,
                    });
                }
                if decl.kind == PredicateKind::PredicateConstant
                    && !self.ctx.allow_predicate_constants
                {
                    return Err(LogicError::UnknownSymbol {
                        name,
                        kind: "predicate",
                        span: name_span,
                    });
                }
                p
            }
            None => {
                if !self.ctx.declare {
                    return Err(LogicError::UnknownSymbol {
                        name,
                        kind: "predicate",
                        span: name_span,
                    });
                }
                let kind = if args.is_empty() {
                    PredicateKind::PredicateConstant
                } else {
                    PredicateKind::Relation
                };
                self.ctx
                    .vocab
                    .declare_predicate(&name, args.len(), kind)
                    .ok_or(LogicError::UnknownSymbol {
                        name,
                        kind: "predicate",
                        span: name_span,
                    })?
            }
        };
        let id = self.ctx.atoms.intern(GroundAtom {
            pred,
            args: args.into_iter().collect(),
        });
        Ok(Wff::Atom(id))
    }

    fn parse_ident(&mut self) -> Result<(String, Span), LogicError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'\'' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        let span = Span::new(start, self.pos);
        Ok((self.src[start..self.pos].to_owned(), span))
    }

    /// End offset of the last non-whitespace byte consumed so far (at least
    /// `floor`); `eat_str` skips trailing whitespace, so `self.pos` may sit
    /// past the token that should close a span.
    fn last_nonspace_end(&self, floor: usize) -> usize {
        let mut end = self.pos;
        while end > floor && self.bytes[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        end.max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn setup() -> (Vocabulary, AtomTable) {
        (Vocabulary::new(), AtomTable::new())
    }

    #[test]
    fn parses_truth_values() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        assert_eq!(parse_wff("T", &mut ctx).unwrap(), Wff::t());
        assert_eq!(parse_wff("F", &mut ctx).unwrap(), Wff::f());
    }

    #[test]
    fn parses_paper_example_atom() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w = parse_wff("Orders(700,32,9)", &mut ctx).unwrap();
        match w {
            Formula::Atom(id) => {
                let atom = t.resolve(id);
                assert_eq!(v.predicate(atom.pred).name, "Orders");
                assert_eq!(atom.args.len(), 3);
            }
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn precedence_not_and_or() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        // !a & b | c  ==  ((!a & b) | c)
        let w = parse_wff("!a & b | c", &mut ctx).unwrap();
        match w {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Formula::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn implication_right_associative() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        // a -> b -> c  ==  a -> (b -> c)
        let w = parse_wff("a -> b -> c", &mut ctx).unwrap();
        match w {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(_, _))),
            other => panic!("expected Implies, got {other:?}"),
        }
    }

    #[test]
    fn unicode_connectives() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w1 = parse_wff("¬a ∧ (b ∨ c) → d ↔ e", &mut ctx).unwrap();
        let w2 = parse_wff("!a & (b | c) -> d <-> e", &mut ctx).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn same_atom_interned_once() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w = parse_wff("R(a) & R(a)", &mut ctx).unwrap();
        assert_eq!(w.atom_set().len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn strict_mode_rejects_unknown_symbols() {
        let (mut v, mut t) = setup();
        {
            let mut ctx = ParseContext::permissive(&mut v, &mut t);
            parse_wff("R(a)", &mut ctx).unwrap();
        }
        let mut strict = ParseContext::strict(&mut v, &mut t);
        assert!(parse_wff("R(a)", &mut strict).is_ok());
        assert!(matches!(
            parse_wff("S(a)", &mut strict),
            Err(LogicError::UnknownSymbol {
                kind: "predicate",
                ..
            })
        ));
        assert!(matches!(
            parse_wff("R(zzz)", &mut strict),
            Err(LogicError::UnknownSymbol {
                kind: "constant",
                ..
            })
        ));
    }

    #[test]
    fn strict_mode_rejects_predicate_constants() {
        let (mut v, mut t) = setup();
        let pc = v.fresh_predicate_constant();
        let name = v.predicate(pc).name.clone();
        let mut strict = ParseContext::strict(&mut v, &mut t);
        assert!(parse_wff(&name, &mut strict).is_err());
    }

    #[test]
    fn arity_mismatch_detected() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        parse_wff("R(a,b)", &mut ctx).unwrap();
        assert!(matches!(
            parse_wff("R(a)", &mut ctx),
            Err(LogicError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        assert!(parse_wff("a b", &mut ctx).is_err());
        assert!(parse_wff("(a", &mut ctx).is_err());
        assert!(parse_wff("", &mut ctx).is_err());
        assert!(parse_wff("&", &mut ctx).is_err());
    }

    #[test]
    fn errors_carry_spans() {
        let (mut v, mut t) = setup();
        {
            let mut ctx = ParseContext::permissive(&mut v, &mut t);
            parse_wff("R(a,b)", &mut ctx).unwrap();
        }
        let mut strict = ParseContext::strict(&mut v, &mut t);
        // Unknown predicate: span covers just the name.
        match parse_wff("R(a,b) & Sx(a)", &mut strict) {
            Err(LogicError::UnknownSymbol { kind, span, .. }) => {
                assert_eq!(kind, "predicate");
                assert_eq!(span, Span::new(9, 11));
            }
            other => panic!("expected unknown predicate, got {other:?}"),
        }
        // Unknown constant: span covers the term.
        match parse_wff("R(a,zz)", &mut strict) {
            Err(LogicError::UnknownSymbol { kind, span, .. }) => {
                assert_eq!(kind, "constant");
                assert_eq!(span, Span::new(4, 6));
            }
            other => panic!("expected unknown constant, got {other:?}"),
        }
        // Arity mismatch: span covers the whole application.
        match parse_wff("T & R(a)", &mut strict) {
            Err(LogicError::ArityMismatch { span, .. }) => {
                assert_eq!(span, Span::new(4, 8));
            }
            other => panic!("expected arity mismatch, got {other:?}"),
        }
    }

    #[test]
    fn t_as_predicate_name_is_allowed_with_args() {
        // `T(x)` is a relation named T, not the truth value.
        let (mut v, mut t) = setup();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w = parse_wff("T(x)", &mut ctx).unwrap();
        assert!(matches!(w, Formula::Atom(_)));
    }
}
