//! Property tests for the logic kernel: the invariants everything above
//! the substrate relies on.

use proptest::prelude::*;
use winslett_logic::cnf::{self, Tseitin};
use winslett_logic::{
    display_wff, enumerate_models, enumerate_models_brute, parse_wff, AtomTable, BitSet, Formula,
    Lit, ModelLimit, ParseContext, SatResult, Solver, Var, Vocabulary, Wff,
};
use winslett_logic::{AtomId, Valuation};

const NUM_ATOMS: usize = 5;

fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Wff::implies(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::iff(a, b)),
        ]
    })
}

/// Assignments as bitmasks over the fixed atom range.
fn eval_mask(w: &Wff, mask: u32) -> bool {
    w.eval(&mut |a: &AtomId| (mask >> a.0) & 1 == 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse is the identity on the AST (atoms are re-interned to
    /// the same ids because the table is shared).
    #[test]
    fn printer_parser_roundtrip(w in wff_strategy()) {
        let mut vocab = Vocabulary::new();
        let mut atoms = AtomTable::new();
        // Pre-intern atoms 0..NUM_ATOMS in order.
        {
            let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
            for i in 0..NUM_ATOMS {
                let src = format!("A{i}");
                let parsed = parse_wff(&src, &mut ctx).unwrap();
                prop_assert_eq!(parsed, Wff::Atom(AtomId(i as u32)));
            }
        }
        let printed = display_wff(&w, &vocab, &atoms).to_string();
        let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
        let reparsed = parse_wff(&printed, &mut ctx).unwrap();
        prop_assert_eq!(&w, &reparsed, "printed as `{}`", printed);
    }

    /// fold_constants preserves semantics and removes all internal Truth
    /// nodes.
    #[test]
    fn fold_constants_preserves_semantics(w in wff_strategy()) {
        let folded = w.fold_constants();
        for mask in 0u32..(1 << NUM_ATOMS) {
            prop_assert_eq!(eval_mask(&w, mask), eval_mask(&folded, mask));
        }
        // No Truth leaf unless the whole formula is Truth.
        if !matches!(folded, Formula::Truth(_)) {
            let mut has_truth = false;
            fn scan(w: &Wff, found: &mut bool) {
                match w {
                    Formula::Truth(_) => *found = true,
                    Formula::Atom(_) => {}
                    Formula::Not(x) => scan(x, found),
                    Formula::And(xs) | Formula::Or(xs) => xs.iter().for_each(|x| scan(x, found)),
                    Formula::Implies(a, b) | Formula::Iff(a, b) => {
                        scan(a, found);
                        scan(b, found);
                    }
                }
            }
            scan(&folded, &mut has_truth);
            prop_assert!(!has_truth, "internal Truth in {:?}", folded);
        }
    }

    /// Shannon expansion: w ≡ (a ∧ w[a:=T]) ∨ (¬a ∧ w[a:=F]).
    #[test]
    fn shannon_expansion(w in wff_strategy(), i in 0..NUM_ATOMS as u32) {
        let a = AtomId(i);
        let expansion = Wff::or2(
            Wff::and2(Wff::Atom(a), w.assign(a, true)),
            Wff::and2(Wff::Atom(a).not(), w.assign(a, false)),
        );
        for mask in 0u32..(1 << NUM_ATOMS) {
            prop_assert_eq!(eval_mask(&w, mask), eval_mask(&expansion, mask));
        }
    }

    /// Tseitin encoding is satisfiability-faithful under every full atom
    /// assignment.
    #[test]
    fn tseitin_is_faithful(w in wff_strategy()) {
        for mask in 0u32..(1 << NUM_ATOMS) {
            let expected = eval_mask(&w, mask);
            let mut ts = Tseitin::new(NUM_ATOMS);
            ts.assert_true(&w);
            let mut solver = ts.finish().into_solver();
            for v in 0..NUM_ATOMS {
                solver.add_clause(&[Lit::new(Var(v as u32), (mask >> v) & 1 == 1)]);
            }
            prop_assert_eq!(solver.solve().is_sat(), expected);
        }
    }

    /// SAT-based model enumeration agrees with the brute-force sweep under
    /// arbitrary projections.
    #[test]
    fn enumeration_agrees_with_brute_force(
        wffs in prop::collection::vec(wff_strategy(), 1..4),
        proj_mask in 0u32..(1 << NUM_ATOMS),
    ) {
        let refs: Vec<&Wff> = wffs.iter().collect();
        let proj: BitSet = (0..NUM_ATOMS).filter(|i| (proj_mask >> i) & 1 == 1).collect();
        let sat = enumerate_models(&refs, NUM_ATOMS, &proj, ModelLimit::default()).unwrap();
        let brute = enumerate_models_brute(&refs, NUM_ATOMS, &proj).unwrap();
        prop_assert_eq!(sat, brute);
    }

    /// cnf::valid / satisfiable / entails are mutually consistent.
    #[test]
    fn validity_satisfiability_duality(w in wff_strategy()) {
        let valid = cnf::valid(&w, NUM_ATOMS);
        let neg_sat = cnf::satisfiable(&[&w.clone().not()], NUM_ATOMS);
        prop_assert_eq!(valid, !neg_sat);
        // T entails w iff w is valid.
        prop_assert_eq!(cnf::entails(&[], &w, NUM_ATOMS), valid);
        // w entails w.
        prop_assert!(cnf::entails(&[&w], &w, NUM_ATOMS));
    }

    /// rename_atom then rename back is the identity (when the intermediate
    /// atom is fresh).
    #[test]
    fn rename_roundtrip(w in wff_strategy(), i in 0..NUM_ATOMS as u32) {
        let fresh = AtomId(100);
        let renamed = w.rename_atom(AtomId(i), fresh);
        prop_assert!(!renamed.contains_atom(AtomId(i)));
        let back = renamed.rename_atom(fresh, AtomId(i));
        prop_assert_eq!(w, back);
    }

    /// BitSet set/toggle/count invariants.
    #[test]
    fn bitset_invariants(indices in prop::collection::vec(0usize..512, 0..64)) {
        let mut b = BitSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for &i in &indices {
            if reference.contains(&i) {
                b.set(i, false);
                reference.remove(&i);
            } else {
                b.set(i, true);
                reference.insert(i);
            }
        }
        prop_assert_eq!(b.count_ones(), reference.len());
        prop_assert_eq!(b.ones().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
        let rebuilt: BitSet = reference.iter().copied().collect();
        prop_assert_eq!(b, rebuilt);
    }

    /// Valuation projection and extension laws.
    #[test]
    fn valuation_laws(assignments in prop::collection::vec((0u32..64, any::<bool>()), 0..32)) {
        let v: Valuation = assignments.iter().map(|&(i, b)| (AtomId(i), b)).collect();
        // project onto the full domain = identity.
        let full: BitSet = (0..64usize).collect();
        prop_assert_eq!(v.project(&full), v.clone());
        // v extends every projection of itself.
        let half: BitSet = (0..32usize).collect();
        let p = v.project(&half);
        prop_assert!(v.extends(&p));
        prop_assert!(p.agrees_with(&v));
    }
}

/// A solver-level soak: random CNF instances cross-checked against a
/// truth-table oracle, with blocking-clause reuse after SAT results.
#[test]
fn solver_soak_with_blocking() {
    let mut state = 0x5EED_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..300 {
        let nv = 2 + (next() % 7) as usize;
        let nc = 1 + (next() % 20) as usize;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for _ in 0..nc {
            let width = 1 + (next() % 3) as usize;
            let clause: Vec<Lit> = (0..width)
                .map(|_| Lit::new(Var((next() % nv as u64) as u32), next() % 2 == 0))
                .collect();
            clauses.push(clause);
        }
        // Count models with the solver (blocking) and by brute force.
        let mut solver = Solver::new(nv);
        let mut ok = true;
        for c in &clauses {
            ok &= solver.add_clause(c);
        }
        let mut solver_models = 0usize;
        if ok || solver.solve().is_sat() {
            loop {
                match solver.solve() {
                    SatResult::Unsat => break,
                    SatResult::Sat(m) => {
                        solver_models += 1;
                        let block: Vec<Lit> = m
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| Lit::new(Var(i as u32), !b))
                            .collect();
                        if !solver.add_clause(&block) {
                            break;
                        }
                    }
                }
            }
        }
        let mut brute_models = 0usize;
        'outer: for mask in 0u32..(1 << nv) {
            for c in &clauses {
                if !c
                    .iter()
                    .any(|l| ((mask >> l.var().0) & 1 == 1) == l.is_pos())
                {
                    continue 'outer;
                }
            }
            brute_models += 1;
        }
        assert_eq!(solver_models, brute_models, "clauses: {clauses:?}");
    }
}
