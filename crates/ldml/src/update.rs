//! LDML ground updates (§3.1) and their reduction to INSERT form (§3.2).
//!
//! The four operators:
//!
//! ```text
//! INSERT ω WHERE φ
//! DELETE t WHERE φ ∧ t
//! MODIFY t TO BE ω WHERE φ ∧ t
//! ASSERT φ
//! ```
//!
//! `ω` and `φ` are ground wffs over L′ (no predicate constants); `t` is a
//! ground atomic formula. DELETE, MODIFY and ASSERT are special cases of
//! INSERT (§3.2):
//!
//! * `DELETE t WHERE φ ∧ t`  ≡ `INSERT ¬t WHERE φ ∧ t`;
//! * `MODIFY t TO BE ω WHERE φ ∧ t` ≡ `INSERT ω WHERE φ ∧ t` when `t`
//!   appears in `ω`, else `INSERT (ω ∧ ¬t) WHERE φ ∧ t` — the MODIFY
//!   semantics first forces `t` false, so when `ω` does not re-constrain
//!   `t` the insertion must carry `¬t` itself. (The published text's
//!   rendering of this clause is typographically corrupted; this is the
//!   reduction that matches the §3.2 model-level definitions, and the
//!   property tests in `winslett-worlds` verify it against them.)
//! * `ASSERT φ` ≡ `INSERT F WHERE ¬φ`.
//!
//! Note the syntactic sensitivity the paper insists on: reductions preserve
//! the *atom set* of `ω`, not merely its logical content — `INSERT T` and
//! `INSERT g ∨ ¬g` are different updates.

use crate::error::LdmlError;
use winslett_logic::{AtomId, AtomTable, PredicateKind, Vocabulary, Wff};

/// A ground LDML update.
///
/// ```
/// use winslett_ldml::Update;
/// use winslett_logic::{AtomId, Wff};
///
/// // DELETE t WHERE φ ∧ t reduces to INSERT ¬t WHERE φ ∧ t (§3.2).
/// let t = AtomId(0);
/// let phi = Wff::Atom(AtomId(1));
/// let form = Update::delete(t, phi).to_insert();
/// assert_eq!(form.omega, Wff::Atom(t).not());
/// assert!(!form.may_branch());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Update {
    /// `INSERT ω WHERE φ`.
    Insert {
        /// The wff to make true.
        omega: Wff,
        /// The selection clause.
        phi: Wff,
    },
    /// `DELETE t WHERE φ ∧ t`. Only `φ` is stored; the conjunct `t` is
    /// implicit in the operator form.
    Delete {
        /// The target tuple.
        t: AtomId,
        /// The extra selection clause `φ`.
        phi: Wff,
    },
    /// `MODIFY t TO BE ω WHERE φ ∧ t`.
    Modify {
        /// The target tuple.
        t: AtomId,
        /// The replacement wff.
        omega: Wff,
        /// The extra selection clause `φ`.
        phi: Wff,
    },
    /// `ASSERT φ`.
    Assert {
        /// The wff every surviving model must satisfy.
        phi: Wff,
    },
}

/// An update normalized to INSERT form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InsertForm {
    /// The wff to make true.
    pub omega: Wff,
    /// The selection clause.
    pub phi: Wff,
}

impl Update {
    /// Convenience constructor for `INSERT ω WHERE φ`.
    pub fn insert(omega: Wff, phi: Wff) -> Self {
        Update::Insert { omega, phi }
    }

    /// Convenience constructor for `DELETE t WHERE φ ∧ t`.
    pub fn delete(t: AtomId, phi: Wff) -> Self {
        Update::Delete { t, phi }
    }

    /// Convenience constructor for `MODIFY t TO BE ω WHERE φ ∧ t`.
    pub fn modify(t: AtomId, omega: Wff, phi: Wff) -> Self {
        Update::Modify { t, omega, phi }
    }

    /// Convenience constructor for `ASSERT φ`.
    pub fn assert(phi: Wff) -> Self {
        Update::Assert { phi }
    }

    /// Reduces the update to INSERT form per §3.2.
    pub fn to_insert(&self) -> InsertForm {
        match self {
            Update::Insert { omega, phi } => InsertForm {
                omega: omega.clone(),
                phi: phi.clone(),
            },
            Update::Delete { t, phi } => InsertForm {
                omega: Wff::Atom(*t).not(),
                phi: Wff::and2(phi.clone(), Wff::Atom(*t)),
            },
            Update::Modify { t, omega, phi } => {
                let selection = Wff::and2(phi.clone(), Wff::Atom(*t));
                if omega.contains_atom(*t) {
                    InsertForm {
                        omega: omega.clone(),
                        phi: selection,
                    }
                } else {
                    InsertForm {
                        omega: Wff::and2(omega.clone(), Wff::Atom(*t).not()),
                        phi: selection,
                    }
                }
            }
            Update::Assert { phi } => InsertForm {
                omega: Wff::f(),
                phi: phi.clone().not(),
            },
        }
    }

    /// The ω of the INSERT form (cloned).
    pub fn omega(&self) -> Wff {
        self.to_insert().omega
    }

    /// The φ of the INSERT form (cloned).
    pub fn phi(&self) -> Wff {
        self.to_insert().phi
    }

    /// Validates that the update is over L′: no predicate constants in ω or
    /// φ (§3.1 defines L′ to exclude them).
    pub fn validate(&self, vocab: &Vocabulary, atoms: &AtomTable) -> Result<(), LdmlError> {
        let form = self.to_insert();
        for w in [&form.omega, &form.phi] {
            for a in w.atom_set() {
                let pred = atoms.resolve(a).pred;
                if vocab.predicate(pred).kind == PredicateKind::PredicateConstant {
                    return Err(LdmlError::PredicateConstantInUpdate {
                        name: vocab.predicate(pred).name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The paper's `g`: total ground-atom occurrences in the update (used
    /// by the §3.6 cost model).
    pub fn num_atom_occurrences(&self) -> usize {
        let form = self.to_insert();
        form.omega.num_atom_occurrences() + form.phi.num_atom_occurrences()
    }
}

impl InsertForm {
    /// Whether this insertion can *branch* (map one model to several):
    /// branching requires ω to be satisfiable by more than one valuation of
    /// its atoms (§3.2's "branching update"). Exhaustive up to 20 atoms,
    /// conservatively `true` beyond.
    pub fn may_branch(&self) -> bool {
        self.may_branch_bounded(20)
    }

    /// Like [`InsertForm::may_branch`] but with a caller-chosen exhaustive
    /// bound — used on hot update paths where an exact answer for large ω
    /// is not worth 2^|atoms| evaluation.
    pub fn may_branch_bounded(&self, max_atoms: usize) -> bool {
        let atoms: Vec<AtomId> = self.omega.atom_set().into_iter().collect();
        // Clamp to 20 regardless of the caller's bound: the sweep below
        // uses u32 masks and 2^20 evaluations is already generous.
        if atoms.len() > max_atoms.min(20) {
            return true; // conservatively
        }
        // `atoms` is ω's own atom set, so every lookup hits; the prebuilt
        // map keeps the 2^n sweep free of per-eval linear scans, and an
        // (impossible) miss reads as `false` rather than panicking.
        let index: rustc_hash::FxHashMap<AtomId, usize> = atoms
            .iter()
            .copied()
            .enumerate()
            .map(|(i, a)| (a, i))
            .collect();
        let mut count = 0u32;
        for mask in 0u32..(1 << atoms.len()) {
            let ok = self
                .omega
                .eval(&mut |a: &AtomId| index.get(a).is_some_and(|&i| (mask >> i) & 1 == 1));
            if ok {
                count += 1;
                if count > 1 {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Formula;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    #[test]
    fn insert_passes_through() {
        let u = Update::insert(Wff::or2(a(1), a(2)), a(3));
        let f = u.to_insert();
        assert_eq!(f.omega, Wff::or2(a(1), a(2)));
        assert_eq!(f.phi, a(3));
    }

    #[test]
    fn delete_reduces_to_insert_not_t() {
        let u = Update::delete(AtomId(1), a(2));
        let f = u.to_insert();
        assert_eq!(f.omega, a(1).not());
        assert_eq!(f.phi, Wff::and2(a(2), a(1)));
    }

    #[test]
    fn modify_with_t_in_omega() {
        // MODIFY t TO BE (t ∨ c) WHERE φ ∧ t.
        let u = Update::modify(AtomId(1), Wff::or2(a(1), a(3)), a(2));
        let f = u.to_insert();
        assert_eq!(f.omega, Wff::or2(a(1), a(3)));
        assert_eq!(f.phi, Wff::and2(a(2), a(1)));
    }

    #[test]
    fn modify_without_t_in_omega_carries_not_t() {
        // MODIFY a TO BE a′ WHERE b ∧ a — the §3.3 running example — must
        // become INSERT (a′ ∧ ¬a) WHERE b ∧ a.
        let u = Update::modify(AtomId(1), a(9), a(2));
        let f = u.to_insert();
        assert_eq!(f.omega, Wff::and2(a(9), a(1).not()));
        assert_eq!(f.phi, Wff::and2(a(2), a(1)));
        assert!(f.omega.contains_atom(AtomId(1)));
    }

    #[test]
    fn assert_reduces_to_insert_false() {
        let u = Update::assert(a(1));
        let f = u.to_insert();
        assert_eq!(f.omega, Wff::f());
        assert_eq!(f.phi, a(1).not());
    }

    #[test]
    fn atom_occurrence_count() {
        let u = Update::insert(Wff::or2(a(1), a(2)), Wff::and2(a(1), a(3)));
        assert_eq!(u.num_atom_occurrences(), 4);
    }

    #[test]
    fn branching_detection() {
        // a ∨ b has 3 satisfying valuations: branching.
        assert!(Update::insert(Wff::or2(a(1), a(2)), Wff::t())
            .to_insert()
            .may_branch());
        // a ∧ b has exactly one: non-branching.
        assert!(!Update::insert(Wff::and2(a(1), a(2)), Wff::t())
            .to_insert()
            .may_branch());
        // ¬a has one.
        assert!(!Update::insert(a(1).not(), Wff::t())
            .to_insert()
            .may_branch());
        // T over no atoms has one (the empty valuation).
        assert!(!Update::insert(Wff::t(), Wff::t()).to_insert().may_branch());
        // g ∨ ¬g has two valuations — a branching no-op-looking update:
        // this is the paper's point about T vs g ∨ ¬g.
        assert!(Update::insert(Wff::or2(a(1), a(1).not()), Wff::t())
            .to_insert()
            .may_branch());
    }

    #[test]
    fn validate_rejects_predicate_constants() {
        let mut vocab = Vocabulary::new();
        let mut atoms = AtomTable::new();
        let pc = vocab.fresh_predicate_constant();
        let id = atoms.intern(winslett_logic::GroundAtom::nullary(pc));
        let r = vocab
            .declare_predicate("R", 1, PredicateKind::Relation)
            .unwrap();
        let c = vocab.constant("x");
        let ra = atoms.intern_app(r, &[c]);
        let ok = Update::insert(Wff::Atom(ra), Wff::t());
        assert!(ok.validate(&vocab, &atoms).is_ok());
        let bad = Update::insert(Wff::Atom(id), Wff::t());
        assert!(matches!(
            bad.validate(&vocab, &atoms),
            Err(LdmlError::PredicateConstantInUpdate { .. })
        ));
        let bad_phi = Update::insert(Wff::Atom(ra), Wff::Atom(id));
        assert!(bad_phi.validate(&vocab, &atoms).is_err());
    }
}
