//! Model-level update semantics — the §3.2 definitions, verbatim.
//!
//! For a ground update `B` and a model `M`, these functions compute the set
//! `S` of models produced by applying `B` to `M`. Models are total truth
//! valuations represented as bitsets of true atoms over a fixed universe.
//!
//! Both the *direct* per-operator definitions and the INSERT-form reduction
//! are implemented; `winslett-worlds` and the property tests verify that
//! they coincide, which is the paper's claim that DELETE, MODIFY, and
//! ASSERT "are special cases of INSERT".

use crate::error::LdmlError;
use crate::update::{InsertForm, Update};
use rustc_hash::FxHashMap;
use winslett_logic::{AtomId, BitSet, Wff};

/// Maximum number of distinct atoms in ω supported by exhaustive valuation
/// enumeration. Updates are small by the paper's cost model (`g` counts
/// their atom occurrences), so this is ample.
pub const MAX_OMEGA_ATOMS: usize = 24;

fn eval_in(w: &Wff, model: &BitSet) -> bool {
    w.eval(&mut |a: &AtomId| model.get(a.index()))
}

/// All assignments to `atoms` that satisfy `omega`, returned as bit masks
/// aligned with `atoms` (bit `i` of a mask is the value of `atoms[i]`).
///
/// Errors with [`LdmlError::TooLarge`] when `atoms` exceeds
/// [`MAX_OMEGA_ATOMS`], and with [`LdmlError::AtomNotInUniverse`] when
/// `omega` mentions an atom missing from `atoms` — library code never
/// panics on a wff/universe mismatch.
pub fn satisfying_masks(omega: &Wff, atoms: &[AtomId]) -> Result<Vec<u32>, LdmlError> {
    if atoms.len() > MAX_OMEGA_ATOMS {
        return Err(LdmlError::TooLarge {
            atoms: atoms.len(),
            max: MAX_OMEGA_ATOMS,
        });
    }
    // Prebuilt atom → bit-position map: the evaluator below runs 2^n times
    // and a linear `position()` scan per atom lookup is O(g) inside it.
    let index: FxHashMap<AtomId, usize> = atoms
        .iter()
        .copied()
        .enumerate()
        .map(|(i, a)| (a, i))
        .collect();
    let mut out = Vec::new();
    let mut missing: Option<AtomId> = None;
    for mask in 0u32..(1u32 << atoms.len()) {
        let ok = omega.eval(&mut |a: &AtomId| match index.get(a) {
            Some(&i) => (mask >> i) & 1 == 1,
            None => {
                missing = Some(*a);
                false
            }
        });
        if let Some(a) = missing {
            return Err(LdmlError::AtomNotInUniverse { atom: a.0 });
        }
        if ok {
            out.push(mask);
        }
    }
    Ok(out)
}

/// An LDML update compiled once for repeated per-model application.
///
/// [`apply_update`] re-runs the `to_insert()` reduction, the ω atom-set
/// walk, and the O(2^g) [`satisfying_masks`] sweep for *every* model it is
/// applied to. The possible-worlds engine applies the same update to every
/// world, so that work is hoisted here: compile once, then
/// [`CompiledInsert::apply`] is a cheap φ-evaluation plus one bitset clone
/// per precomputed mask.
///
/// Note that compilation enumerates ω's valuations eagerly, so an ω with
/// more than [`MAX_OMEGA_ATOMS`] atoms is rejected at compile time even if
/// its φ would have been false in every model.
#[derive(Clone, Debug)]
pub struct CompiledInsert {
    phi: Wff,
    atoms: Vec<AtomId>,
    masks: Vec<u32>,
}

impl CompiledInsert {
    /// Compiles `update` via its INSERT form.
    pub fn compile(update: &Update) -> Result<Self, LdmlError> {
        Self::compile_form(&update.to_insert())
    }

    /// Compiles an explicit INSERT form.
    pub fn compile_form(form: &InsertForm) -> Result<Self, LdmlError> {
        let atoms: Vec<AtomId> = form.omega.atom_set().into_iter().collect();
        let masks = satisfying_masks(&form.omega, &atoms)?;
        Ok(CompiledInsert {
            phi: form.phi.clone(),
            atoms,
            masks,
        })
    }

    /// The selection clause φ.
    pub fn phi(&self) -> &Wff {
        &self.phi
    }

    /// Number of distinct atoms in ω.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of satisfying valuations of ω (the branching factor).
    pub fn num_masks(&self) -> usize {
        self.masks.len()
    }

    /// Applies the compiled update to one model — the §3.2 semantics of
    /// [`apply_insert`], with all per-update work already done. Infallible:
    /// every failure mode is caught at compile time.
    pub fn apply(&self, model: &BitSet) -> Vec<BitSet> {
        if !eval_in(&self.phi, model) {
            return vec![model.clone()];
        }
        let mut out = Vec::with_capacity(self.masks.len());
        for &mask in &self.masks {
            let mut m = model.clone();
            for (i, a) in self.atoms.iter().enumerate() {
                m.set(a.index(), (mask >> i) & 1 == 1);
            }
            out.push(m);
        }
        out
    }
}

/// Applies `INSERT ω WHERE φ` to a single model (§3.2):
///
/// * if `φ` is false in `M`, `S = {M}`;
/// * otherwise `S` contains exactly every `M*` that (1) agrees with `M` on
///   all atoms except possibly those of `ω`, and (2) satisfies `ω`.
pub fn apply_insert(form: &InsertForm, model: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    if !eval_in(&form.phi, model) {
        return Ok(vec![model.clone()]);
    }
    Ok(CompiledInsert::compile_form(form)?.apply(model))
}

/// Applies any LDML update to a single model, via its INSERT form.
pub fn apply_update(update: &Update, model: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    apply_insert(&update.to_insert(), model)
}

/// Applies an update using the §3.2 *direct* per-operator definitions
/// (no reduction to INSERT). Used to cross-validate the reductions.
pub fn apply_update_direct(update: &Update, model: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    match update {
        Update::Insert { omega, phi } => apply_insert(
            &InsertForm {
                omega: omega.clone(),
                phi: phi.clone(),
            },
            model,
        ),
        Update::Assert { phi } => {
            // If φ is false in M, S is empty; otherwise S = {M}.
            if eval_in(phi, model) {
                Ok(vec![model.clone()])
            } else {
                Ok(Vec::new())
            }
        }
        Update::Delete { t, phi } => {
            let selection = Wff::and2(phi.clone(), Wff::Atom(*t));
            if !eval_in(&selection, model) {
                return Ok(vec![model.clone()]);
            }
            let mut m = model.clone();
            m.set(t.index(), false);
            Ok(vec![m])
        }
        Update::Modify { t, omega, phi } => {
            let selection = Wff::and2(phi.clone(), Wff::Atom(*t));
            if !eval_in(&selection, model) {
                return Ok(vec![model.clone()]);
            }
            // N = M with t := F; then insert ω relative to N.
            let mut n = model.clone();
            n.set(t.index(), false);
            let atoms: Vec<AtomId> = omega.atom_set().into_iter().collect();
            let masks = satisfying_masks(omega, &atoms)?;
            let mut out = Vec::with_capacity(masks.len());
            for mask in masks {
                let mut m = n.clone();
                for (i, a) in atoms.iter().enumerate() {
                    m.set(a.index(), (mask >> i) & 1 == 1);
                }
                out.push(m);
            }
            Ok(out)
        }
    }
}

/// Applies a **set** of ground updates *simultaneously* to one model — the
/// reduction target for updates with variables (§4: "updates with
/// variables can be reduced to the problem of performing a set of ground
/// updates simultaneously").
///
/// The semantics is the evident generalization of §3.2 (the paper names
/// the reduction but does not spell it out; DESIGN.md records this as a
/// definitional substitution):
///
/// * the *triggered* updates are those whose selection `φᵢ` holds in `M`;
/// * `S` contains exactly the models `M*` that (1) agree with `M` on every
///   atom outside the union of the triggered `ωᵢ`'s atom sets, and
///   (2) satisfy **every** triggered `ωᵢ`;
/// * with no triggered update, `S = {M}`; with a single update this is
///   exactly [`apply_insert`] (tested).
pub fn apply_simultaneous(forms: &[InsertForm], model: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    let triggered: Vec<&InsertForm> = forms.iter().filter(|f| eval_in(&f.phi, model)).collect();
    if triggered.is_empty() {
        return Ok(vec![model.clone()]);
    }
    let mut atom_set = std::collections::BTreeSet::new();
    for f in &triggered {
        atom_set.extend(f.omega.atom_set());
    }
    let atoms: Vec<AtomId> = atom_set.into_iter().collect();
    let conjunction = Wff::And(triggered.iter().map(|f| f.omega.clone()).collect());
    let masks = satisfying_masks(&conjunction, &atoms)?;
    let mut out = Vec::with_capacity(masks.len());
    for mask in masks {
        let mut m = model.clone();
        for (i, a) in atoms.iter().enumerate() {
            m.set(a.index(), (mask >> i) & 1 == 1);
        }
        out.push(m);
    }
    Ok(out)
}

/// Memo table for [`apply_simultaneous_cached`]: the expensive part of a
/// simultaneous application — the union atom list and the O(2^g) mask sweep
/// over the conjunction of the triggered ωᵢ — depends only on *which*
/// subset of the updates triggered, not on the model itself. Across many
/// models (the possible-worlds engine applies one update set to every
/// world) only a handful of distinct subsets occur, so the sweeps are
/// cached per subset.
#[derive(Clone, Debug, Default)]
pub struct SimultaneousCache {
    combos: FxHashMap<u128, (Vec<AtomId>, Vec<u32>)>,
    /// Number of lookups served from the cache.
    pub hits: u64,
}

/// [`apply_simultaneous`], with the per-triggered-subset compilation work
/// memoized in `cache`. Produces exactly the same model set. Falls back to
/// the uncached path when more than 128 forms are given (the subset key is
/// a `u128` bitmask).
pub fn apply_simultaneous_cached(
    forms: &[InsertForm],
    model: &BitSet,
    cache: &mut SimultaneousCache,
) -> Result<Vec<BitSet>, LdmlError> {
    if forms.len() > 128 {
        return apply_simultaneous(forms, model);
    }
    let mut key: u128 = 0;
    for (i, f) in forms.iter().enumerate() {
        if eval_in(&f.phi, model) {
            key |= 1 << i;
        }
    }
    if key == 0 {
        return Ok(vec![model.clone()]);
    }
    if let std::collections::hash_map::Entry::Vacant(slot) = cache.combos.entry(key) {
        let mut atom_set = std::collections::BTreeSet::new();
        let mut omegas = Vec::new();
        for (i, f) in forms.iter().enumerate() {
            if (key >> i) & 1 == 1 {
                atom_set.extend(f.omega.atom_set());
                omegas.push(f.omega.clone());
            }
        }
        let atoms: Vec<AtomId> = atom_set.into_iter().collect();
        let masks = satisfying_masks(&Wff::And(omegas), &atoms)?;
        slot.insert((atoms, masks));
    } else {
        cache.hits += 1;
    }
    let (atoms, masks) = &cache.combos[&key];
    let mut out = Vec::with_capacity(masks.len());
    for &mask in masks {
        let mut m = model.clone();
        for (i, a) in atoms.iter().enumerate() {
            m.set(a.index(), (mask >> i) & 1 == 1);
        }
        out.push(m);
    }
    Ok(out)
}

/// Canonicalizes a set of models: sorted and deduplicated, so two `S` sets
/// can be compared for equality. The order is lexicographic on the
/// sequence of set-bit indices.
pub fn canonicalize(mut models: Vec<BitSet>) -> Vec<BitSet> {
    models.sort_by(|a, b| a.ones().cmp(b.ones()));
    models.dedup();
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Formula;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    fn model(bits: &[usize]) -> BitSet {
        bits.iter().copied().collect()
    }

    #[test]
    fn paper_insert_a_or_b_creates_three_models() {
        // §3.2 example: inserting a ∨ b creates three models regardless of
        // the original values of a and b.
        for original in [model(&[]), model(&[0]), model(&[1]), model(&[0, 1])] {
            let form = InsertForm {
                omega: Wff::or2(a(0), a(1)),
                phi: Wff::t(),
            };
            let s = canonicalize(apply_insert(&form, &original).unwrap());
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn insert_skips_models_where_phi_false() {
        let form = InsertForm {
            omega: a(0),
            phi: a(1),
        };
        let m = model(&[]); // φ = b is false
        assert_eq!(apply_insert(&form, &m).unwrap(), vec![m]);
    }

    #[test]
    fn insert_unsatisfiable_omega_kills_model() {
        let form = InsertForm {
            omega: Wff::f(),
            phi: Wff::t(),
        };
        assert!(apply_insert(&form, &model(&[0])).unwrap().is_empty());
    }

    #[test]
    fn insert_t_changes_nothing() {
        // ω = T has one satisfying valuation over zero atoms: M unchanged.
        let form = InsertForm {
            omega: Wff::t(),
            phi: Wff::t(),
        };
        let m = model(&[0, 2]);
        assert_eq!(apply_insert(&form, &m).unwrap(), vec![m]);
    }

    #[test]
    fn insert_g_or_not_g_forgets_g() {
        // ω = g ∨ ¬g reports that g is now unknown: two models result.
        let form = InsertForm {
            omega: Wff::or2(a(0), a(0).not()),
            phi: Wff::t(),
        };
        let s = canonicalize(apply_insert(&form, &model(&[])).unwrap());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn assert_direct_semantics() {
        let u = Update::assert(a(0));
        assert_eq!(
            apply_update_direct(&u, &model(&[0])).unwrap(),
            vec![model(&[0])]
        );
        assert!(apply_update_direct(&u, &model(&[])).unwrap().is_empty());
    }

    #[test]
    fn delete_direct_semantics() {
        let u = Update::delete(AtomId(0), Wff::t());
        // t true: removed.
        assert_eq!(
            apply_update_direct(&u, &model(&[0, 1])).unwrap(),
            vec![model(&[1])]
        );
        // t false: unchanged.
        assert_eq!(
            apply_update_direct(&u, &model(&[1])).unwrap(),
            vec![model(&[1])]
        );
    }

    #[test]
    fn modify_direct_semantics_paper_example() {
        // MODIFY a TO BE a′ WHERE b ∧ a over worlds {a,b} and {a} (§3.3).
        // Atoms: a = 0, b = 1, a′ = 2.
        let u = Update::modify(AtomId(0), a(2), a(1));
        // Model 1 {a, b}: selection true → a removed, a′ inserted.
        assert_eq!(
            canonicalize(apply_update_direct(&u, &model(&[0, 1])).unwrap()),
            vec![model(&[1, 2])]
        );
        // Model 2 {a}: selection false (b false) → unchanged.
        assert_eq!(
            apply_update_direct(&u, &model(&[0])).unwrap(),
            vec![model(&[0])]
        );
    }

    #[test]
    fn satisfying_masks_reports_universe_mismatch_instead_of_panicking() {
        // ω mentions atom 5, but the caller's atom list does not include
        // it: library code must return an error, not panic.
        let omega = Wff::or2(a(0), a(5));
        let atoms = vec![AtomId(0)];
        let r = satisfying_masks(&omega, &atoms);
        assert!(matches!(r, Err(LdmlError::AtomNotInUniverse { atom: 5 })));
    }

    #[test]
    fn compiled_insert_matches_apply_insert() {
        let mut state = 0x70D0_5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let form = InsertForm {
                omega: random_wff(&mut next, 5, 2),
                phi: random_wff(&mut next, 5, 2),
            };
            let compiled = CompiledInsert::compile_form(&form).unwrap();
            for _ in 0..4 {
                let m: BitSet = (0..5usize).filter(|_| next() % 2 == 0).collect();
                let fresh = canonicalize(apply_insert(&form, &m).unwrap());
                let hoisted = canonicalize(compiled.apply(&m));
                assert_eq!(
                    fresh, hoisted,
                    "compiled path diverged for {form:?} on {m:?}"
                );
            }
        }
    }

    #[test]
    fn cached_simultaneous_matches_uncached() {
        let mut state = 0xCAC4_E5EEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let forms: Vec<InsertForm> = (0..2 + (next() % 3) as usize)
                .map(|_| InsertForm {
                    omega: random_wff(&mut next, 4, 2),
                    phi: random_wff(&mut next, 4, 2),
                })
                .collect();
            let mut cache = SimultaneousCache::default();
            for _ in 0..6 {
                let m: BitSet = (0..4usize).filter(|_| next() % 2 == 0).collect();
                let plain = canonicalize(apply_simultaneous(&forms, &m).unwrap());
                let cached =
                    canonicalize(apply_simultaneous_cached(&forms, &m, &mut cache).unwrap());
                assert_eq!(plain, cached);
            }
        }
    }

    #[test]
    fn simultaneous_cache_records_hits() {
        let forms = vec![InsertForm {
            omega: a(0),
            phi: Wff::t(),
        }];
        let mut cache = SimultaneousCache::default();
        let m = model(&[1]);
        apply_simultaneous_cached(&forms, &m, &mut cache).unwrap();
        assert_eq!(cache.hits, 0);
        apply_simultaneous_cached(&forms, &m, &mut cache).unwrap();
        apply_simultaneous_cached(&forms, &m, &mut cache).unwrap();
        assert_eq!(cache.hits, 2);
    }

    #[test]
    fn simultaneous_singleton_equals_apply_insert() {
        let mut state = 0x5151_5151u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let omega = random_wff(&mut next, 4, 2);
            let phi = random_wff(&mut next, 4, 2);
            let form = InsertForm { omega, phi };
            let m: BitSet = (0..4usize).filter(|_| next() % 2 == 0).collect();
            let single = canonicalize(apply_insert(&form, &m).unwrap());
            let multi = canonicalize(apply_simultaneous(std::slice::from_ref(&form), &m).unwrap());
            assert_eq!(single, multi);
        }
    }

    #[test]
    fn simultaneous_freezes_untriggered_atoms() {
        // U1: INSERT a WHERE T (fires). U2: INSERT ¬b WHERE c (does not
        // fire in a world without c). b must stay untouched even though it
        // appears in U2's ω.
        let forms = vec![
            InsertForm {
                omega: a(0),
                phi: Wff::t(),
            },
            InsertForm {
                omega: a(1).not(),
                phi: a(2),
            },
        ];
        let m = model(&[1]); // b true, c false
        let s = apply_simultaneous(&forms, &m).unwrap();
        assert_eq!(s, vec![model(&[0, 1])]); // a set, b kept
                                             // In a world with c, both fire: b removed too.
        let m = model(&[1, 2]);
        let s = apply_simultaneous(&forms, &m).unwrap();
        assert_eq!(s, vec![model(&[0, 2])]);
    }

    #[test]
    fn simultaneous_differs_from_sequential() {
        // U1: INSERT a WHERE ¬b. U2: INSERT b WHERE ¬a. From the empty
        // world, sequential U1;U2 gives {a, b}? No: after U1, a holds, so
        // U2's ¬a is false → {a}. Simultaneous: both fire from the empty
        // world → {a, b}. This is why variable updates need simultaneity.
        let u1 = InsertForm {
            omega: a(0),
            phi: a(1).not(),
        };
        let u2 = InsertForm {
            omega: a(1),
            phi: a(0).not(),
        };
        let empty = model(&[]);
        // Sequential.
        let after1 = apply_insert(&u1, &empty).unwrap();
        assert_eq!(after1, vec![model(&[0])]);
        let after2 = apply_insert(&u2, &after1[0]).unwrap();
        assert_eq!(after2, vec![model(&[0])]);
        // Simultaneous.
        let s = apply_simultaneous(&[u1, u2], &empty).unwrap();
        assert_eq!(s, vec![model(&[0, 1])]);
    }

    #[test]
    fn simultaneous_conflicting_updates_kill_model() {
        // Both fire, ω1 ∧ ω2 unsatisfiable → the model dies.
        let u1 = InsertForm {
            omega: a(0),
            phi: Wff::t(),
        };
        let u2 = InsertForm {
            omega: a(0).not(),
            phi: Wff::t(),
        };
        let s = apply_simultaneous(&[u1, u2], &model(&[])).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn simultaneous_none_triggered_is_identity() {
        let u1 = InsertForm {
            omega: a(0),
            phi: a(1),
        };
        let m = model(&[2]);
        let s = apply_simultaneous(std::slice::from_ref(&u1), &m).unwrap();
        assert_eq!(s, vec![m]);
    }

    /// The §3.2 reduction claims: DELETE/MODIFY/ASSERT via INSERT agree
    /// with the direct definitions — except ASSERT on failing models, where
    /// INSERT F produces the empty set via the branch rather than the
    /// φ-false branch; both give ∅ overall, so they agree there too.
    #[test]
    fn reductions_agree_with_direct_definitions() {
        let mut state = 0xABCDEF123456u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let universe = 5usize;
        for _ in 0..500 {
            let update = random_update(&mut next, universe);
            let m: BitSet = (0..universe).filter(|_| next() % 2 == 0).collect();
            let via_insert = canonicalize(apply_update(&update, &m).unwrap());
            let direct = canonicalize(apply_update_direct(&update, &m).unwrap());
            assert_eq!(
                via_insert, direct,
                "reduction mismatch for {update:?} on {m:?}"
            );
        }
    }

    fn random_wff(next: &mut impl FnMut() -> u64, universe: usize, depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(3) {
            return match next() % 6 {
                0 => Wff::t(),
                1 => Wff::f(),
                _ => a((next() % universe as u64) as u32),
            };
        }
        match next() % 4 {
            0 => random_wff(next, universe, depth - 1).not(),
            1 => Wff::and2(
                random_wff(next, universe, depth - 1),
                random_wff(next, universe, depth - 1),
            ),
            2 => Wff::or2(
                random_wff(next, universe, depth - 1),
                random_wff(next, universe, depth - 1),
            ),
            _ => Wff::implies(
                random_wff(next, universe, depth - 1),
                random_wff(next, universe, depth - 1),
            ),
        }
    }

    fn random_update(next: &mut impl FnMut() -> u64, universe: usize) -> Update {
        match next() % 4 {
            0 => Update::insert(random_wff(next, universe, 2), random_wff(next, universe, 2)),
            1 => Update::delete(
                AtomId((next() % universe as u64) as u32),
                random_wff(next, universe, 2),
            ),
            2 => Update::modify(
                AtomId((next() % universe as u64) as u32),
                random_wff(next, universe, 2),
                random_wff(next, universe, 2),
            ),
            _ => Update::assert(random_wff(next, universe, 2)),
        }
    }
}
