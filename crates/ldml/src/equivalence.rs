//! Update equivalence — Theorems 2, 3, and 4 of §3.4.
//!
//! Two updates are *equivalent* when they produce the same set of
//! alternative worlds from every extended relational theory (over the
//! language or any extension of it — the extension quantifier is what makes
//! per-model comparison sound, per Theorem 6). The theorems give decidable
//! criteria; this module implements them with SAT-backed validity checks
//! and exhaustive valuation enumeration over the (small) atom sets of the
//! updates, plus a brute-force per-model checker used to cross-validate the
//! deciders in tests.
//!
//! **Syntax matters here.** `INSERT p` and `INSERT p ∨ T` are *not*
//! equivalent: the latter has two satisfying valuations over `{p}` and so
//! branches. For this reason the deciders operate on the raw parse trees —
//! callers must not constant-fold ω before deciding equivalence.

use crate::error::LdmlError;
use crate::semantics::{apply_update, canonicalize};
use crate::update::Update;
use rustc_hash::FxHashSet;
use std::collections::BTreeSet;
use winslett_logic::{AtomId, BitSet, EntailmentSession, Wff};

/// Maximum distinct atoms in an ω for valuation enumeration.
const MAX_ATOMS: usize = 24;

/// Outcome of an equivalence decision, with the reason recorded for
/// transcripts and the E2 harness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquivalenceVerdict {
    /// Whether the updates are equivalent on every extended relational
    /// theory.
    pub equivalent: bool,
    /// Which condition decided it, in the theorems' numbering.
    pub reason: String,
}

impl EquivalenceVerdict {
    fn yes(reason: impl Into<String>) -> Self {
        EquivalenceVerdict {
            equivalent: true,
            reason: reason.into(),
        }
    }

    fn no(reason: impl Into<String>) -> Self {
        EquivalenceVerdict {
            equivalent: false,
            reason: reason.into(),
        }
    }
}

/// Theorem 2 (sufficient only): same selection clause, logically equivalent
/// ω with identical atom sets.
pub fn theorem2_sufficient(b1: &Update, b2: &Update, num_atoms: usize) -> bool {
    let f1 = b1.to_insert();
    let f2 = b2.to_insert();
    f1.phi == f2.phi
        && f1.omega.atom_set() == f2.omega.atom_set()
        && EntailmentSession::new(num_atoms).equivalent(&f1.omega, &f2.omega)
}

/// The satisfying valuations of `w` over its own atom set, projected onto
/// `proj`, encoded as masks over the sorted projection atoms.
fn projected_valuations(w: &Wff, proj: &BTreeSet<AtomId>) -> Result<FxHashSet<u32>, LdmlError> {
    let atoms: Vec<AtomId> = w.atom_set().into_iter().collect();
    if atoms.len() > MAX_ATOMS {
        return Err(LdmlError::TooLarge {
            atoms: atoms.len(),
            max: MAX_ATOMS,
        });
    }
    let proj_sorted: Vec<AtomId> = proj.iter().copied().collect();
    let mut out = FxHashSet::default();
    for mask in 0u32..(1u32 << atoms.len()) {
        let ok = w.eval(&mut |a: &AtomId| {
            let i = atoms.iter().position(|x| x == a).expect("atom in own set");
            (mask >> i) & 1 == 1
        });
        if ok {
            let mut pmask = 0u32;
            for (j, p) in proj_sorted.iter().enumerate() {
                if let Some(i) = atoms.iter().position(|x| x == p) {
                    if (mask >> i) & 1 == 1 {
                        pmask |= 1 << j;
                    }
                }
                // Projection atoms not in w's atom set cannot occur: proj
                // is an intersection with w's atoms at the call sites.
            }
            out.insert(pmask);
        }
    }
    Ok(out)
}

/// Number of satisfying valuations of `w` over its atom set, capped at 2.
fn satisfying_count_capped(w: &Wff) -> Result<u32, LdmlError> {
    let atoms: Vec<AtomId> = w.atom_set().into_iter().collect();
    if atoms.len() > MAX_ATOMS {
        return Err(LdmlError::TooLarge {
            atoms: atoms.len(),
            max: MAX_ATOMS,
        });
    }
    let mut count = 0u32;
    for mask in 0u32..(1u32 << atoms.len()) {
        let ok = w.eval(&mut |a: &AtomId| {
            let i = atoms.iter().position(|x| x == a).expect("atom in own set");
            (mask >> i) & 1 == 1
        });
        if ok {
            count += 1;
            if count >= 2 {
                return Ok(2);
            }
        }
    }
    Ok(count)
}

/// Theorem 3: necessary and sufficient equivalence criteria for two INSERT
/// updates sharing the selection clause `phi`.
///
/// `num_atoms` is the size of the interned-atom universe (for SAT).
pub fn theorem3(
    omega1: &Wff,
    omega2: &Wff,
    phi: &Wff,
    num_atoms: usize,
) -> Result<EquivalenceVerdict, LdmlError> {
    let mut session = EntailmentSession::new(num_atoms);
    theorem3_with(&mut session, omega1, omega2, phi)
}

/// [`theorem3`] against a caller-supplied formula-level session, so batch
/// checkers (the analyzer's duplicate/no-op lints) amortize the encoding
/// across many decisions. The session must have an empty base and cover at
/// least the atoms of all three wffs.
pub fn theorem3_with(
    session: &mut EntailmentSession,
    omega1: &Wff,
    omega2: &Wff,
    phi: &Wff,
) -> Result<EquivalenceVerdict, LdmlError> {
    if !session.satisfiable(phi) {
        return Ok(EquivalenceVerdict::yes("φ unsatisfiable: both are no-ops"));
    }
    // The theorem's conditions presuppose satisfiable ω ("assume that ω1,
    // and therefore ω2, is satisfiable, as otherwise the theorem follows
    // immediately"): an unsatisfiable ω deletes every φ-model outright.
    let s1 = satisfying_count_capped(omega1)? > 0;
    let s2 = satisfying_count_capped(omega2)? > 0;
    if !s1 || !s2 {
        return Ok(if s1 == s2 {
            EquivalenceVerdict::yes("both ω unsatisfiable: both kill every φ-model")
        } else {
            EquivalenceVerdict::no("exactly one ω is unsatisfiable")
        });
    }
    let a1 = omega1.atom_set();
    let a2 = omega2.atom_set();
    let i: BTreeSet<AtomId> = a1.intersection(&a2).copied().collect();

    // Condition (1): V1 = V2.
    let v1 = projected_valuations(omega1, &i)?;
    let v2 = projected_valuations(omega2, &i)?;
    if v1 != v2 {
        return Ok(EquivalenceVerdict::no(
            "condition (1) fails: ω1 and ω2 admit different valuations on their shared atoms",
        ));
    }

    // Conditions (2)/(3): one-sided atoms must be frozen by both ω and φ.
    for (only, omega, which) in [
        (a1.difference(&a2), omega1, "(2)"),
        (a2.difference(&a1), omega2, "(3)"),
    ] {
        for &g in only {
            let ga = Wff::Atom(g);
            let pos = Wff::and2(
                Wff::implies(omega.clone(), ga.clone()),
                Wff::implies(phi.clone(), ga.clone()),
            );
            let neg = Wff::and2(
                Wff::implies(omega.clone(), ga.clone().not()),
                Wff::implies(phi.clone(), ga.not()),
            );
            if !session.valid(&pos) && !session.valid(&neg) {
                return Ok(EquivalenceVerdict::no(format!(
                    "condition {which} fails: atom {g} occurs on one side only and its value can change"
                )));
            }
        }
    }
    Ok(EquivalenceVerdict::yes("Theorem 3 conditions (1)-(3) hold"))
}

/// Theorem 4: necessary and sufficient criteria for two INSERT updates with
/// arbitrary selection clauses. (When the clauses coincide this reduces to
/// Theorem 3.)
pub fn theorem4(
    b1: &Update,
    b2: &Update,
    num_atoms: usize,
) -> Result<EquivalenceVerdict, LdmlError> {
    let mut session = EntailmentSession::new(num_atoms);
    theorem4_with(&mut session, b1, b2)
}

/// [`theorem4`] against a caller-supplied formula-level session (empty
/// base, universe covering both updates' atoms).
pub fn theorem4_with(
    session: &mut EntailmentSession,
    b1: &Update,
    b2: &Update,
) -> Result<EquivalenceVerdict, LdmlError> {
    let f1 = b1.to_insert();
    let f2 = b2.to_insert();
    let both = Wff::And(vec![f1.phi.clone(), f2.phi.clone()]);
    let only1 = Wff::And(vec![f1.phi.clone(), f2.phi.clone().not()]);
    let only2 = Wff::And(vec![f2.phi.clone(), f1.phi.clone().not()]);

    // Condition (1): equivalence over the shared region, via Theorem 3.
    let t3 = theorem3_with(session, &f1.omega, &f2.omega, &both)?;
    if !t3.equivalent {
        return Ok(EquivalenceVerdict::no(format!(
            "condition (1) fails on the shared region: {}",
            t3.reason
        )));
    }

    // Conditions (2)+(3): in the region where only one update fires, it
    // must be a no-op — ω already holds there and admits exactly one
    // valuation.
    for (region, omega, which) in [(&only1, &f1.omega, "B1"), (&only2, &f2.omega, "B2")] {
        if !session.valid(&Wff::implies((*region).clone(), omega.clone())) {
            return Ok(EquivalenceVerdict::no(format!(
                "condition (2) fails: {which} fires alone in a world where its ω is not already true"
            )));
        }
        if session.satisfiable(region) && satisfying_count_capped(omega)? != 1 {
            return Ok(EquivalenceVerdict::no(format!(
                "condition (3) fails: {which} fires alone and its ω is not uniquely satisfiable"
            )));
        }
    }
    Ok(EquivalenceVerdict::yes("Theorem 4 conditions (1)-(3) hold"))
}

/// Decides update equivalence using the theorems (Theorem 4, which subsumes
/// Theorem 3).
///
/// ```
/// use winslett_ldml::{equivalent_updates, Update};
/// use winslett_logic::{AtomId, Formula, Wff};
///
/// // The paper's §3.4 example: INSERT p ≢ INSERT p ∨ T (raw Or — syntax
/// // matters, so don't constant-fold ω).
/// let b1 = Update::insert(Wff::Atom(AtomId(0)), Wff::t());
/// let b2 = Update::insert(Formula::Or(vec![Wff::Atom(AtomId(0)), Wff::t()]), Wff::t());
/// let verdict = equivalent_updates(&b1, &b2, 1)?;
/// assert!(!verdict.equivalent);
/// # Ok::<(), winslett_ldml::LdmlError>(())
/// ```
pub fn equivalent_updates(
    b1: &Update,
    b2: &Update,
    num_atoms: usize,
) -> Result<EquivalenceVerdict, LdmlError> {
    theorem4(b1, b2, num_atoms)
}

/// [`equivalent_updates`] against a caller-supplied formula-level session,
/// so a batch of pairwise checks shares one solver and its learnt clauses.
pub fn equivalent_updates_with(
    session: &mut EntailmentSession,
    b1: &Update,
    b2: &Update,
) -> Result<EquivalenceVerdict, LdmlError> {
    theorem4_with(session, b1, b2)
}

/// The canonical world set of applying `first` then `second` to model `m`.
fn compose_orders(first: &Update, second: &Update, m: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    let mut out = Vec::new();
    for w in apply_update(first, m)? {
        out.extend(apply_update(second, &w)?);
    }
    Ok(canonicalize(out))
}

/// Exact bounded commutativity: whether `b1;b2` and `b2;b1` produce the
/// same world set from **every** model. Enumeration runs over the joint
/// atom set of the two updates only — atoms mentioned by neither update
/// persist identically under both orders and cannot influence either ω or
/// φ, so agreement over the joint atoms is agreement over every model
/// (and, since every model is realizable as a single-world theory, over
/// every extended relational theory without dependency or type axioms).
///
/// `max_atoms` is the per-pair budget: joint atom sets larger than it (or
/// than the global cap of 20) return [`LdmlError::TooLarge`] so callers
/// can fall back to a conservative answer.
///
/// ```
/// use winslett_ldml::{commutes_brute, Update};
/// use winslett_logic::{AtomId, Wff};
///
/// let b1 = Update::insert(Wff::Atom(AtomId(0)), Wff::t());
/// let b2 = Update::insert(Wff::Atom(AtomId(1)), Wff::t());
/// assert!(commutes_brute(&b1, &b2, 12)?);
/// // INSERT p and DELETE p do not commute.
/// let b3 = Update::delete(AtomId(0), Wff::t());
/// assert!(!commutes_brute(&b1, &b3, 12)?);
/// # Ok::<(), winslett_ldml::LdmlError>(())
/// ```
pub fn commutes_brute(b1: &Update, b2: &Update, max_atoms: usize) -> Result<bool, LdmlError> {
    let f1 = b1.to_insert();
    let f2 = b2.to_insert();
    let mut joint: BTreeSet<AtomId> = BTreeSet::new();
    for w in [&f1.omega, &f1.phi, &f2.omega, &f2.phi] {
        joint.extend(w.atom_set());
    }
    let atoms: Vec<AtomId> = joint.into_iter().collect();
    if atoms.len() > max_atoms.min(20) {
        return Err(LdmlError::TooLarge {
            atoms: atoms.len(),
            max: max_atoms.min(20),
        });
    }
    for mask in 0u64..(1u64 << atoms.len()) {
        let m: BitSet = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, a)| a.index())
            .collect();
        if compose_orders(b1, b2, &m)? != compose_orders(b2, b1, &m)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Brute-force semantic equivalence: compares the `S` sets of the two
/// updates on *every* model over atoms `0..universe`. Sound and complete
/// because every model is realizable as a single-world extended relational
/// theory (the construction in the proofs of Theorems 3 and 4), so
/// per-model agreement on all models is exactly update equivalence.
pub fn equivalent_brute(b1: &Update, b2: &Update, universe: usize) -> Result<bool, LdmlError> {
    if universe > 20 {
        return Err(LdmlError::TooLarge {
            atoms: universe,
            max: 20,
        });
    }
    for mask in 0u64..(1u64 << universe) {
        let m: BitSet = (0..universe).filter(|i| (mask >> i) & 1 == 1).collect();
        let s1 = canonicalize(apply_update(b1, &m)?);
        let s2 = canonicalize(apply_update(b2, &m)?);
        if s1 != s2 {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Formula;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    const N: usize = 4; // universe for SAT checks in these tests

    fn check_against_brute(b1: &Update, b2: &Update) -> bool {
        let decided = equivalent_updates(b1, b2, N).unwrap().equivalent;
        let brute = equivalent_brute(b1, b2, N).unwrap();
        assert_eq!(
            decided, brute,
            "theorem decision disagrees with brute force for {b1:?} vs {b2:?}"
        );
        decided
    }

    #[test]
    fn paper_example_p_vs_p_or_t_not_equivalent() {
        // §3.4: INSERT p WHERE T vs INSERT p ∨ T WHERE T differ on
        // producing models where p is false. NOTE: raw Or, not the folding
        // constructor.
        let b1 = Update::insert(a(0), Wff::t());
        let b2 = Update::insert(Formula::Or(vec![a(0), Wff::t()]), Wff::t());
        assert!(!check_against_brute(&b1, &b2));
    }

    #[test]
    fn paper_example_vacuous_selection_equivalent() {
        // §3.4: INSERT p WHERE p∧q ≡ INSERT q WHERE p∧q.
        let sel = Wff::and2(a(0), a(1));
        let b1 = Update::insert(a(0), sel.clone());
        let b2 = Update::insert(a(1), sel);
        assert!(check_against_brute(&b1, &b2));
    }

    #[test]
    fn theorem2_applies_to_reordered_omega() {
        // ω1 = p ∧ q, ω2 = q ∧ p: logically equivalent, same atoms.
        let b1 = Update::insert(Wff::And(vec![a(0), a(1)]), a(2));
        let b2 = Update::insert(Wff::And(vec![a(1), a(0)]), a(2));
        assert!(theorem2_sufficient(&b1, &b2, N));
        assert!(check_against_brute(&b1, &b2));
    }

    #[test]
    fn theorem2_is_only_sufficient() {
        // The paper's own example of why Theorem 2 is not necessary:
        // INSERT q WHERE p∧q ≡ INSERT p WHERE p∧q but ω's differ.
        let sel = Wff::and2(a(0), a(1));
        let b1 = Update::insert(a(1), sel.clone());
        let b2 = Update::insert(a(0), sel);
        assert!(!theorem2_sufficient(&b1, &b2, N));
        assert!(equivalent_updates(&b1, &b2, N).unwrap().equivalent);
    }

    #[test]
    fn t_vs_g_or_not_g_not_equivalent() {
        // §3.2's motivating pair: INSERT T (no change) vs INSERT g ∨ ¬g
        // (forget g).
        let b1 = Update::insert(Wff::t(), Wff::t());
        let b2 = Update::insert(Formula::Or(vec![a(0), a(0).not()]), Wff::t());
        assert!(!check_against_brute(&b1, &b2));
    }

    #[test]
    fn unsatisfiable_selection_makes_everything_equivalent() {
        let phi = Wff::and2(a(0), a(0).not());
        let b1 = Update::insert(a(1), phi.clone());
        let b2 = Update::insert(a(2).not(), phi);
        assert!(check_against_brute(&b1, &b2));
    }

    #[test]
    fn different_selections_equivalent_when_lone_region_is_noop() {
        // B1: INSERT p WHERE p∧q. B2: INSERT p WHERE q.
        // Region where only B2 fires: q∧¬(p∧q) = q∧¬p — there B2 sets p
        // true, changing the world, while B1 does nothing → not equivalent.
        let b1 = Update::insert(a(0), Wff::and2(a(0), a(1)));
        let b2 = Update::insert(a(0), a(1));
        assert!(!check_against_brute(&b1, &b2));

        // B1: INSERT p WHERE p∧q. B2: INSERT p WHERE p — in the lone
        // region p∧¬q, ω=p already holds and is uniquely satisfiable:
        // equivalent.
        let b1 = Update::insert(a(0), Wff::and2(a(0), a(1)));
        let b2 = Update::insert(a(0), a(0));
        assert!(check_against_brute(&b1, &b2));
    }

    #[test]
    fn delete_equals_modify_to_not_t() {
        // §3.2: DELETE t WHERE φ∧t ≡ MODIFY t TO BE ¬t WHERE φ∧t.
        let b1 = Update::delete(AtomId(0), a(1));
        let b2 = Update::modify(AtomId(0), a(0).not(), a(1));
        assert!(check_against_brute(&b1, &b2));
    }

    #[test]
    fn assert_equals_insert_false() {
        let b1 = Update::assert(a(0));
        let b2 = Update::insert(Wff::f(), a(0).not());
        assert!(check_against_brute(&b1, &b2));
    }

    #[test]
    fn commutes_brute_basics() {
        // Disjoint inserts commute.
        let b1 = Update::insert(a(0), Wff::t());
        let b2 = Update::insert(a(1), Wff::t());
        assert!(commutes_brute(&b1, &b2, 12).unwrap());
        // Insert vs delete of the same atom: order-sensitive.
        let b3 = Update::delete(AtomId(0), Wff::t());
        assert!(!commutes_brute(&b1, &b3, 12).unwrap());
        // Write into the other's guard: order-sensitive.
        let b4 = Update::insert(a(1), a(0));
        assert!(!commutes_brute(&b1, &b4, 12).unwrap());
        // Equivalent updates trivially commute.
        let b5 = Update::insert(a(0), Wff::t());
        assert!(commutes_brute(&b1, &b5, 12).unwrap());
        // Budget exceeded reports TooLarge rather than guessing.
        let wide = Wff::And((0..15).map(a).collect());
        let b6 = Update::insert(wide.clone(), Wff::t());
        let b7 = Update::insert(wide, Wff::t());
        assert!(matches!(
            commutes_brute(&b6, &b7, 8),
            Err(LdmlError::TooLarge { .. })
        ));
    }

    #[test]
    fn footprint_independence_implies_commutation() {
        // The soundness direction the conflict analyzer relies on, checked
        // against the model-level semantics over random update pairs.
        let mut state = 0x0DDB_A11C_0FFE_E000u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut independent_seen = 0;
        for _ in 0..400 {
            let b1 = random_update(&mut next);
            let b2 = random_update(&mut next);
            let f1 = crate::footprint::update_footprint(&b1);
            let f2 = crate::footprint::update_footprint(&b2);
            if f1.independent(&f2) {
                independent_seen += 1;
                assert!(
                    commutes_brute(&b1, &b2, 20).unwrap(),
                    "independent footprints must commute: {b1:?} vs {b2:?}"
                );
            }
        }
        assert!(
            independent_seen > 0,
            "generator produced no independent pairs"
        );
    }

    #[test]
    fn random_updates_cross_validated() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut equivalent_seen = 0;
        for _ in 0..300 {
            let b1 = random_update(&mut next);
            let b2 = random_update(&mut next);
            if check_against_brute(&b1, &b2) {
                equivalent_seen += 1;
            }
            // Reflexivity.
            assert!(check_against_brute(&b1, &b1));
        }
        // Sanity: the generator should produce at least a few equivalent
        // pairs (mostly via unsatisfiable selections).
        assert!(equivalent_seen > 0);
    }

    fn random_wff(next: &mut impl FnMut() -> u64, depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(3) {
            return match next() % 6 {
                0 => Wff::t(),
                1 => Wff::f(),
                _ => a((next() % N as u64) as u32),
            };
        }
        match next() % 4 {
            0 => random_wff(next, depth - 1).not(),
            1 => Formula::And(vec![
                random_wff(next, depth - 1),
                random_wff(next, depth - 1),
            ]),
            2 => Formula::Or(vec![
                random_wff(next, depth - 1),
                random_wff(next, depth - 1),
            ]),
            _ => Wff::implies(random_wff(next, depth - 1), random_wff(next, depth - 1)),
        }
    }

    fn random_update(next: &mut impl FnMut() -> u64) -> Update {
        match next() % 4 {
            0 => Update::insert(random_wff(next, 2), random_wff(next, 2)),
            1 => Update::delete(AtomId((next() % N as u64) as u32), random_wff(next, 1)),
            2 => Update::modify(
                AtomId((next() % N as u64) as u32),
                random_wff(next, 1),
                random_wff(next, 1),
            ),
            _ => Update::assert(random_wff(next, 2)),
        }
    }
}
