//! # winslett-ldml
//!
//! LDML — the Logical Data Manipulation Language of Winslett (PODS 1986,
//! §3): ground updates over extended relational theories.
//!
//! * [`Update`] — the four operators (`INSERT`, `DELETE`, `MODIFY`,
//!   `ASSERT`) and their §3.2 reductions to INSERT form.
//! * [`parse_update`] — the textual statement syntax used in the paper's
//!   examples.
//! * [`semantics`] — the §3.2 model-level definitions (the source of truth
//!   against which the GUA algorithm is verified).
//! * [`equivalence`] — Theorems 2–4: decidable criteria for when two
//!   updates produce identical alternative worlds on every theory, plus a
//!   brute-force per-model checker for cross-validation.

pub mod equivalence;
pub mod error;
pub mod footprint;
pub mod parser;
pub mod semantics;
pub mod update;

pub use equivalence::{
    commutes_brute, equivalent_brute, equivalent_updates, equivalent_updates_with,
    theorem2_sufficient, theorem3, theorem3_with, theorem4, theorem4_with, EquivalenceVerdict,
};
pub use error::LdmlError;
pub use footprint::update_footprint;
pub use parser::parse_update;
pub use semantics::{
    apply_insert, apply_simultaneous, apply_simultaneous_cached, apply_update, apply_update_direct,
    canonicalize, satisfying_masks, CompiledInsert, SimultaneousCache,
};
pub use update::{InsertForm, Update};
