//! Error types for LDML.

use std::fmt;
use winslett_logic::Span;

/// Errors raised while parsing or validating LDML updates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LdmlError {
    /// Malformed LDML statement.
    Parse {
        /// Description of the defect.
        message: String,
        /// Byte range of the offending region within the statement.
        span: Span,
    },
    /// The update mentions a predicate constant. Updates are wffs over L′,
    /// which excludes predicate constants (§3.1).
    PredicateConstantInUpdate {
        /// Name of the predicate constant.
        name: String,
    },
    /// DELETE/MODIFY require a ground *atomic* formula as target.
    TargetNotAtomic,
    /// An equivalence check needed to enumerate too many valuations.
    TooLarge {
        /// Number of atoms involved.
        atoms: usize,
        /// The supported maximum.
        max: usize,
    },
    /// A wff evaluator was asked for an atom missing from the atom list it
    /// was compiled against — the wff and its atom universe are out of
    /// sync. This is a library-level invariant violation reported as an
    /// error rather than a panic so callers embedding LDML stay up.
    AtomNotInUniverse {
        /// The raw id of the unexpected atom.
        atom: u32,
    },
    /// An error from the logic kernel (sub-wff parsing).
    Logic(winslett_logic::LogicError),
}

impl fmt::Display for LdmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdmlError::Parse { message, .. } => write!(f, "LDML parse error: {message}"),
            LdmlError::PredicateConstantInUpdate { name } => write!(
                f,
                "predicate constant `{name}` may not appear in an LDML update"
            ),
            LdmlError::TargetNotAtomic => {
                write!(f, "DELETE/MODIFY target must be a ground atomic formula")
            }
            LdmlError::TooLarge { atoms, max } => write!(
                f,
                "equivalence check over {atoms} atoms exceeds the supported maximum of {max}"
            ),
            LdmlError::AtomNotInUniverse { atom } => write!(
                f,
                "atom #{atom} is not in the atom universe this wff was compiled against"
            ),
            LdmlError::Logic(e) => write!(f, "{e}"),
        }
    }
}

impl LdmlError {
    /// The byte range within the statement this error points at, if any.
    pub fn span(&self) -> Option<Span> {
        match self {
            LdmlError::Parse { span, .. } => Some(*span),
            LdmlError::Logic(e) => e.span(),
            _ => None,
        }
    }
}

impl std::error::Error for LdmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LdmlError::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<winslett_logic::LogicError> for LdmlError {
    fn from(e: winslett_logic::LogicError) -> Self {
        LdmlError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LdmlError::TargetNotAtomic.to_string().contains("atomic"));
        let e = LdmlError::TooLarge { atoms: 30, max: 24 };
        assert!(e.to_string().contains("30"));
    }
}
