//! Update footprints: the read/write [`AccessSet`] of an LDML statement.
//!
//! Computed from the §3.2 INSERT form `INSERT ω WHERE φ`:
//!
//! * **reads** = atoms(φ) — the selection clause observes their current
//!   values (for DELETE/MODIFY this includes the target tuple `t`, which
//!   the reduction conjoins into φ);
//! * **writes** = atoms(ω) — the insertion replaces their values with the
//!   satisfying valuations of ω, *regardless* of their old values, while
//!   every unmentioned atom persists (the minimal-change frame). ω atoms
//!   are therefore pure writes, not read-writes.
//! * **prunes** — when ω is unsatisfiable (every `ASSERT`, by the
//!   `INSERT F WHERE ¬φ` reduction), selected worlds are deleted outright.
//!   World deletion is visible to *any* other statement through the
//!   theory's world set, so a pruning statement conflicts with everything.
//!
//! Soundness of the resulting independence check (each statement's write
//! set disjoint from the other's read∪write set, neither pruning) is per
//! world: the two updates rewrite disjoint coordinates, and neither can
//! change the other's φ value, so both application orders produce the same
//! world set. `commutes_brute` in [`crate::equivalence`] cross-validates
//! this against the model-level semantics, and the workspace proptests
//! check it through the §4 replay path.
//!
//! **Caveat (axiom coupling):** this footprint is over L′ syntax only. At
//! the theory level, type axioms and template dependencies (§3.5 rule 3)
//! can filter produced worlds, coupling atoms of *different* predicates —
//! e.g. with an FD of key 0, `DELETE Orders(700,32)` and
//! `INSERT Orders(700,33)` do not commute even though their atom sets are
//! disjoint. Consumers analyzing statements against a theory with
//! dependency or type axioms must widen the footprint accordingly (the
//! analyzer conservatively marks writes into constrained predicates as
//! pruning; see `winslett-analyze`).

use crate::update::Update;
use rustc_hash::FxHashMap;
use winslett_logic::{AccessSet, AtomId, Wff};

/// Atom cap for the exact ω-satisfiability sweep; above it the footprint
/// conservatively reports `prunes = true`.
const MAX_SAT_SWEEP_ATOMS: usize = 20;

/// Whether `w` has at least one satisfying valuation over its own atom
/// set. `None` when the atom set exceeds [`MAX_SAT_SWEEP_ATOMS`].
fn satisfiable_bounded(w: &Wff) -> Option<bool> {
    let atoms: Vec<AtomId> = w.atom_set().into_iter().collect();
    if atoms.len() > MAX_SAT_SWEEP_ATOMS {
        return None;
    }
    let index: FxHashMap<AtomId, usize> = atoms
        .iter()
        .copied()
        .enumerate()
        .map(|(i, a)| (a, i))
        .collect();
    for mask in 0u32..(1u32 << atoms.len()) {
        let ok = w.eval(&mut |a: &AtomId| index.get(a).is_some_and(|&i| (mask >> i) & 1 == 1));
        if ok {
            return Some(true);
        }
    }
    Some(false)
}

/// Computes the footprint of an update from its INSERT form.
///
/// A statement whose φ is unsatisfiable selects no world and therefore
/// does nothing; it gets the empty footprint (independent of everything).
///
/// ```
/// use winslett_ldml::{update_footprint, Update};
/// use winslett_logic::{AtomId, Wff};
///
/// // DELETE t WHERE φ ∧ t: writes {t}, reads {φ's atoms, t}.
/// let fp = update_footprint(&Update::delete(AtomId(0), Wff::Atom(AtomId(1))));
/// assert!(fp.writes.contains(&AtomId(0)));
/// assert!(fp.reads.contains(&AtomId(0)) && fp.reads.contains(&AtomId(1)));
/// assert!(!fp.prunes);
///
/// // ASSERT φ reduces to INSERT F WHERE ¬φ: it deletes worlds.
/// assert!(update_footprint(&Update::assert(Wff::Atom(AtomId(0)))).prunes);
/// ```
pub fn update_footprint(u: &Update) -> AccessSet {
    let form = u.to_insert();
    if satisfiable_bounded(&form.phi) == Some(false) {
        return AccessSet::default(); // selects no world: a guaranteed no-op
    }
    let prunes = satisfiable_bounded(&form.omega) != Some(true);
    AccessSet::new(form.phi.atom_set(), form.omega.atom_set()).with_prunes(prunes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Formula;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    #[test]
    fn insert_reads_phi_writes_omega() {
        let fp = update_footprint(&Update::insert(Wff::or2(a(0), a(1)), a(2)));
        assert_eq!(fp.writes, [AtomId(0), AtomId(1)].into_iter().collect());
        assert_eq!(fp.reads, [AtomId(2)].into_iter().collect());
        assert!(!fp.prunes);
    }

    #[test]
    fn modify_without_t_in_omega_writes_t() {
        // MODIFY t TO BE ω WHERE φ ∧ t with t ∉ ω carries ¬t in ω.
        let fp = update_footprint(&Update::modify(AtomId(0), a(1), a(2)));
        assert_eq!(fp.writes, [AtomId(0), AtomId(1)].into_iter().collect());
        assert_eq!(fp.reads, [AtomId(0), AtomId(2)].into_iter().collect());
        assert!(!fp.prunes);
    }

    #[test]
    fn unsatisfiable_omega_prunes() {
        let fp = update_footprint(&Update::insert(Wff::and2(a(0), a(0).not()), Wff::t()));
        assert!(fp.prunes);
        let fp = update_footprint(&Update::assert(a(0)));
        assert!(fp.prunes);
    }

    #[test]
    fn unsatisfiable_phi_yields_empty_footprint() {
        let dead = Update::insert(a(3), Wff::and2(a(0), a(0).not()));
        let fp = update_footprint(&dead);
        assert_eq!(fp, winslett_logic::AccessSet::default());
        // A vacuous ASSERT (valid φ) likewise selects nothing.
        let vac = Update::assert(Wff::or2(a(0), a(0).not()));
        assert_eq!(update_footprint(&vac), winslett_logic::AccessSet::default());
        // The no-op is independent even of a pruning statement.
        assert!(fp.independent(&update_footprint(&Update::assert(a(1)))));
    }

    #[test]
    fn independent_updates_per_footprint() {
        let u1 = update_footprint(&Update::insert(a(0), a(1)));
        let u2 = update_footprint(&Update::insert(a(2), a(3)));
        assert!(u1.independent(&u2));
        // Shared guard atom is read-read: still independent.
        let u3 = update_footprint(&Update::insert(a(4), a(1)));
        assert!(u1.independent(&u3));
        // u4 writes u1's guard atom: conflict.
        let u4 = update_footprint(&Update::insert(a(1), Wff::t()));
        assert!(!u1.independent(&u4));
    }
}
