//! Textual LDML statements.
//!
//! ```text
//! INSERT <wff> WHERE <wff>
//! DELETE <atom> WHERE <wff>            -- the "∧ t" conjunct is implicit
//! MODIFY <atom> TO BE <wff> WHERE <wff>
//! ASSERT <wff>
//! ```
//!
//! Keywords are case-insensitive and must appear at parenthesis depth 0.
//! Sub-wffs use the concrete syntax of [`winslett_logic::parse_wff`]. The
//! paper's examples parse verbatim, e.g.
//!
//! ```text
//! MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)
//! INSERT Orders(800,32,1000) WHERE T
//! ```

use crate::error::LdmlError;
use crate::update::Update;
use winslett_logic::{parse_wff, Formula, ParseContext, Span, Wff};

/// Parses one LDML statement.
///
/// ```
/// use winslett_ldml::{parse_update, Update};
/// use winslett_logic::{AtomTable, ParseContext, Vocabulary};
///
/// let mut vocab = Vocabulary::new();
/// let mut atoms = AtomTable::new();
/// let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
/// let u = parse_update(
///     "MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)",
///     &mut ctx,
/// )?;
/// assert!(matches!(u, Update::Modify { .. }));
/// # Ok::<(), winslett_ldml::LdmlError>(())
/// ```
pub fn parse_update(input: &str, ctx: &mut ParseContext<'_>) -> Result<Update, LdmlError> {
    let trimmed = input.trim();
    let stmt_span = span_of(input, trimmed);
    let (keyword, rest) = split_first_word(trimmed);
    match keyword.to_ascii_uppercase().as_str() {
        "INSERT" => {
            let (omega_src, phi_src) =
                split_keyword(rest, "WHERE").ok_or_else(|| LdmlError::Parse {
                    message: "INSERT requires a WHERE clause".into(),
                    span: stmt_span,
                })?;
            let omega = parse_sub_wff(input, omega_src, ctx)?;
            let phi = parse_sub_wff(input, phi_src, ctx)?;
            Ok(Update::Insert { omega, phi })
        }
        "DELETE" => {
            let (t_src, phi_src) =
                split_keyword(rest, "WHERE").ok_or_else(|| LdmlError::Parse {
                    message: "DELETE requires a WHERE clause".into(),
                    span: stmt_span,
                })?;
            let t = parse_atom(input, t_src, ctx)?;
            let phi = parse_sub_wff(input, phi_src, ctx)?;
            // Accept both `DELETE t WHERE φ` and the paper's explicit
            // `DELETE t WHERE φ ∧ t`: strip a top-level `∧ t` conjunct if
            // present so the two spellings normalize identically.
            let phi = strip_conjunct(phi, t);
            Ok(Update::Delete { t, phi })
        }
        "MODIFY" => {
            let (t_src, rest2) = split_keyword(rest, "TO BE").ok_or_else(|| LdmlError::Parse {
                message: "MODIFY requires a TO BE clause".into(),
                span: stmt_span,
            })?;
            let (omega_src, phi_src) =
                split_keyword(rest2, "WHERE").ok_or_else(|| LdmlError::Parse {
                    message: "MODIFY requires a WHERE clause".into(),
                    span: stmt_span,
                })?;
            let t = parse_atom(input, t_src, ctx)?;
            let omega = parse_sub_wff(input, omega_src, ctx)?;
            let phi = parse_sub_wff(input, phi_src, ctx)?;
            let phi = strip_conjunct(phi, t);
            Ok(Update::Modify { t, omega, phi })
        }
        "ASSERT" => {
            let phi = parse_sub_wff(input, rest, ctx)?;
            Ok(Update::Assert { phi })
        }
        other => Err(LdmlError::Parse {
            message: format!("unknown LDML operator `{other}`"),
            span: span_of(input, keyword),
        }),
    }
}

/// Byte offset of `inner` within `outer`. `inner` must be a sub-slice of
/// `outer` (every caller here slices it out of `outer` directly).
fn offset_in(outer: &str, inner: &str) -> usize {
    inner.as_ptr() as usize - outer.as_ptr() as usize
}

/// The span `inner` occupies within `outer`.
fn span_of(outer: &str, inner: &str) -> Span {
    let start = offset_in(outer, inner);
    Span::new(start, start + inner.len())
}

/// Parses a sub-wff of `input`, rebasing any error location so it points
/// into `input` rather than into the sub-slice.
fn parse_sub_wff(input: &str, sub: &str, ctx: &mut ParseContext<'_>) -> Result<Wff, LdmlError> {
    let trimmed = sub.trim();
    let base = offset_in(input, trimmed);
    parse_wff(trimmed, ctx).map_err(|e| LdmlError::Logic(e.with_base_offset(base)))
}

fn parse_atom(
    input: &str,
    sub: &str,
    ctx: &mut ParseContext<'_>,
) -> Result<winslett_logic::AtomId, LdmlError> {
    match parse_sub_wff(input, sub, ctx)? {
        Formula::Atom(id) => Ok(id),
        _ => Err(LdmlError::TargetNotAtomic),
    }
}

fn split_first_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, &s[s.len()..]),
    }
}

/// Finds `keyword` (case-insensitive, whole-word, parenthesis depth 0) and
/// splits around it.
fn split_keyword<'a>(s: &'a str, keyword: &str) -> Option<(&'a str, &'a str)> {
    let bytes = s.as_bytes();
    let upper = s.to_ascii_uppercase();
    let ubytes = upper.as_bytes();
    let kw = keyword.to_ascii_uppercase();
    let kbytes = kw.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            _ => {
                if depth == 0 && ubytes[i..].starts_with(kbytes) {
                    let before_ok = i == 0 || bytes[i - 1].is_ascii_whitespace();
                    let after = i + kw.len();
                    let after_ok = after >= bytes.len() || bytes[after].is_ascii_whitespace();
                    if before_ok && after_ok {
                        return Some((&s[..i], &s[after..]));
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Removes a top-level conjunct equal to `Atom(t)` from `phi`, if present.
fn strip_conjunct(phi: Wff, t: winslett_logic::AtomId) -> Wff {
    match phi {
        Formula::And(parts) => {
            let target = Wff::Atom(t);
            let mut found = false;
            let kept: Vec<Wff> = parts
                .into_iter()
                .filter(|p| {
                    if !found && *p == target {
                        found = true;
                        false
                    } else {
                        true
                    }
                })
                .collect();
            Wff::and(kept)
        }
        other if other == Wff::Atom(t) => Wff::t(),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::{AtomTable, Vocabulary};

    fn parse(src: &str) -> (Update, Vocabulary, AtomTable) {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let u = parse_update(src, &mut ctx).unwrap();
        (u, v, t)
    }

    #[test]
    fn parses_paper_insert() {
        let (u, _, _) = parse("INSERT Orders(800,32,1000) WHERE T");
        match u {
            Update::Insert { omega, phi } => {
                assert!(matches!(omega, Formula::Atom(_)));
                assert_eq!(phi, Wff::t());
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_modify() {
        let (u, _, _) = parse("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)");
        match u {
            Update::Modify { t: _, omega, phi } => {
                assert!(matches!(omega, Formula::Atom(_)));
                assert!(matches!(phi, Formula::Atom(_)));
            }
            other => panic!("expected modify, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_delete_with_explicit_t_conjunct() {
        // The paper writes `DELETE Orders(700,32,9) WHERE T ∧ Orders(700,32,9)`;
        // the explicit `∧ t` must be stripped from the stored φ.
        let (u1, _, _) = parse("DELETE Orders(700,32,9) WHERE T & Orders(700,32,9)");
        let (u2, _, _) = parse("DELETE Orders(700,32,9) WHERE T");
        match (&u1, &u2) {
            (Update::Delete { t: t1, phi: p1 }, Update::Delete { t: t2, phi: p2 }) => {
                assert_eq!(t1, t2);
                assert_eq!(p1, p2);
                assert_eq!(*p1, Wff::t());
            }
            other => panic!("expected deletes, got {other:?}"),
        }
    }

    #[test]
    fn parses_insert_with_disjunction() {
        let (u, _, _) = parse("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T");
        match u {
            Update::Insert { omega, .. } => assert!(matches!(omega, Formula::Or(_))),
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn parses_assert() {
        let (u, _, _) = parse("ASSERT !InStock(32,1)");
        assert!(matches!(u, Update::Assert { .. }));
    }

    #[test]
    fn parses_insert_negated_atom() {
        // Paper example: INSERT ¬InStock(32,1) WHERE T.
        let (u, _, _) = parse("INSERT !InStock(32,1) WHERE T");
        match u {
            Update::Insert { omega, .. } => assert!(matches!(omega, Formula::Not(_))),
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let (u, _, _) = parse("insert a where b");
        assert!(matches!(u, Update::Insert { .. }));
    }

    #[test]
    fn where_inside_parens_not_keyword() {
        // An atom named `WHERE` inside parentheses must not split.
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let r = parse_update("INSERT (a & b) WHERE c", &mut ctx);
        assert!(r.is_ok());
    }

    #[test]
    fn missing_where_rejected() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        assert!(matches!(
            parse_update("INSERT a", &mut ctx),
            Err(LdmlError::Parse { .. })
        ));
    }

    #[test]
    fn modify_requires_to_be() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        assert!(matches!(
            parse_update("MODIFY a WHERE b", &mut ctx),
            Err(LdmlError::Parse { .. })
        ));
    }

    #[test]
    fn non_atomic_delete_target_rejected() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        assert!(matches!(
            parse_update("DELETE (a & b) WHERE T", &mut ctx),
            Err(LdmlError::TargetNotAtomic)
        ));
    }

    #[test]
    fn errors_are_rebased_to_statement_offsets() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        {
            let mut ctx = ParseContext::permissive(&mut v, &mut t);
            parse_update("INSERT R(a) WHERE T", &mut ctx).unwrap();
        }
        let mut strict = ParseContext::strict(&mut v, &mut t);
        // `S` is unknown; its span must point into the full statement, not
        // into the trimmed WHERE clause.
        let src = "INSERT R(a) WHERE S(a)";
        let err = parse_update(src, &mut strict).unwrap_err();
        let span = err.span().expect("unknown symbol carries a span");
        assert_eq!(&src[span.start..span.end], "S");

        // A malformed sub-wff rebases its parse offset the same way.
        let src2 = "INSERT R(a) WHERE (R(a)";
        let err2 = parse_update(src2, &mut strict).unwrap_err();
        let span2 = err2.span().expect("parse error carries a span");
        assert!(span2.start >= 18, "offset {span2} not rebased in {src2:?}");

        // Statement-level failures span the statement itself.
        let err3 = parse_update("  INSERT R(a)  ", &mut strict).unwrap_err();
        assert_eq!(err3.span(), Some(Span::new(2, 13)));
    }

    #[test]
    fn unknown_operator_rejected() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        assert!(matches!(
            parse_update("UPSERT a WHERE b", &mut ctx),
            Err(LdmlError::Parse { .. })
        ));
    }
}
