//! Fresh-solver-per-check vs incremental entailment session on repeated
//! ground entailment — the microbenchmark behind the `query` experiment's
//! wall-clock numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::Workload;
use winslett_logic::{cnf, Wff};
use winslett_theory::Theory;

/// Orders(r) with a handful of disjunctive residual facts, plus the probe
/// wffs the benches re-decide.
fn build(r: usize) -> (Theory, Vec<Wff>) {
    let mut w = Workload::new(0xE5);
    let (mut theory, atoms) = w.orders_theory(r);
    for i in 0..4 {
        let u = w.disjunctive_insert(&mut theory, 2, i);
        theory.assert_wff(&u.to_insert().omega);
    }
    let probes: Vec<Wff> = atoms.iter().take(16).map(|&a| Wff::Atom(a)).collect();
    (theory, probes)
}

fn bench_repeated_entailment(c: &mut Criterion) {
    let mut group = c.benchmark_group("repeated_entailment");
    group.sample_size(20);
    for &r in &[64usize, 256] {
        let (theory, probes) = build(r);
        let constraints = theory.model_constraints();
        let refs: Vec<&Wff> = constraints.iter().collect();
        let n = theory.num_atoms();
        group.bench_with_input(BenchmarkId::new("fresh_solver", r), &(), |b, _| {
            b.iter(|| probes.iter().filter(|w| cnf::entails(&refs, w, n)).count());
        });
        group.bench_with_input(BenchmarkId::new("session", r), &(), |b, _| {
            // The session persists across iterations, as it does on the
            // Theory: every check after the first probe set is pure
            // assumption-solving.
            let mut session = theory.fresh_entailment_session();
            b.iter(|| probes.iter().filter(|w| session.entails(w)).count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repeated_entailment);
criterion_main!(benches);
