//! E1/E7 — GUA vs the possible-worlds baseline under branching updates.
//!
//! Applying `k` disjunctive inserts multiplies the world count by ~3 each
//! time: the baseline's cost is exponential in `k` while GUA's is linear.
//! The series `apply/gua/k` vs `apply/baseline/k` exhibits the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::Workload;
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;
use winslett_logic::ModelLimit;
use winslett_theory::Theory;
use winslett_worlds::WorldsEngine;

fn setup(k: usize) -> (Theory, Vec<Update>) {
    let mut w = Workload::new(23);
    let (mut theory, _) = w.orders_theory(4);
    let updates: Vec<Update> = (0..k)
        .map(|i| w.disjunctive_insert(&mut theory, 2, i))
        .collect();
    (theory, updates)
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("branching_apply");
    group.sample_size(10);
    for &k in &[2usize, 4, 6, 8] {
        let (theory, updates) = setup(k);
        group.bench_with_input(BenchmarkId::new("gua", k), &k, |b, _| {
            b.iter(|| {
                let mut engine = GuaEngine::new(
                    theory.clone(),
                    GuaOptions::simplify_always(SimplifyLevel::Fast),
                );
                for u in &updates {
                    engine.apply(u).expect("applies");
                }
                engine.theory.store.size_nodes()
            });
        });
        group.bench_with_input(BenchmarkId::new("baseline", k), &k, |b, _| {
            b.iter(|| {
                let mut worlds =
                    WorldsEngine::from_theory(&theory, ModelLimit::default()).expect("worlds");
                worlds.apply_all(&updates, &theory).expect("applies");
                worlds.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
