//! Backbone (certain-atom) extraction: one incremental SAT session vs a
//! fresh solver per atom. The incremental path shares learnt clauses across
//! the per-atom queries and prunes candidates by model intersection, so it
//! wins increasingly as the theory grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::Workload;
use winslett_logic::Wff;
use winslett_theory::Theory;

fn build_theory(r: usize, disjunctive: usize) -> Theory {
    let mut w = Workload::new(13);
    let (mut theory, _) = w.orders_theory(r);
    for i in 0..disjunctive {
        let u = w.disjunctive_insert(&mut theory, 2, i);
        theory.assert_wff(&u.to_insert().omega);
    }
    theory
}

fn bench_backbone(c: &mut Criterion) {
    let mut group = c.benchmark_group("certain_atoms");
    group.sample_size(10);
    for &r in &[64usize, 256, 1024] {
        let theory = build_theory(r, 8);
        group.bench_with_input(BenchmarkId::new("backbone", r), &(), |b, _| {
            b.iter(|| {
                let bb = theory.atom_backbone().expect("runs").expect("consistent");
                bb.iter().filter(|v| v.is_some()).count()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_per_atom", r), &(), |b, _| {
            b.iter(|| {
                theory
                    .registry
                    .iter()
                    .filter(|(_, a)| theory.entails(&Wff::Atom(*a)))
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backbone);
criterion_main!(benches);
