//! E3/E4 — GUA update cost across the §3.6 parameters.
//!
//! `gua_update/R{R}/g{g}` measures one `GuaEngine::apply` of a conjunctive
//! insert with `g` atom occurrences against a theory with `R` registered
//! tuples in its largest predicate. The paper's claim: cost `O(g·log R)` —
//! so the series should grow linearly along `g` and stay nearly flat
//! along `R`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use winslett_core::Workload;
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;

fn bench_gua_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("gua_update");
    for &r in &[1024usize, 16384, 65536] {
        for &g in &[1usize, 8, 64] {
            group.throughput(Throughput::Elements(g as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("R{r}"), format!("g{g}")),
                &(r, g),
                |b, &(r, g)| {
                    // Pre-build the theory and a pool of updates; iterate
                    // over fresh engine clones so growth doesn't compound.
                    let mut w = Workload::new(42);
                    let (mut theory, atoms) = w.orders_theory(r);
                    let updates: Vec<Update> = (0..64)
                        .map(|i| w.conjunctive_insert(&mut theory, &atoms, g, i))
                        .collect();
                    let engine =
                        GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
                    let mut i = 0usize;
                    let mut live = engine.clone();
                    let mut used = 0usize;
                    b.iter(|| {
                        if used == updates.len() {
                            live = engine.clone();
                            used = 0;
                        }
                        live.apply(&updates[i % updates.len()]).expect("applies");
                        i += 1;
                        used += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_gua_growth(c: &mut Criterion) {
    // E4's time-side companion: a full 32-update burst, measuring the
    // amortized cost of sustained update streams (store keeps growing).
    let mut group = c.benchmark_group("gua_burst32");
    for &g in &[2usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            let mut w = Workload::new(7);
            let (mut theory, atoms) = w.orders_theory(4096);
            let updates: Vec<Update> = (0..32)
                .map(|i| w.conjunctive_insert(&mut theory, &atoms, g, i))
                .collect();
            let engine = GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
            b.iter(|| {
                let mut live = engine.clone();
                for u in &updates {
                    live.apply(u).expect("applies");
                }
                live.theory.store.size_nodes()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gua_update, bench_gua_growth);
criterion_main!(benches);
