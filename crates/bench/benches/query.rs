//! Query-side benchmarks: certain/possible answering against databases of
//! growing size, with and without residual incompleteness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::{DbOptions, LogicalDatabase, Workload};
use winslett_gua::SimplifyLevel;

fn build_db(r: usize, disjunctive: usize) -> LogicalDatabase {
    let mut w = Workload::new(17);
    let (mut theory, _) = w.orders_theory(r);
    for i in 0..disjunctive {
        let u = w.disjunctive_insert(&mut theory, 2, i);
        // Loaded directly as a wff: initial incomplete information.
        theory.assert_wff(&u.to_insert().omega);
    }
    LogicalDatabase::from_theory(
        theory,
        DbOptions {
            simplify: SimplifyLevel::Fast,
            ..DbOptions::default()
        },
    )
}

fn bench_ground_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_certain");
    for &r in &[256usize, 4096, 16384] {
        let mut db = build_db(r, 4);
        group.bench_with_input(BenchmarkId::from_parameter(r), &(), |b, _| {
            b.iter(|| db.is_certain("Orders(100,32,1)").expect("parses"));
        });
    }
    group.finish();
}

fn bench_conjunctive_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("conjunctive_query");
    group.sample_size(20);
    for &r in &[64usize, 256, 1024] {
        let db = build_db(r, 2);
        group.bench_with_input(BenchmarkId::from_parameter(r), &(), |b, _| {
            b.iter(|| {
                let ans = db.query("Orders(?o, 32, ?q)").expect("valid query");
                ans.possible.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ground_probe, bench_conjunctive_query);
criterion_main!(benches);
