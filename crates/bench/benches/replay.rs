//! E8 — the §4 replay-log strawman vs eager GUA+simplify.
//!
//! `replay_query/{n}` materializes and queries a replay database with an
//! n-update log; `eager_query/{n}` queries the eagerly maintained theory.
//! Replay cost grows with the log; eager stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::{ReplayDatabase, Workload};
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_logic::Wff;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    for &n in &[8usize, 32, 128] {
        let mut w = Workload::new(5);
        let (theory, atoms) = w.orders_theory(16);
        let mut eager = GuaEngine::new(
            theory.clone(),
            GuaOptions::simplify_always(SimplifyLevel::Fast),
        );
        let mut replay = ReplayDatabase::new(theory.clone());
        let mut scratch = theory;
        for i in 0..n {
            let u = w.conjunctive_insert(&mut scratch, &atoms, 4, i);
            eager.theory.vocab = scratch.vocab.clone();
            eager.theory.atoms = scratch.atoms.clone();
            eager.apply(&u).expect("applies");
            replay
                .update_synced(u, &scratch)
                .expect("update shares the workload lineage");
        }
        let probe = Wff::Atom(atoms[0]);
        group.bench_with_input(BenchmarkId::new("replay_query", n), &(), |b, _| {
            b.iter(|| {
                let t = replay.materialize().expect("replays");
                t.entails(&probe)
            });
        });
        group.bench_with_input(BenchmarkId::new("eager_query", n), &(), |b, _| {
            b.iter(|| eager.theory.entails(&probe));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
