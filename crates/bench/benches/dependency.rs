//! E5 — dependency instantiation cost (§3.6).
//!
//! `fd_insert/worst/R` inserts a tuple whose key collides with every one of
//! the `R` existing tuples (Step 6 emits Θ(R) instances — the paper's
//! `O(gR)` worst case); `fd_insert/best/R` inserts a fresh-keyed tuple
//! (no joins — the `O(g log R)` best case). The worst/best gap should grow
//! linearly with `R`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::Workload;
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;

fn bench_fd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_insert");
    group.sample_size(20);
    for &r in &[256usize, 1024, 4096] {
        for (case, shared) in [("worst", true), ("best", false)] {
            group.bench_with_input(
                BenchmarkId::new(case, r),
                &(r, shared),
                |b, &(r, shared)| {
                    let mut w = Workload::new(11);
                    let (mut theory, _) = if shared {
                        w.fd_theory_worst(r)
                    } else {
                        w.fd_theory_best(r)
                    };
                    let updates: Vec<Update> = (0..16)
                        .map(|i| w.fd_insert(&mut theory, shared, i))
                        .collect();
                    let engine =
                        GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
                    let mut live = engine.clone();
                    let mut used = 0usize;
                    b.iter(|| {
                        if used == updates.len() {
                            live = engine.clone();
                            used = 0;
                        }
                        live.apply(&updates[used]).expect("applies");
                        used += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fd);
criterion_main!(benches);
