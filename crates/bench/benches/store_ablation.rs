//! Ablation of the §3.6 storage substrate.
//!
//! The paper's O(g·log R) bound for GUA hinges on renaming being O(1) per
//! atom ("all occurrences … are linked together in a list whose head is an
//! index entry, so that renaming may be done rapidly"). This bench compares
//! the slot-indirected [`FormulaStore`] rename against the naive
//! representation (a plain `Vec<Wff>` rewritten formula-by-formula) as the
//! theory grows: the naive cost is Θ(total store size), the indexed cost is
//! constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_logic::{AtomId, Formula, Wff};
use winslett_theory::FormulaStore;

/// Builds `n` formulas, each mentioning atom 0 twice plus two others.
fn formulas(n: usize) -> Vec<Wff> {
    (0..n)
        .map(|i| {
            Formula::Or(vec![
                Wff::Atom(AtomId(0)),
                Formula::And(vec![
                    Wff::Atom(AtomId((1 + i % 64) as u32)),
                    Wff::Atom(AtomId(0)).not(),
                ]),
            ])
        })
        .collect()
}

fn bench_rename(c: &mut Criterion) {
    let mut group = c.benchmark_group("rename_atom");
    for &n in &[64usize, 512, 4096] {
        let wffs = formulas(n);

        // Indexed store: O(1) per rename regardless of n.
        group.bench_with_input(BenchmarkId::new("indexed", n), &(), |b, _| {
            let mut store = FormulaStore::new();
            for w in &wffs {
                store.insert(w);
            }
            let mut next_fresh = 1_000u32;
            b.iter(|| {
                // Rename the *current* name of atom 0's slot to a fresh id
                // each iteration (exactly GUA's usage pattern).
                let from = AtomId(next_fresh - 1);
                let from = if store.contains_atom(AtomId(0)) {
                    AtomId(0)
                } else {
                    from
                };
                let to = AtomId(next_fresh);
                next_fresh += 1;
                store.rename_atom(from, to)
            });
        });

        // Naive store: rewrite every formula, Θ(total size) per rename.
        group.bench_with_input(BenchmarkId::new("naive", n), &(), |b, _| {
            let mut naive: Vec<Wff> = wffs.clone();
            let mut next_fresh = 1_000_000u32;
            b.iter(|| {
                let from = if naive.iter().any(|w| w.contains_atom(AtomId(0))) {
                    AtomId(0)
                } else {
                    AtomId(next_fresh - 1)
                };
                let to = AtomId(next_fresh);
                next_fresh += 1;
                naive = naive.iter().map(|w| w.rename_atom(from, to)).collect();
                naive.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rename);
criterion_main!(benches);
