//! Updates with variables (§4): expansion and simultaneous application.
//!
//! `expand/R` measures the range-restricted binding enumeration of a
//! variable DELETE against a theory with `R` matching tuples (expected
//! ~linear in the matches, via the per-predicate index). `apply/R`
//! measures the full pipeline: expand + simultaneous GUA application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_core::{VarStatement, Workload};
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_theory::Theory;

fn theory_with_orders(r: usize) -> Theory {
    let mut w = Workload::new(31);
    let (theory, _) = w.orders_theory(r);
    theory
}

fn bench_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("var_expand");
    for &r in &[64usize, 512, 4096] {
        let theory = theory_with_orders(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &(), |b, _| {
            let stmt =
                VarStatement::parse("DELETE Orders(?o, ?p, ?q) WHERE T", &theory).expect("parses");
            let mut scratch = theory.clone();
            b.iter(|| {
                let ground = stmt.expand(&mut scratch).expect("expands");
                assert_eq!(ground.len(), r);
                ground.len()
            });
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("var_apply_simultaneous");
    group.sample_size(10);
    for &r in &[16usize, 64, 256] {
        let theory = theory_with_orders(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &(), |b, _| {
            let stmt =
                VarStatement::parse("DELETE Orders(?o, ?p, ?q) WHERE T", &theory).expect("parses");
            b.iter(|| {
                let mut engine = GuaEngine::new(
                    theory.clone(),
                    GuaOptions::simplify_always(SimplifyLevel::Fast),
                );
                let ground = stmt.expand(&mut engine.theory).expect("expands");
                engine.apply_simultaneous(&ground).expect("applies");
                engine.theory.store.size_nodes()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expand, bench_apply);
criterion_main!(benches);
