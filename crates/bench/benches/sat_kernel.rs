//! Substrate microbenchmarks: the SAT kernel and world enumeration that
//! back every query, consistency check, and equivalence decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_logic::{enumerate_models, Formula, Lit, ModelLimit, Solver, Var, Wff};
use winslett_logic::{AtomId, BitSet};

/// Pigeonhole(n+1 → n): classically hard UNSAT instances.
fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let pigeons = n + 1;
    let holes = n;
    let var = |p: usize, h: usize| Var((p * holes + h) as u32);
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| Lit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    (pigeons * holes, clauses)
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    for &n in &[5usize, 6, 7] {
        let (nv, clauses) = pigeonhole(n);
        group.bench_with_input(BenchmarkId::new("pigeonhole", n), &(), |b, _| {
            b.iter(|| {
                let mut s = Solver::new(nv);
                for cl in &clauses {
                    s.add_clause(cl);
                }
                assert!(!s.solve().is_sat());
            });
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_worlds");
    // k chained disjunctions: 3^k projected models.
    for &k in &[4usize, 6, 8] {
        let wffs: Vec<Wff> = (0..k)
            .map(|i| {
                Formula::Or(vec![
                    Wff::Atom(AtomId((2 * i) as u32)),
                    Wff::Atom(AtomId((2 * i + 1) as u32)),
                ])
            })
            .collect();
        let n = 2 * k;
        let proj: BitSet = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
            let refs: Vec<&Wff> = wffs.iter().collect();
            b.iter(|| {
                let models =
                    enumerate_models(&refs, n, &proj, ModelLimit::default()).expect("bounded");
                assert_eq!(models.len(), 3usize.pow(k as u32));
                models.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sat, bench_enumeration);
criterion_main!(benches);
