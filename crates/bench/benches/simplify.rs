//! E6 — the cost and payoff of §4 simplification.
//!
//! `churn/{level}` runs a fixed insert-disjunction + ASSERT churn at each
//! simplification level (the update-side price). `query_after_churn/{level}`
//! measures entailment latency on the resulting theory (the query-side
//! payoff: simplified theories answer much faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;
use winslett_logic::{AtomId, Formula, Wff};
use winslett_theory::Theory;

fn build() -> (Theory, Vec<AtomId>) {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).expect("fresh");
    let mut ids = Vec::new();
    for i in 0..6 {
        let c = t.constant(&format!("c{i}"));
        let id = t.atom(r, &[c]);
        if i == 0 {
            t.assert_atom(id);
        } else {
            t.assert_not_atom(id);
        }
        ids.push(id);
    }
    (t, ids)
}

fn churn(engine: &mut GuaEngine, ids: &[AtomId], steps: usize) {
    for i in 0..steps {
        let a = ids[i % ids.len()];
        let b = ids[(i + 1) % ids.len()];
        engine
            .apply(&Update::insert(
                Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                Wff::t(),
            ))
            .expect("applies");
        engine
            .apply(&Update::assert(Wff::Atom(ids[i % ids.len()])))
            .expect("applies");
    }
}

fn levels() -> [(&'static str, SimplifyLevel); 3] {
    [
        ("none", SimplifyLevel::None),
        ("fast", SimplifyLevel::Fast),
        ("full", SimplifyLevel::Full),
    ]
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn20");
    group.sample_size(20);
    for (label, level) in levels() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &level, |b, &level| {
            let (t, ids) = build();
            b.iter(|| {
                let mut engine = GuaEngine::new(t.clone(), GuaOptions::simplify_always(level));
                churn(&mut engine, &ids, 20);
                engine.theory.store.size_nodes()
            });
        });
    }
    group.finish();
}

fn bench_query_after_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_after_churn20");
    for (label, level) in levels() {
        let (t, ids) = build();
        let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(level));
        churn(&mut engine, &ids, 20);
        let probe = Wff::or2(Wff::Atom(ids[0]), Wff::Atom(ids[1]));
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| engine.theory.entails(&probe));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn, bench_query_after_churn);
criterion_main!(benches);
