//! E2 — the price of deciding update equivalence.
//!
//! `equivalence/decider` runs the Theorem 3/4 criteria (SAT-backed);
//! `equivalence/brute` enumerates every model of the universe. On this tiny
//! universe they are comparable; the decider's advantage is that its cost
//! depends on the *updates*, not the database, so it stays flat as the
//! language grows (`equivalence/decider_wide` vs `equivalence/brute_wide`).

use criterion::{criterion_group, criterion_main, Criterion};
use winslett_bench::experiments::Rng;
use winslett_ldml::{equivalent_brute, equivalent_updates, Update};
use winslett_logic::{AtomId, Formula, Wff};

fn sample_pairs(n: usize, num_atoms: usize) -> Vec<(Update, Update)> {
    let mut rng = Rng(99);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mk = |rng: &mut Rng| {
            let a = AtomId(rng.below(num_atoms) as u32);
            let b = AtomId(rng.below(num_atoms) as u32);
            match rng.below(3) {
                0 => Update::insert(Wff::Atom(a), Wff::Atom(b)),
                1 => Update::insert(Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]), Wff::t()),
                _ => Update::delete(a, Wff::Atom(b)),
            }
        };
        out.push((mk(&mut rng), mk(&mut rng)));
    }
    out
}

fn bench_equivalence(c: &mut Criterion) {
    let pairs = sample_pairs(32, 4);
    c.bench_function("equivalence/decider", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|(x, y)| equivalent_updates(x, y, 4).expect("small").equivalent)
                .count()
        });
    });
    c.bench_function("equivalence/brute", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|(x, y)| equivalent_brute(x, y, 4).expect("small"))
                .count()
        });
    });

    // Same updates, but embedded in a 16-atom language: brute force pays
    // 2^16 per pair, the decider does not.
    let pairs_wide = sample_pairs(8, 4);
    c.bench_function("equivalence/decider_wide", |b| {
        b.iter(|| {
            pairs_wide
                .iter()
                .filter(|(x, y)| equivalent_updates(x, y, 16).expect("small").equivalent)
                .count()
        });
    });
    c.bench_function("equivalence/brute_wide", |b| {
        b.iter(|| {
            pairs_wide
                .iter()
                .filter(|(x, y)| equivalent_brute(x, y, 16).expect("small"))
                .count()
        });
    });
}

criterion_group!(benches, bench_equivalence);
criterion_main!(benches);
