//! The `txn` experiment behind `BENCH_txn.json` (E17): what do
//! multi-statement transactions cost, and what does footprint-granular
//! locking buy?
//!
//! Three identical `winslett-serve` instances run the same statement
//! budget in three shapes:
//!
//! * **plain** — the PR-6 baseline: `w` writers issue single-statement
//!   writes with conflict-aware batching on (`batch_writes`), one ack
//!   per statement.
//! * **disjoint** — the same writers group statements into transactions
//!   of `TXN_LEN` over *private* atom pools. Footprints are pairwise
//!   disjoint (Theorem 4: the updates commute), so the lock table admits
//!   every transaction concurrently: no waits, no timeouts, and one
//!   snapshot publication per *commit* instead of per statement.
//! * **contended** — the adversarial shape: every writer's transactions
//!   fight over one shared pool, with per-writer phase offsets that
//!   manufacture lock-order cycles. The lock table serializes what it
//!   can and breaks cycles with deadlock-avoidance timeouts; timed-out
//!   transactions abort and retry as fresh transactions.
//!
//! After the timed window a deterministic reconciliation drives all
//! three databases to the same intended state; the bench then checks
//! verdict identity per side against its reopened post-shutdown storage
//! (recovery = §4 replay, transaction markers honored) and across
//! sides. The headline claim gated by `make txn-smoke`: disjoint
//! transactional throughput sustains the plain batched baseline.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use winslett_core::{DbOptions, DurableDatabase, MemStorage, SyncPolicy, WalOptions};
use winslett_serve::{Client, ClientError, ErrorKindWire, Server, ServerOptions};

/// Statements per transaction in the transactional shapes.
const TXN_LEN: usize = 8;

/// Atoms in each pool (private per writer for `disjoint`, one shared
/// pool for `contended`).
const POOL: usize = 4;

/// Inert facts seeded up front so snapshot publication — the per-commit
/// cost transactions amortize — operates on a realistically sized theory.
const FILLER: usize = 256;

/// Lock-wait deadline. Short enough that the contended shape's
/// manufactured deadlock cycles resolve many times per window.
const LOCK_TIMEOUT: Duration = Duration::from_millis(50);

/// One workload shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Plain,
    Disjoint,
    Contended,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::Disjoint => "disjoint",
            Mode::Contended => "contended",
        }
    }
}

/// One side of the three-way comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxnSide {
    /// `"plain"`, `"disjoint"`, or `"contended"`.
    pub mode: String,
    /// Transactions committed in the window (for `plain`, each
    /// acknowledged statement counts as a one-statement unit).
    pub committed_txns: u64,
    /// Transactions aborted by a lock-wait timeout in the window.
    pub aborted_txns: u64,
    /// Statements that landed via committed transactions.
    pub statements: u64,
    /// Committed statements per second — the cross-mode throughput axis.
    pub statements_per_sec: f64,
    /// Latency percentiles per acknowledged unit, µs (a statement for
    /// `plain`, a whole begin→commit transaction otherwise).
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// Lock-table waits observed by the server over the run.
    pub lock_waits: u64,
    /// Lock waits that hit the deadlock-avoidance deadline.
    pub lock_timeouts: u64,
    /// Plain writes refused because a transaction held their footprint.
    pub txn_conflicts: u64,
    /// Whether the server's final pinned verdicts equal direct library
    /// calls on the reopened storage (WAL recovery = §4 replay).
    pub replay_matches: bool,
}

/// The complete `BENCH_txn.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxnBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"txn"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Measurement window per side, milliseconds.
    pub window_ms: u64,
    /// Concurrent writer connections per side.
    pub writers: u64,
    /// Statements per transaction in the transactional shapes.
    pub txn_len: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: u64,
    /// The single-statement batched baseline.
    pub plain: TxnSide,
    /// Disjoint-footprint concurrent transactions.
    pub disjoint: TxnSide,
    /// Deliberately colliding transactions.
    pub contended: TxnSide,
    /// Whether all three sides' post-reconciliation verdicts agree.
    pub verdicts_match: bool,
    /// `disjoint.statements_per_sec / plain.statements_per_sec` — the
    /// headline "transactions sustain the batching baseline" ratio.
    pub relative_throughput: f64,
    /// Free-form observations.
    pub notes: Vec<String>,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// The probe checklist after reconciliation: one atom per private pool,
/// one shared atom, and the seeded branch (kept uncertain so checks do
/// real SAT work).
fn probes(writers: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..writers).map(|w| format!("Pool({w},0)")).collect();
    v.push("Shared(0)".to_owned());
    v.push("Branch(1)".to_owned());
    v.push("Branch(2)".to_owned());
    v
}

/// Statement `i` of writer `w` under `mode`: toggling membership over
/// the writer's private pool, or over the one shared pool with a
/// per-writer phase offset (which manufactures lock-order cycles).
fn statement(mode: Mode, w: usize, i: usize) -> String {
    let insert = if (i / POOL).is_multiple_of(2) {
        "INSERT"
    } else {
        "DELETE"
    };
    match mode {
        Mode::Contended => {
            let k = (w + i) % POOL;
            format!("{insert} Shared({k}) WHERE T")
        }
        _ => {
            let k = i % POOL;
            format!("{insert} Pool({w},{k}) WHERE T")
        }
    }
}

/// Runs one shape on a fresh server; returns the side result and its
/// final probe verdicts for the cross-side identity check.
fn run_side(mode: Mode, writers: usize, window: Duration) -> (TxnSide, Vec<(bool, bool)>) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            // All three shapes keep the PR-6 batching leader on so the
            // plain side *is* the batching baseline and the transactional
            // sides differ only in how statements are grouped.
            batch_writes: true,
            compaction: None,
            threaded: false,
            lock_timeout: LOCK_TIMEOUT,
        },
    )
    .expect("bench server bind");
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());

    let mut setup = Client::connect(addr).expect("setup connect");
    setup.declare_relation("Pool", 2).expect("declare Pool");
    setup.declare_relation("Shared", 1).expect("declare Shared");
    setup.declare_relation("Branch", 1).expect("declare Branch");
    setup.declare_relation("Filler", 1).expect("declare Filler");
    for i in 0..FILLER {
        setup
            .load_fact("Filler", &[&(1000 + i).to_string()])
            .expect("seed filler fact");
    }
    for w in 0..writers {
        for k in 0..POOL {
            setup
                .load_fact("Pool", &[&w.to_string(), &k.to_string()])
                .expect("seed pool fact");
        }
    }
    for k in 0..POOL {
        setup
            .load_fact("Shared", &[&k.to_string()])
            .expect("seed shared fact");
    }
    setup
        .execute("INSERT Branch(1) | Branch(2) WHERE T")
        .expect("seed branch");

    let stop = Arc::new(AtomicBool::new(false));
    let mut writer_handles = Vec::new();
    for w in 0..writers {
        let stop = Arc::clone(&stop);
        writer_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connect");
            let mut latencies_us: Vec<f64> = Vec::new();
            let mut committed = 0u64;
            let mut aborted = 0u64;
            let mut statements = 0u64;
            let mut i = w; // contended phase offset; harmless elsewhere
            while !stop.load(Ordering::Relaxed) {
                if mode == Mode::Plain {
                    let start = Instant::now();
                    client.execute(&statement(mode, w, i)).expect("bench write");
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                    committed += 1;
                    statements += 1;
                    i += 1;
                    continue;
                }
                // One whole transaction per iteration; a lock-wait
                // timeout aborts it server-side and the writer simply
                // starts the next transaction.
                let start = Instant::now();
                client.begin().expect("begin");
                let mut alive = true;
                for _ in 0..TXN_LEN {
                    match client.execute(&statement(mode, w, i)) {
                        Ok(_) => i += 1,
                        Err(ClientError::Server(e)) if e.kind == ErrorKindWire::TxnTimeout => {
                            alive = false;
                            aborted += 1;
                            break;
                        }
                        Err(e) => panic!("txn statement failed: {e}"),
                    }
                }
                if alive {
                    client.commit().expect("commit");
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                    committed += 1;
                    statements += TXN_LEN as u64;
                }
            }
            (latencies_us, committed, aborted, statements)
        }));
    }

    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<f64> = Vec::new();
    let (mut committed, mut aborted, mut statements) = (0u64, 0u64, 0u64);
    for h in writer_handles {
        let (l, c, a, s) = h.join().expect("writer thread");
        latencies.extend(l);
        committed += c;
        aborted += a;
        statements += s;
    }
    let elapsed = started.elapsed().as_secs_f64();

    // Reconciliation: writers stopped at arbitrary toggle phases; drive
    // every atom to a fixed final state so the three sides end at the
    // same intended theory.
    for w in 0..writers {
        for k in 0..POOL {
            setup
                .execute(&format!("INSERT Pool({w},{k}) WHERE T"))
                .expect("reconcile pool");
        }
    }
    for k in 0..POOL {
        setup
            .execute(&format!("INSERT Shared({k}) WHERE T"))
            .expect("reconcile shared");
    }

    let probe_list = probes(writers);
    let server_verdicts: Vec<(bool, bool)> = {
        let mut client = Client::connect(addr).expect("verdict connect");
        client.pin().expect("pin final");
        probe_list
            .iter()
            .map(|p| {
                let t = client.check(p).expect("final check");
                (t.possible, t.certain)
            })
            .collect()
    };
    let stats = setup.stats().expect("stats");
    assert_eq!(stats.txn_active, 0, "bench left a transaction open");

    setup.shutdown().expect("shutdown");
    let storage = running.join().expect("server thread").expect("server run");

    let (reopened, _) = DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
        .expect("bench reopen");
    let mut direct = reopened;
    let direct_verdicts: Vec<(bool, bool)> = probe_list
        .iter()
        .map(|p| {
            let possible = direct.db_mut().is_possible(p).expect("direct possible");
            let certain = direct.db_mut().is_certain(p).expect("direct certain");
            (possible, certain)
        })
        .collect();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let side = TxnSide {
        mode: mode.name().to_owned(),
        committed_txns: committed,
        aborted_txns: aborted,
        statements,
        statements_per_sec: statements as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        lock_waits: stats.lock_waits,
        lock_timeouts: stats.lock_timeouts,
        txn_conflicts: stats.txn_conflicts,
        replay_matches: server_verdicts == direct_verdicts,
    };
    (side, server_verdicts)
}

/// Runs all three shapes and assembles the `BENCH_txn.json` document.
pub fn run_txn_bench(writers: usize, window_ms: u64) -> TxnBench {
    let window = Duration::from_millis(window_ms);
    let (plain, v_plain) = run_side(Mode::Plain, writers, window);
    let (disjoint, v_disjoint) = run_side(Mode::Disjoint, writers, window);
    let (contended, v_contended) = run_side(Mode::Contended, writers, window);
    let verdicts_match = v_plain == v_disjoint && v_disjoint == v_contended;
    let relative_throughput = if plain.statements_per_sec > 0.0 {
        disjoint.statements_per_sec / plain.statements_per_sec
    } else {
        0.0
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let notes = vec![
        format!(
            "{writers} writers; transactional shapes group {TXN_LEN} statements per \
             begin→commit. disjoint: private Pool(w, 0..{POOL}) footprints, admitted \
             concurrently by the lock table. contended: one Shared(0..{POOL}) pool with \
             per-writer phase offsets, so lock-order cycles form and the \
             {}-ms deadline breaks them.",
            LOCK_TIMEOUT.as_millis()
        ),
        "statements_per_sec counts only statements that landed via committed \
         units, so the contended column pays for its aborts."
            .to_owned(),
        "A transaction publishes one snapshot per commit instead of one per \
         statement — the same amortization the PR-6 batching leader buys for \
         plain writes, which is why disjoint transactions sustain that baseline."
            .to_owned(),
        "replay_matches compares each server's final pinned snapshot against \
         direct library calls on its reopened storage: recovery honors \
         commit/abort markers, so no aborted transaction may resurface."
            .to_owned(),
    ];
    TxnBench {
        version: 1,
        experiment: "txn".to_owned(),
        workload: format!(
            "{writers} writers × {window_ms} ms per shape against winslett-serve \
             (MemStorage, group commit 8, batch_writes on, lock timeout \
             {} ms): plain statements vs {TXN_LEN}-statement transactions over \
             disjoint vs contended footprints",
            LOCK_TIMEOUT.as_millis()
        ),
        window_ms,
        writers: writers as u64,
        txn_len: TXN_LEN as u64,
        host_parallelism,
        plain,
        disjoint,
        contended,
        verdicts_match,
        relative_throughput,
        notes,
    }
}

/// Shape-validates `BENCH_txn.json` text by re-parsing it into
/// [`TxnBench`] and checking the cross-field invariants. Returns the
/// parsed document on success; `make txn-smoke` fails on `Err`.
pub fn validate_txn_bench(text: &str) -> Result<TxnBench, String> {
    let b: TxnBench =
        serde_json::from_str(text).map_err(|e| format!("BENCH_txn.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "txn" {
        return Err(format!(
            "experiment is {:?}, expected \"txn\"",
            b.experiment
        ));
    }
    if b.window_ms == 0 {
        return Err("window_ms is 0 — nothing was measured".to_owned());
    }
    if b.writers == 0 || b.txn_len == 0 {
        return Err("writers/txn_len not recorded".to_owned());
    }
    for (side, name) in [
        (&b.plain, "plain"),
        (&b.disjoint, "disjoint"),
        (&b.contended, "contended"),
    ] {
        if side.mode != name {
            return Err(format!("side {name} is labeled {:?}", side.mode));
        }
        if side.committed_txns == 0 || side.statements == 0 {
            return Err(format!("{name}: nothing committed"));
        }
        if !(side.statements_per_sec.is_finite() && side.statements_per_sec > 0.0) {
            return Err(format!("{name}: statements_per_sec is not positive finite"));
        }
        if !(side.p50_us > 0.0 && side.p95_us >= side.p50_us) {
            return Err(format!(
                "{name}: latency percentiles are not ordered positive"
            ));
        }
        if !side.replay_matches {
            return Err(format!(
                "{name}: server snapshot verdicts differ from the reopened \
                 storage — transactional replay identity broken"
            ));
        }
    }
    // Disjoint footprints are Theorem-4 commutative: the lock table must
    // admit them all without a single deadline abort.
    if b.disjoint.aborted_txns != 0 || b.disjoint.lock_timeouts != 0 {
        return Err(format!(
            "disjoint transactions hit the lock table: {} aborts, {} timeouts",
            b.disjoint.aborted_txns, b.disjoint.lock_timeouts
        ));
    }
    // The contended shape exists to exercise the conflict machinery;
    // a run where nothing ever waited, timed out, or aborted measured
    // nothing.
    if b.contended.lock_waits + b.contended.lock_timeouts + b.contended.aborted_txns == 0 {
        return Err("contended side recorded no lock contention at all".to_owned());
    }
    if !b.verdicts_match {
        return Err("final verdicts differ across the three shapes".to_owned());
    }
    // The headline claim: grouping disjoint statements into transactions
    // sustains the plain batched-write baseline (slack for scheduler
    // noise on small CI hosts).
    if b.disjoint.statements_per_sec < 0.9 * b.plain.statements_per_sec {
        return Err(format!(
            "disjoint transactional throughput fell below the batching \
             baseline: {:.0} st/s vs {:.0} st/s plain",
            b.disjoint.statements_per_sec, b.plain.statements_per_sec
        ));
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".to_owned());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn txn_table(b: &TxnBench) -> Table {
    let mut t = Table::new(
        "TXN",
        "multi-statement transactions: plain batched writes vs disjoint vs contended txns",
        &[
            "mode",
            "committed",
            "aborted",
            "stmts/s",
            "p50 µs",
            "p95 µs",
            "waits",
            "timeouts",
        ],
    );
    for side in [&b.plain, &b.disjoint, &b.contended] {
        t.row(vec![
            side.mode.clone(),
            side.committed_txns.to_string(),
            side.aborted_txns.to_string(),
            format!("{:.0}", side.statements_per_sec),
            format!("{:.1}", side.p50_us),
            format!("{:.1}", side.p95_us),
            side.lock_waits.to_string(),
            side.lock_timeouts.to_string(),
        ]);
    }
    t.note(format!(
        "{} writers × {} ms per shape, {} statements per txn; disjoint/plain \
         throughput ratio {:.2}×; verdicts identical across shapes: {}",
        b.writers, b.window_ms, b.txn_len, b.relative_throughput, b.verdicts_match
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        // The throughput gate compares two 100 ms timed windows, which
        // can flake when the whole workspace's test binaries share the
        // host; one retry keeps the correctness checks strict without
        // making the test load-sensitive.
        let mut last_err = String::new();
        for _ in 0..2 {
            let b = run_txn_bench(3, 100);
            assert!(b.verdicts_match);
            assert!(
                b.plain.replay_matches && b.disjoint.replay_matches && b.contended.replay_matches
            );
            let text = serde_json::to_string_pretty(&b).expect("serializes");
            match validate_txn_bench(&text) {
                Ok(back) => {
                    assert_eq!(back.writers, 3);
                    assert_eq!(back.txn_len, TXN_LEN as u64);
                    return;
                }
                Err(e) => last_err = e,
            }
        }
        panic!("validates (after retry): {last_err}");
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_txn_bench(3, 80);
        let mut bad = b.clone();
        bad.verdicts_match = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_txn_bench(&text).unwrap_err().contains("differ"));
        let mut bad = b.clone();
        bad.disjoint.replay_matches = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_txn_bench(&text)
            .unwrap_err()
            .contains("replay identity"));
        let mut bad = b.clone();
        bad.disjoint.aborted_txns = 7;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_txn_bench(&text)
            .unwrap_err()
            .contains("hit the lock table"));
        let mut bad = b.clone();
        bad.disjoint.statements_per_sec = 0.1 * bad.plain.statements_per_sec;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_txn_bench(&text)
            .unwrap_err()
            .contains("fell below"));
        assert!(validate_txn_bench("{").is_err());
    }
}
