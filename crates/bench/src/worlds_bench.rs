//! The `worlds` experiment behind `BENCH_worlds.json`: the parallel
//! possible-worlds engine measured against its own sequential path on an
//! E7-style branching workload.
//!
//! `k` disjunctive inserts of width 2 over the Orders theory multiply the
//! world count by 3 each (ω = g₁ ∨ g₂ has three satisfying valuations), so
//! the script ends at 3^k worlds — 6561 ≥ 2^12 at the default k = 8. The
//! same update script runs twice, once `with_threads(1)` and once with the
//! requested worker count; the result records wall times, the engine's
//! [`EngineStats`] counters, and whether the two runs produced byte-
//! identical canonical world vectors (they must — see the proptest in
//! `tests/commutative_diagram.rs`).
//!
//! Everything is (de)serializable, so the harness validates the emitted
//! JSON by re-parsing it into [`WorldsBench`] — the shape check behind
//! `make bench-smoke`.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use winslett_core::Workload;
use winslett_ldml::Update;
use winslett_logic::{BitSet, ModelLimit};
use winslett_worlds::{EngineStats, WorldsEngine};

/// Portable snapshot of [`EngineStats`] (the non-timing counters; wall
/// times live on [`EngineRun`], measured around the whole script).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatsDump {
    /// Update applications performed.
    pub applies: u64,
    /// Total worlds fed into those applies.
    pub worlds_in: u64,
    /// Total worlds remaining after rule 3 and dedup.
    pub worlds_out: u64,
    /// Candidate models produced by the §3.2 semantics, pre-filter.
    pub models_produced: u64,
    /// Candidates discarded by rule 3 (type/dependency axioms).
    pub rule3_filtered: u64,
    /// Compilations skipped thanks to the `apply_all` cache.
    pub compile_reuse_hits: u64,
}

impl From<&EngineStats> for StatsDump {
    fn from(s: &EngineStats) -> Self {
        StatsDump {
            applies: s.applies,
            worlds_in: s.worlds_in,
            worlds_out: s.worlds_out,
            models_produced: s.models_produced,
            rule3_filtered: s.rule3_filtered,
            compile_reuse_hits: s.compile_reuse_hits,
        }
    }
}

/// One engine configuration's measured run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineRun {
    /// Pinned worker thread count.
    pub threads: u64,
    /// Wall time of the full update script, µs.
    pub apply_us: f64,
    /// Wall time of the certain-truth probe, µs.
    pub entails_us: f64,
    /// Engine counters after the script.
    pub stats: StatsDump,
}

/// The complete `BENCH_worlds.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldsBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"worlds"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Number of branching updates in the script (`k`).
    pub branching_updates: u64,
    /// Worlds after the full script (3^k).
    pub final_worlds: u64,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// speedups are only meaningful relative to this.
    pub host_parallelism: u64,
    /// Whether the sequential and parallel runs produced byte-identical
    /// canonical world vectors. Must be `true`.
    pub identical_worlds: bool,
    /// Sequential apply time / parallel apply time.
    pub apply_speedup: f64,
    /// Sequential entails time / parallel entails time.
    pub entails_speedup: f64,
    /// The `with_threads(1)` run.
    pub sequential: EngineRun,
    /// The multi-threaded run.
    pub parallel: EngineRun,
    /// Free-form observations.
    pub notes: Vec<String>,
}

/// Runs the workload at a pinned thread count and snapshots the result.
fn run_config(
    theory: &winslett_theory::Theory,
    updates: &[Update],
    probe: &winslett_logic::Wff,
    threads: usize,
) -> (EngineRun, Vec<BitSet>) {
    let mut engine = WorldsEngine::from_theory(theory, ModelLimit::default())
        .expect("E7-style workload materializes")
        .with_threads(threads);
    let start = Instant::now();
    engine.apply_all(updates, theory).expect("updates apply");
    let apply_us = start.elapsed().as_secs_f64() * 1e6;
    let start = Instant::now();
    let entailed = engine.entails(probe);
    let entails_us = start.elapsed().as_secs_f64() * 1e6;
    assert!(entailed, "the inserted ω must be certain in every world");
    let run = EngineRun {
        threads: threads as u64,
        apply_us,
        entails_us,
        stats: engine.stats().into(),
    };
    (run, engine.worlds().to_vec())
}

/// Builds the E7-style script, measures sequential vs `par_threads`, and
/// assembles the `BENCH_worlds.json` document.
pub fn run_worlds_bench(k: usize, par_threads: usize) -> WorldsBench {
    let mut w = Workload::new(0xE7);
    let (mut theory, _) = w.orders_theory(4);
    let updates: Vec<Update> = (0..k)
        .map(|i| w.disjunctive_insert(&mut theory, 2, i))
        .collect();
    let probe = updates[0].to_insert().omega;

    let (sequential, seq_worlds) = run_config(&theory, &updates, &probe, 1);
    let (parallel, par_worlds) = run_config(&theory, &updates, &probe, par_threads);

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let identical_worlds = seq_worlds == par_worlds;
    let apply_speedup = sequential.apply_us / parallel.apply_us;
    let entails_speedup = sequential.entails_us / parallel.entails_us;
    let mut notes = vec![format!(
        "k disjunctive inserts of width 2 over Orders(4): worlds grow 3^k \
         (here 3^{k} = {}).",
        seq_worlds.len()
    )];
    if host_parallelism < parallel.threads {
        notes.push(format!(
            "host exposes only {host_parallelism} hardware thread(s); with \
             {} workers oversubscribed, speedup ≈ 1 is the honest expectation \
             — thread-count independence of the *result* is what the \
             identical_worlds flag and the proptest certify.",
            parallel.threads
        ));
    }
    WorldsBench {
        version: 1,
        experiment: "worlds".to_owned(),
        workload: format!("E7-style: {k} disjunctive inserts (width 2) over Orders(4)"),
        branching_updates: k as u64,
        final_worlds: seq_worlds.len() as u64,
        host_parallelism,
        identical_worlds,
        apply_speedup,
        entails_speedup,
        sequential,
        parallel,
        notes,
    }
}

/// Shape-validates `BENCH_worlds.json` text by re-parsing it into
/// [`WorldsBench`] and checking the cross-field invariants. Returns the
/// parsed document on success; `make bench-smoke` fails on `Err`.
pub fn validate_worlds_bench(text: &str) -> Result<WorldsBench, String> {
    let b: WorldsBench =
        serde_json::from_str(text).map_err(|e| format!("BENCH_worlds.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "worlds" {
        return Err(format!(
            "experiment is {:?}, expected \"worlds\"",
            b.experiment
        ));
    }
    if b.final_worlds == 0 {
        return Err("final_worlds is 0 — the workload collapsed".to_owned());
    }
    if !b.identical_worlds {
        return Err("sequential and parallel runs disagree on the world set".to_owned());
    }
    if b.sequential.threads != 1 {
        return Err(format!(
            "sequential run used {} threads, expected 1",
            b.sequential.threads
        ));
    }
    if b.parallel.threads < 2 {
        return Err(format!(
            "parallel run used {} thread(s), expected ≥ 2",
            b.parallel.threads
        ));
    }
    for (label, run) in [("sequential", &b.sequential), ("parallel", &b.parallel)] {
        if run.stats.applies != b.branching_updates {
            return Err(format!(
                "{label} run records {} applies for {} updates",
                run.stats.applies, b.branching_updates
            ));
        }
        if run.stats.worlds_out < b.final_worlds {
            return Err(format!(
                "{label} run's cumulative worlds_out ({}) is below final_worlds ({})",
                run.stats.worlds_out, b.final_worlds
            ));
        }
        if !(run.apply_us.is_finite() && run.apply_us > 0.0) {
            return Err(format!("{label} apply_us is not a positive finite number"));
        }
    }
    if !(b.apply_speedup.is_finite() && b.apply_speedup > 0.0) {
        return Err("apply_speedup is not a positive finite number".to_owned());
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".to_owned());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn worlds_table(b: &WorldsBench) -> Table {
    let mut t = Table::new(
        "WORLDS",
        "parallel worlds engine vs sequential (E7-style branching script)",
        &[
            "engine",
            "threads",
            "apply µs",
            "entails µs",
            "models produced",
            "rule3 filtered",
            "reuse hits",
        ],
    );
    for (label, r) in [("sequential", &b.sequential), ("parallel", &b.parallel)] {
        t.row(vec![
            label.to_owned(),
            r.threads.to_string(),
            format!("{:.1}", r.apply_us),
            format!("{:.1}", r.entails_us),
            r.stats.models_produced.to_string(),
            r.stats.rule3_filtered.to_string(),
            r.stats.compile_reuse_hits.to_string(),
        ]);
    }
    t.note(format!(
        "k = {} branching updates → {} final worlds; host parallelism {}",
        b.branching_updates, b.final_worlds, b.host_parallelism
    ));
    t.note(format!(
        "apply speedup ×{:.2}, entails speedup ×{:.2}, identical worlds: {}",
        b.apply_speedup, b.entails_speedup, b.identical_worlds
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_worlds_bench(3, 2);
        assert_eq!(b.final_worlds, 27); // 3^3
        assert!(b.identical_worlds);
        assert_eq!(b.sequential.stats.applies, 3);
        assert_eq!(b.parallel.stats.applies, 3);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_worlds_bench(&text).expect("validates");
        assert_eq!(back.final_worlds, 27);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_worlds_bench(2, 2);
        let mut bad = b.clone();
        bad.identical_worlds = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_worlds_bench(&text)
            .unwrap_err()
            .contains("disagree"));
        let mut bad = b.clone();
        bad.sequential.threads = 3;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_worlds_bench(&text)
            .unwrap_err()
            .contains("expected 1"));
        assert!(validate_worlds_bench("{").is_err());
    }

    #[test]
    fn table_renders_both_rows() {
        let b = run_worlds_bench(2, 2);
        let rendered = worlds_table(&b).render();
        assert!(rendered.contains("sequential"));
        assert!(rendered.contains("parallel"));
    }
}
