//! The experiment harness: regenerates every row recorded in
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p winslett-bench --bin harness            # all
//! cargo run --release -p winslett-bench --bin harness -- e3 e5   # subset
//! cargo run --release -p winslett-bench --bin harness -- --json  # JSON rows
//! cargo run --release -p winslett-bench --bin harness -- --quick # small sizes
//! cargo run --release -p winslett-bench --bin harness -- --out results/
//! ```

use winslett_bench::Table;
use winslett_bench::{
    compaction_bench, conflicts_bench, connections_bench, experiments, query_bench,
    replication_bench, server_bench, txn_bench, wal_bench, worlds_bench,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let mut skip_next = false;
    let selected: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|a| a.to_lowercase())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    let mut tables: Vec<Table> = Vec::new();
    let scale = if quick { 1 } else { 4 };

    if want("e1") {
        tables.push(experiments::e1(40 * scale));
    }
    if want("e2") {
        tables.push(experiments::e2(150 * scale));
    }
    if want("e3") {
        tables.push(experiments::e3(50 * scale));
    }
    if want("e4") {
        tables.push(experiments::e4(50 * scale));
    }
    if want("e5") {
        tables.push(experiments::e5(5 * scale));
    }
    if want("e6") {
        tables.push(experiments::e6(30 * scale));
    }
    if want("e7") {
        tables.push(experiments::e7(if quick { 5 } else { 8 }));
    }
    if want("e8") {
        tables.push(experiments::e8(if quick { 16 } else { 64 }));
    }
    if want("e9") {
        tables.push(experiments::e9(if quick { 5 } else { 8 }));
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    if want("worlds") {
        let bench = worlds_bench::run_worlds_bench(if quick { 5 } else { 8 }, 4);
        tables.push(worlds_bench::worlds_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_worlds.json"),
            None => "BENCH_worlds.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_worlds.json");
        // Validate the emitted document by re-reading what actually landed
        // on disk — the shape gate behind `make bench-smoke`.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_worlds.json");
        match worlds_bench::validate_worlds_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("wal") {
        let bench = wal_bench::run_wal_bench(if quick { 64 } else { 256 }, 8);
        tables.push(wal_bench::wal_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_wal.json"),
            None => "BENCH_wal.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_wal.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_wal.json");
        match wal_bench::validate_wal_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("query") {
        let bench =
            query_bench::run_query_bench(if quick { 24 } else { 64 }, if quick { 3 } else { 8 });
        tables.push(query_bench::query_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_query.json"),
            None => "BENCH_query.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_query.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_query.json");
        match query_bench::validate_query_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("server") {
        let bench = server_bench::run_server_bench(
            if quick { &[1, 2] } else { &[1, 2, 4] },
            if quick { 150 } else { 1000 },
        );
        tables.push(server_bench::server_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_server.json"),
            None => "BENCH_server.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_server.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_server.json");
        match server_bench::validate_server_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("compaction") {
        let bench = compaction_bench::run_compaction_bench(if quick { 240 } else { 1200 }, 25);
        tables.push(compaction_bench::compaction_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_compaction.json"),
            None => "BENCH_compaction.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_compaction.json");
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_compaction.json");
        match compaction_bench::validate_compaction_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("replication") {
        let bench = replication_bench::run_replication_bench(
            if quick { &[1, 2] } else { &[1, 2, 4] },
            if quick { 150 } else { 1000 },
        );
        tables.push(replication_bench::replication_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_replication.json"),
            None => "BENCH_replication.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_replication.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_replication.json");
        match replication_bench::validate_replication_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("connections") {
        let bench = connections_bench::run_connections_bench(
            if quick {
                &[50, 200]
            } else {
                &[100, 1000, 10000]
            },
            if quick { 60 } else { 200 },
        );
        tables.push(connections_bench::connections_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_connections.json"),
            None => "BENCH_connections.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_connections.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_connections.json");
        match connections_bench::validate_connections_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("conflicts") {
        // ≥3 writers: with the leader serving from inside the writer pool,
        // queued depth maxes out at writers − 1, and coalescing needs ≥2
        // jobs queued together.
        let bench = conflicts_bench::run_conflicts_bench(
            if quick { 3 } else { 4 },
            if quick { 150 } else { 1000 },
        );
        tables.push(conflicts_bench::conflicts_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_conflicts.json"),
            None => "BENCH_conflicts.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_conflicts.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_conflicts.json");
        match conflicts_bench::validate_conflicts_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("txn") {
        let bench =
            txn_bench::run_txn_bench(if quick { 3 } else { 4 }, if quick { 150 } else { 1000 });
        tables.push(txn_bench::txn_table(&bench));
        let path = match &out_dir {
            Some(dir) => format!("{dir}/BENCH_txn.json"),
            None => "BENCH_txn.json".to_owned(),
        };
        let text = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(&path, &text).expect("write BENCH_txn.json");
        // Same re-read-and-validate gate as BENCH_worlds.json.
        let reread = std::fs::read_to_string(&path).expect("read back BENCH_txn.json");
        match txn_bench::validate_txn_bench(&reread) {
            Ok(_) => eprintln!("{path}: shape OK"),
            Err(e) => {
                eprintln!("{path}: shape validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    for t in &tables {
        if json {
            println!("{}", serde_json::to_string(t).expect("serializable"));
        } else {
            println!("{}", t.render());
        }
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{}.json", t.id.to_lowercase());
            std::fs::write(
                &path,
                serde_json::to_string_pretty(t).expect("serializable"),
            )
            .expect("write result file");
        }
    }
}
