//! Plain-text table rendering for the experiment harness.

use serde::Serialize;

/// A printable experiment table; rows are also JSON-serializable so results
/// can be archived mechanically.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. "E3".
    pub id: String,
    /// One-line title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, observations).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["x", "time"]);
        t.row(vec!["1".into(), "10us".into()]);
        t.row(vec!["100".into(), "1ms".into()]);
        t.note("expected: linear");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("expected: linear"));
        assert!(s.lines().count() >= 6);
    }
}
