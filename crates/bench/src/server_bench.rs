//! The `server` experiment behind `BENCH_server.json`: a load generator
//! fanning client threads against one live `winslett-serve` server.
//!
//! For each reader level `r`, the bench runs `r` reader connections
//! (each looping pin → 16 entailment checks → unpin, measuring
//! per-check latency) concurrently with one writer connection that
//! commits journaled updates as fast as the server acknowledges them,
//! for a fixed wall-clock window. It records aggregate read throughput,
//! read and write latency percentiles, and — after the load quiesces —
//! a **verdict-identity check**: every probe answered through a pinned
//! server snapshot must answer exactly what direct library calls on the
//! reopened post-shutdown database say.
//!
//! On single-CPU hosts (CI containers) the reader threads time-share one
//! core, so aggregate throughput cannot scale; the validated invariant
//! is therefore *non-collapse* (aggregate throughput at the deepest
//! level stays within a constant factor of the single-reader level) plus
//! the host-independent `verdicts_match`. `host_parallelism` is recorded
//! so multi-core results can be read for the scaling claim.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use winslett_core::{DbOptions, DurableDatabase, MemStorage, SyncPolicy, WalOptions};
use winslett_serve::{Client, Server, ServerOptions};

/// Probes every reader asks; also the verdict-identity checklist.
const PROBES: &[&str] = &["Orders(700,32,9)", "Orders(100,32,1)", "InStock(32,1)"];

/// Checks issued per pinned snapshot before re-pinning.
const CHECKS_PER_PIN: usize = 16;

/// One reader-count level of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReaderLevel {
    /// Concurrent reader connections.
    pub readers: u64,
    /// Entailment checks answered across all readers in the window.
    pub total_reads: u64,
    /// Aggregate reads per second across all readers.
    pub reads_per_sec: f64,
    /// Per-check latency percentiles, µs.
    pub read_p50_us: f64,
    /// 95th percentile, µs.
    pub read_p95_us: f64,
    /// 99th percentile, µs.
    pub read_p99_us: f64,
    /// Updates the concurrent writer committed during the window — must
    /// be > 0: readers never starve the writer.
    pub writer_updates: u64,
    /// Per-update commit latency percentiles for that writer, µs.
    pub write_p50_us: f64,
    /// 95th percentile, µs.
    pub write_p95_us: f64,
}

/// The complete `BENCH_server.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"server"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Measurement window per reader level, milliseconds.
    pub window_ms: u64,
    /// `std::thread::available_parallelism()` on the measuring host. On
    /// 1, reader scaling is time-sharing; read the throughput column as
    /// a non-collapse check, not a speedup curve.
    pub host_parallelism: u64,
    /// The sweep, in increasing reader count.
    pub levels: Vec<ReaderLevel>,
    /// Whether every probe's `(possible, certain)` over a pinned server
    /// snapshot equals direct library calls on the reopened
    /// post-shutdown database. Must be `true`.
    pub verdicts_match: bool,
    /// Per-check latency of the same probes asked directly of the
    /// library (no server, no socket), µs — the protocol-overhead
    /// baseline.
    pub direct_check_us: f64,
    /// Free-form observations.
    pub notes: Vec<String>,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn boot() -> (
    std::thread::JoinHandle<Result<MemStorage, winslett_core::DbError>>,
    std::net::SocketAddr,
) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            ..ServerOptions::default()
        },
    )
    .expect("bench server bind");
    let addr = server.local_addr();
    (std::thread::spawn(move || server.run()), addr)
}

/// Seeds the paper's Orders/InStock schema through the wire.
fn seed(client: &mut Client) {
    client.declare_relation("Orders", 3).expect("declare");
    client.declare_relation("InStock", 2).expect("declare");
    client
        .load_fact("Orders", &["700", "32", "9"])
        .expect("seed fact");
    client
        .load_fact("InStock", &["32", "1"])
        .expect("seed fact");
    // Branch once so certain/possible differ and checks do real SAT work.
    client
        .execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
        .expect("seed branch");
}

/// The writer's bounded update script: toggles membership over a small
/// atom pool so the theory stays compact however long the window is.
fn writer_statement(i: usize) -> String {
    let k = i % 6;
    if (i / 6).is_multiple_of(2) {
        format!("INSERT InStock({k},{k}) WHERE T")
    } else {
        format!("DELETE InStock({k},{k}) WHERE T")
    }
}

/// Runs one reader level: `readers` pin/check/unpin loops plus one
/// flat-out writer, for `window`.
fn run_level(addr: std::net::SocketAddr, readers: usize, window: Duration) -> ReaderLevel {
    let stop = Arc::new(AtomicBool::new(false));
    let mut reader_handles = Vec::new();
    for _ in 0..readers {
        let stop = Arc::clone(&stop);
        reader_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connect");
            let mut latencies_us = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                client.pin().expect("pin");
                for i in 0..CHECKS_PER_PIN {
                    let probe = PROBES[i % PROBES.len()];
                    let start = Instant::now();
                    client.check(probe).expect("check");
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                client.unpin().expect("unpin");
            }
            latencies_us
        }));
    }
    let writer_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("writer connect");
        let mut latencies_us = Vec::new();
        let mut i = 0usize;
        while !writer_stop.load(Ordering::Relaxed) {
            let start = Instant::now();
            client.execute(&writer_statement(i)).expect("bench update");
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            i += 1;
        }
        latencies_us
    });

    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut read_latencies: Vec<f64> = Vec::new();
    for h in reader_handles {
        read_latencies.extend(h.join().expect("reader thread"));
    }
    let mut write_latencies = writer.join().expect("writer thread");
    let elapsed = started.elapsed().as_secs_f64();

    read_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    write_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ReaderLevel {
        readers: readers as u64,
        total_reads: read_latencies.len() as u64,
        reads_per_sec: read_latencies.len() as f64 / elapsed,
        read_p50_us: percentile(&read_latencies, 0.50),
        read_p95_us: percentile(&read_latencies, 0.95),
        read_p99_us: percentile(&read_latencies, 0.99),
        writer_updates: write_latencies.len() as u64,
        write_p50_us: percentile(&write_latencies, 0.50),
        write_p95_us: percentile(&write_latencies, 0.95),
    }
}

/// Runs the full sweep and assembles the `BENCH_server.json` document.
pub fn run_server_bench(reader_levels: &[usize], window_ms: u64) -> ServerBench {
    let (running, addr) = boot();
    let mut setup = Client::connect(addr).expect("setup connect");
    seed(&mut setup);

    let window = Duration::from_millis(window_ms);
    let levels: Vec<ReaderLevel> = reader_levels
        .iter()
        .map(|&r| run_level(addr, r, window))
        .collect();

    // Quiesce, then collect the verdict checklist over a pinned server
    // snapshot of the final state.
    let server_verdicts: Vec<(bool, bool)> = {
        let mut client = Client::connect(addr).expect("verdict connect");
        client.pin().expect("pin final");
        PROBES
            .iter()
            .map(|p| {
                let t = client.check(p).expect("final check");
                (t.possible, t.certain)
            })
            .collect()
    };

    setup.shutdown().expect("shutdown");
    let storage = running.join().expect("server thread").expect("server run");

    // Reopen the storage the server flushed on close and ask the library
    // directly — the ground truth for verdict identity, and the
    // no-protocol latency baseline.
    let (reopened, _) = DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
        .expect("bench reopen");
    let mut direct = reopened;
    let start = Instant::now();
    let direct_verdicts: Vec<(bool, bool)> = PROBES
        .iter()
        .map(|p| {
            let possible = direct.db_mut().is_possible(p).expect("direct possible");
            let certain = direct.db_mut().is_certain(p).expect("direct certain");
            (possible, certain)
        })
        .collect();
    let direct_check_us = start.elapsed().as_secs_f64() * 1e6 / (PROBES.len() * 2) as f64;
    let verdicts_match = server_verdicts == direct_verdicts;

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let notes = vec![
        format!(
            "Each reader loops pin → {CHECKS_PER_PIN} checks → unpin; one writer \
             commits toggling updates flat-out for the whole window."
        ),
        "Reads run on published snapshots and never take the writer lock; \
         writer_updates > 0 at every level is the no-starvation witness."
            .to_owned(),
        "On host_parallelism 1 the levels time-share one core, so judge \
         scaling by non-collapse of aggregate throughput, not speedup."
            .to_owned(),
    ];
    ServerBench {
        version: 1,
        experiment: "server".to_owned(),
        workload: format!(
            "{} reader levels × {window_ms} ms against one winslett-serve \
             instance (MemStorage, group commit 8)",
            reader_levels.len()
        ),
        window_ms,
        host_parallelism,
        levels,
        verdicts_match,
        direct_check_us,
        notes,
    }
}

/// Shape-validates `BENCH_server.json` text by re-parsing it into
/// [`ServerBench`] and checking the cross-field invariants. Returns the
/// parsed document on success; `make bench-smoke` fails on `Err`.
pub fn validate_server_bench(text: &str) -> Result<ServerBench, String> {
    let b: ServerBench =
        serde_json::from_str(text).map_err(|e| format!("BENCH_server.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "server" {
        return Err(format!(
            "experiment is {:?}, expected \"server\"",
            b.experiment
        ));
    }
    if b.window_ms == 0 {
        return Err("window_ms is 0 — nothing was measured".to_owned());
    }
    if b.levels.is_empty() {
        return Err("no reader levels recorded".to_owned());
    }
    let mut prev_readers = 0;
    for level in &b.levels {
        if level.readers <= prev_readers {
            return Err("reader levels must strictly increase".to_owned());
        }
        prev_readers = level.readers;
        if level.total_reads == 0 {
            return Err(format!("level {} served no reads", level.readers));
        }
        if !(level.reads_per_sec.is_finite() && level.reads_per_sec > 0.0) {
            return Err(format!(
                "level {} reads_per_sec is not positive finite",
                level.readers
            ));
        }
        let ordered = level.read_p50_us <= level.read_p95_us
            && level.read_p95_us <= level.read_p99_us
            && level.read_p50_us > 0.0
            && level.read_p99_us.is_finite();
        if !ordered {
            return Err(format!(
                "level {} read percentiles are not ordered positive finite",
                level.readers
            ));
        }
        if level.writer_updates == 0 {
            return Err(format!(
                "level {} starved the writer — snapshot reads must not block writes",
                level.readers
            ));
        }
        if !(level.write_p50_us > 0.0 && level.write_p95_us >= level.write_p50_us) {
            return Err(format!(
                "level {} write percentiles are not ordered positive",
                level.readers
            ));
        }
    }
    // Non-collapse: adding readers must keep aggregate throughput within
    // a constant factor of the single-connection level (true scaling on
    // multi-core hosts; fair time-sharing on one core).
    let first = &b.levels[0];
    let last = &b.levels[b.levels.len() - 1];
    if last.reads_per_sec < 0.3 * first.reads_per_sec {
        return Err(format!(
            "aggregate read throughput collapsed: {:.0}/s at {} readers vs {:.0}/s at {}",
            last.reads_per_sec, last.readers, first.reads_per_sec, first.readers
        ));
    }
    if !b.verdicts_match {
        return Err("server snapshot verdicts differ from direct library calls".to_owned());
    }
    if !(b.direct_check_us.is_finite() && b.direct_check_us > 0.0) {
        return Err("direct_check_us is not positive finite".to_owned());
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".to_owned());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn server_table(b: &ServerBench) -> Table {
    let mut t = Table::new(
        "SERVER",
        "winslett-serve under load: snapshot-read throughput vs reader count with one live writer",
        &[
            "readers",
            "reads/s",
            "read p50 µs",
            "read p95 µs",
            "read p99 µs",
            "writer upd",
            "write p50 µs",
        ],
    );
    for level in &b.levels {
        t.row(vec![
            level.readers.to_string(),
            format!("{:.0}", level.reads_per_sec),
            format!("{:.1}", level.read_p50_us),
            format!("{:.1}", level.read_p95_us),
            format!("{:.1}", level.read_p99_us),
            level.writer_updates.to_string(),
            format!("{:.1}", level.write_p50_us),
        ]);
    }
    t.note(format!(
        "{} ms window per level; verdicts match direct library calls: {}; \
         direct per-check baseline {:.1} µs; host parallelism {}",
        b.window_ms, b.verdicts_match, b.direct_check_us, b.host_parallelism
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_server_bench(&[1, 2], 80);
        assert!(b.verdicts_match);
        assert_eq!(b.levels.len(), 2);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_server_bench(&text).expect("validates");
        assert_eq!(back.levels[0].readers, 1);
        assert!(back.levels.iter().all(|l| l.writer_updates > 0));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_server_bench(&[1, 2], 60);
        let mut bad = b.clone();
        bad.verdicts_match = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_server_bench(&text).unwrap_err().contains("differ"));
        let mut bad = b.clone();
        bad.levels[1].writer_updates = 0;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_server_bench(&text)
            .unwrap_err()
            .contains("starved"));
        let mut bad = b.clone();
        bad.levels[1].reads_per_sec = 0.1 * bad.levels[0].reads_per_sec;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_server_bench(&text)
            .unwrap_err()
            .contains("collapsed"));
        assert!(validate_server_bench("{").is_err());
    }

    #[test]
    fn table_renders_every_level() {
        let b = run_server_bench(&[1], 60);
        let rendered = server_table(&b).render();
        assert!(rendered.contains("reads/s"));
        assert!(rendered.contains("verdicts match"));
    }
}
