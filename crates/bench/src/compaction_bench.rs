//! The `compaction` experiment behind `BENCH_compaction.json`: does
//! background Full compaction bound theory growth under a sustained
//! update stream, without changing a single query verdict?
//!
//! One fixed statement stream — a small key set cycled through
//! conditional INSERT/MODIFY/DELETE phases under persistently uncertain
//! flags, the §4 worst case where every uncertain update leaves frame
//! residue behind — runs twice over [`DurableDatabase`]:
//!
//! * **off**: inline `Fast` simplify only, the writer's own pass;
//! * **on**: the same stream, plus the three-phase compaction protocol
//!   (`begin_compaction` → off-lock `Full` simplify → `install_compacted`)
//!   every `period` statements, with one statement of the stream executed
//!   *inside* each capture window so every swap replays a racing write.
//!
//! Both runs sample store size on the same statement counts and evaluate
//! an identical probe panel (certain/possible per probe) at every sample
//! point; the harness proves verdict identity sample-by-sample and
//! compares the final alternative-world sets. Both runs end with a
//! checkpoint so the on-disk snapshot shrink is measured too.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::Instant;
use winslett_core::wal::{DurableDatabase, SyncPolicy, WalOptions, SNAPSHOT_FILE};
use winslett_core::{DbOptions, MemStorage};
use winslett_gua::{simplify, SimplifyLevel};

/// Store size and probe verdicts at one point of the stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompactionSample {
    /// Statements executed so far.
    pub statements: u64,
    /// Store nodes (§3.6 cost measure) at this point.
    pub nodes: u64,
    /// Live formulas at this point.
    pub formulas: u64,
    /// One char per probe: `C` certain, `P` possible but not certain,
    /// `F` impossible. Compared verbatim between the two runs.
    pub verdicts: String,
}

/// One run of the stream (with or without compaction).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompactionRun {
    /// `"compaction-on"` or `"compaction-off"`.
    pub label: String,
    /// Store size + verdict samples over the stream.
    pub samples: Vec<CompactionSample>,
    /// Store nodes after the full stream.
    pub final_nodes: u64,
    /// Live formulas after the full stream.
    pub final_formulas: u64,
    /// Compaction rounds performed (0 for the off run).
    pub compactions: u64,
    /// Store nodes reclaimed across all swaps.
    pub nodes_reclaimed: u64,
    /// WAL records replayed onto compacted copies across all swaps —
    /// proof the racing-write path was exercised.
    pub swap_replayed: u64,
    /// Size of the final checkpoint snapshot, bytes.
    pub checkpoint_bytes: u64,
    /// Mean latency of one probe (certain + possible) on the final
    /// theory, µs.
    pub probe_mean_us: f64,
}

/// The complete `BENCH_compaction.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompactionBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"compaction"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Statements in the stream (identical for both runs).
    pub statements: u64,
    /// Compaction period of the on run, in statements.
    pub period: u64,
    /// Probe panel size.
    pub probes: u64,
    /// Every sampled probe verdict matches between the runs. Must be
    /// `true`: compaction is semantically invisible.
    pub verdicts_identical: bool,
    /// The final alternative-world sets are identical. Must be `true`.
    pub worlds_match: bool,
    /// Off-run growth: final nodes / nodes at the first sample.
    pub growth_ratio_off: f64,
    /// On-run plateau: mean nodes over the last quarter of samples /
    /// mean over the second quarter. ≈1 for a plateau; grows without
    /// bound for a leak.
    pub plateau_ratio_on: f64,
    /// off final nodes / on final nodes — the headline contrast.
    pub nodes_ratio: f64,
    /// off checkpoint bytes / on checkpoint bytes.
    pub checkpoint_ratio: f64,
    /// The compacted run.
    pub on: CompactionRun,
    /// The inline-Fast-only run.
    pub off: CompactionRun,
    /// Free-form observations.
    pub notes: Vec<String>,
}

/// The fixed statement stream: `steps` update steps over 8 Item keys and
/// 4 Flags, flattened to individual statements. Phase 3 resolves one flag
/// and immediately re-opens fresh uncertainty, so the stream never runs
/// out of frame residue to accumulate.
fn stream(steps: usize) -> Vec<String> {
    let mut v = Vec::new();
    for i in 0..steps {
        let k = i % 8;
        let f = i % 4;
        match (i / 8) % 4 {
            0 => v.push(format!("INSERT Item({k},v0) WHERE Flag({f})")),
            1 => v.push(format!(
                "MODIFY Item({k},v0) TO BE Item({k},v1) WHERE Flag({f})"
            )),
            2 => v.push(format!("DELETE Item({k},v1) WHERE Flag({f})")),
            _ => {
                v.push(format!("ASSERT Flag({f})"));
                v.push(format!(
                    "INSERT Flag({}) | !Flag({}) WHERE T",
                    (f + 1) % 4,
                    (f + 2) % 4
                ));
            }
        }
    }
    v
}

/// The probe panel both runs answer at every sample point.
fn probe_panel() -> Vec<String> {
    let mut p = Vec::new();
    for k in 0..8 {
        p.push(format!("Item({k},v0)"));
        p.push(format!("Item({k},v1)"));
    }
    for f in 0..4 {
        p.push(format!("Flag({f})"));
    }
    p.push("Item(0,v1) | Item(1,v1)".to_owned());
    p.push("Flag(0) & Item(0,v0)".to_owned());
    p
}

fn open_db() -> DurableDatabase<MemStorage> {
    let wal_options = WalOptions {
        policy: SyncPolicy::Manual,
        // The WAL's own size-triggered checkpointing stays out of the way:
        // the experiment controls when snapshots are cut.
        compact_growth_factor: None,
        compact_min_nodes: 0,
    };
    let (mut ddb, _) = DurableDatabase::open(MemStorage::new(), DbOptions::default(), wal_options)
        .expect("bench open");
    ddb.declare_relation("Item", 2).expect("declare Item");
    ddb.declare_relation("Flag", 1).expect("declare Flag");
    // Seed persistent uncertainty: two disjunctions the stream conditions
    // every update on.
    ddb.execute("INSERT Flag(0) | Flag(1) WHERE T")
        .expect("seed");
    ddb.execute("INSERT Flag(2) | Flag(3) WHERE T")
        .expect("seed");
    // Pre-intern the probe vocabulary so early samples can parse probes
    // mentioning constants the stream has not introduced yet. Both runs
    // do this identically, so verdicts stay comparable.
    for k in 0..8 {
        ddb.db_mut().theory_mut().constant(&k.to_string());
    }
    ddb.db_mut().theory_mut().constant("v0");
    ddb.db_mut().theory_mut().constant("v1");
    ddb
}

/// Answers the panel on the current theory as one verdict string.
fn panel_verdicts(ddb: &mut DurableDatabase<MemStorage>, panel: &[String]) -> String {
    panel
        .iter()
        .map(|src| {
            let certain = ddb.db_mut().is_certain(src).expect("probe parses");
            if certain {
                'C'
            } else if ddb.db_mut().is_possible(src).expect("probe parses") {
                'P'
            } else {
                'F'
            }
        })
        .collect()
}

/// Runs the stream once. `period` = 0 disables compaction. Returns the
/// run record plus the final world set for cross-run comparison.
fn run_stream(
    statements: &[String],
    period: usize,
    sample_every: usize,
    panel: &[String],
) -> (CompactionRun, BTreeSet<Vec<String>>) {
    let mut ddb = open_db();
    let mut samples = Vec::new();
    let mut compactions = 0u64;
    let mut nodes_reclaimed = 0u64;
    let mut swap_replayed = 0u64;
    let mut since_compact = 0usize;
    let mut i = 0usize;
    let mut executed = 0u64;
    while i < statements.len() {
        if period > 0 && since_compact >= period {
            since_compact = 0;
            // Three-phase swap with a genuine racing write: the next
            // statement of the stream lands inside the capture window, so
            // install_compacted must replay it onto the compacted copy.
            let (mut copy, from_lsn) = ddb.begin_compaction();
            ddb.execute(&statements[i]).expect("bench update");
            i += 1;
            executed += 1;
            simplify(&mut copy, SimplifyLevel::Full);
            let outcome = ddb
                .install_compacted(copy, from_lsn, false)
                .expect("swap succeeds");
            compactions += 1;
            nodes_reclaimed += outcome.nodes_reclaimed() as u64;
            swap_replayed += outcome.replayed as u64;
        } else {
            ddb.execute(&statements[i]).expect("bench update");
            i += 1;
            executed += 1;
            since_compact += 1;
        }
        if executed.is_multiple_of(sample_every as u64) {
            let verdicts = panel_verdicts(&mut ddb, panel);
            samples.push(CompactionSample {
                statements: executed,
                nodes: ddb.db().theory().store_nodes() as u64,
                formulas: ddb.db().theory().store.len() as u64,
                verdicts,
            });
        }
    }

    // Probe latency on the final theory.
    let start = Instant::now();
    let _ = panel_verdicts(&mut ddb, panel);
    let probe_mean_us = start.elapsed().as_secs_f64() * 1e6 / panel.len() as f64;

    let final_nodes = ddb.db().theory().store_nodes() as u64;
    let final_formulas = ddb.db().theory().store.len() as u64;
    ddb.checkpoint().expect("final checkpoint");
    let checkpoint_bytes = ddb
        .storage()
        .get(SNAPSHOT_FILE)
        .expect("snapshot written")
        .len() as u64;
    let worlds: BTreeSet<Vec<String>> = ddb
        .db()
        .world_names()
        .expect("worlds materialize")
        .into_iter()
        .collect();

    let run = CompactionRun {
        label: if period > 0 {
            "compaction-on".to_owned()
        } else {
            "compaction-off".to_owned()
        },
        samples,
        final_nodes,
        final_formulas,
        compactions,
        nodes_reclaimed,
        swap_replayed,
        checkpoint_bytes,
        probe_mean_us,
    };
    (run, worlds)
}

/// Mean nodes over `samples[lo..hi]`, at least 1 to keep ratios finite.
fn mean_nodes(samples: &[CompactionSample], lo: usize, hi: usize) -> f64 {
    let slice = &samples[lo.min(samples.len())..hi.min(samples.len())];
    if slice.is_empty() {
        return 1.0;
    }
    (slice.iter().map(|s| s.nodes).sum::<u64>() as f64 / slice.len() as f64).max(1.0)
}

/// Runs the stream with and without compaction and assembles the
/// `BENCH_compaction.json` document. `steps` is update steps (the stream
/// is slightly longer in statements), `period` the compaction cadence in
/// statements.
pub fn run_compaction_bench(steps: usize, period: usize) -> CompactionBench {
    let statements = stream(steps);
    let sample_every = (statements.len() / 24).max(1);
    let panel = probe_panel();
    let (on, on_worlds) = run_stream(&statements, period, sample_every, &panel);
    let (off, off_worlds) = run_stream(&statements, 0, sample_every, &panel);

    let verdicts_identical = on.samples.len() == off.samples.len()
        && on
            .samples
            .iter()
            .zip(&off.samples)
            .all(|(a, b)| a.statements == b.statements && a.verdicts == b.verdicts);
    let worlds_match = on_worlds == off_worlds;

    let n = on.samples.len();
    let plateau_ratio_on =
        mean_nodes(&on.samples, 3 * n / 4, n) / mean_nodes(&on.samples, n / 4, n / 2);
    let growth_ratio_off = off.final_nodes.max(1) as f64
        / off.samples.first().map(|s| s.nodes.max(1)).unwrap_or(1) as f64;
    let nodes_ratio = off.final_nodes.max(1) as f64 / on.final_nodes.max(1) as f64;
    let checkpoint_ratio = off.checkpoint_bytes.max(1) as f64 / on.checkpoint_bytes.max(1) as f64;

    let notes = vec![
        format!(
            "{} statements over 8 Item keys / 4 Flags; every update is \
             conditioned on a persistently uncertain flag, so inline Fast \
             simplify cannot discharge the frame residue — the §4 \
             motivating regime.",
            statements.len()
        ),
        format!(
            "Each of the {} compaction rounds captured the snapshot, ran \
             Full simplify off-line, and replayed {} racing writes in \
             total at install time.",
            on.compactions, on.swap_replayed
        ),
        "Verdict identity is checked per sample point and on the final \
         alternative-world sets: the compacted run must be observationally \
         indistinguishable from the uncompacted one."
            .to_owned(),
    ];
    CompactionBench {
        version: 1,
        experiment: "compaction".to_owned(),
        workload: format!(
            "{steps} update steps (conditional INSERT/MODIFY/DELETE under \
             uncertain flags) with compaction every {period} statements"
        ),
        statements: statements.len() as u64,
        period: period as u64,
        probes: panel.len() as u64,
        verdicts_identical,
        worlds_match,
        growth_ratio_off,
        plateau_ratio_on,
        nodes_ratio,
        checkpoint_ratio,
        on,
        off,
        notes,
    }
}

/// Shape-validates `BENCH_compaction.json` text by re-parsing it into
/// [`CompactionBench`] and checking the cross-field invariants — above
/// all that compaction bounded the theory (plateau, not monotone growth)
/// while the uncompacted run grew, and that not one verdict differed.
/// Returns the parsed document on success; `make compaction-smoke` fails
/// on `Err`.
pub fn validate_compaction_bench(text: &str) -> Result<CompactionBench, String> {
    let b: CompactionBench = serde_json::from_str(text)
        .map_err(|e| format!("BENCH_compaction.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "compaction" {
        return Err(format!(
            "experiment is {:?}, expected \"compaction\"",
            b.experiment
        ));
    }
    if b.statements == 0 || b.period == 0 || b.probes == 0 {
        return Err("statements, period, and probes must all be positive".to_owned());
    }
    if !b.verdicts_identical {
        return Err("a sampled probe verdict differed between the runs".to_owned());
    }
    if !b.worlds_match {
        return Err("final alternative-world sets differ between the runs".to_owned());
    }
    // Re-derive verdict identity from the raw samples: the flag must not
    // be taken on faith.
    if b.on.samples.len() != b.off.samples.len()
        || b.on
            .samples
            .iter()
            .zip(&b.off.samples)
            .any(|(x, y)| x.statements != y.statements || x.verdicts != y.verdicts)
    {
        return Err("verdicts_identical is set but the samples disagree".to_owned());
    }
    for (label, run, want_compactions) in [("on", &b.on, true), ("off", &b.off, false)] {
        if run.samples.len() < 8 {
            return Err(format!(
                "{label} run has only {} samples",
                run.samples.len()
            ));
        }
        if run.final_nodes == 0 {
            return Err(format!("{label} run ended with an empty store"));
        }
        if run.checkpoint_bytes == 0 {
            return Err(format!("{label} run wrote no checkpoint"));
        }
        if !(run.probe_mean_us.is_finite() && run.probe_mean_us > 0.0) {
            return Err(format!("{label} probe_mean_us is not positive finite"));
        }
        if want_compactions && (run.compactions == 0 || run.swap_replayed == 0) {
            return Err("on run performed no compactions or replayed no racing writes".to_owned());
        }
        if !want_compactions && run.compactions != 0 {
            return Err("off run performed compactions".to_owned());
        }
    }
    if b.on.nodes_reclaimed == 0 {
        return Err("compaction reclaimed no nodes".to_owned());
    }
    // The headline claims: off grows monotonically (final well past its
    // early samples), on plateaus (late quarter ≈ mid quarter), and the
    // contrast between the two finals is material.
    if b.growth_ratio_off < 2.0 {
        return Err(format!(
            "off run grew only ×{:.2} — the workload is not growth-bound",
            b.growth_ratio_off
        ));
    }
    if b.plateau_ratio_on > 1.75 {
        return Err(format!(
            "on run's late/mid node ratio is ×{:.2} — that is growth, not a plateau",
            b.plateau_ratio_on
        ));
    }
    if b.nodes_ratio < 2.0 {
        return Err(format!(
            "off/on final node ratio is only ×{:.2}",
            b.nodes_ratio
        ));
    }
    if b.checkpoint_ratio < 1.0 {
        return Err(format!(
            "compacted checkpoint is larger than the uncompacted one (ratio ×{:.2})",
            b.checkpoint_ratio
        ));
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn compaction_table(b: &CompactionBench) -> Table {
    let mut t = Table::new(
        "COMPACTION",
        "background Full compaction vs inline Fast only: theory size, checkpoint size, probe latency",
        &[
            "run",
            "final nodes",
            "final formulas",
            "compactions",
            "reclaimed",
            "replayed",
            "ckpt bytes",
            "probe µs",
        ],
    );
    for r in [&b.on, &b.off] {
        t.row(vec![
            r.label.clone(),
            r.final_nodes.to_string(),
            r.final_formulas.to_string(),
            r.compactions.to_string(),
            r.nodes_reclaimed.to_string(),
            r.swap_replayed.to_string(),
            r.checkpoint_bytes.to_string(),
            format!("{:.1}", r.probe_mean_us),
        ]);
    }
    t.note(format!(
        "{} statements, compaction every {}; off grew ×{:.1} while on's late/mid ratio is ×{:.2}; final contrast ×{:.1} nodes, ×{:.1} checkpoint bytes",
        b.statements, b.period, b.growth_ratio_off, b.plateau_ratio_on, b.nodes_ratio, b.checkpoint_ratio
    ));
    t.note(format!(
        "verdict identity over {} probes × {} sample points: {}; world sets match: {}",
        b.probes,
        b.on.samples.len(),
        b.verdicts_identical,
        b.worlds_match
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_compaction_bench(160, 20);
        assert!(b.verdicts_identical);
        assert!(b.worlds_match);
        assert!(b.on.compactions > 0);
        assert!(b.on.swap_replayed > 0);
        assert!(b.off.final_nodes > b.on.final_nodes);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_compaction_bench(&text).expect("validates");
        assert_eq!(back.statements, b.statements);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_compaction_bench(160, 20);
        let mut bad = b.clone();
        bad.verdicts_identical = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_compaction_bench(&text)
            .unwrap_err()
            .contains("verdict"));
        let mut bad = b.clone();
        bad.on.samples[0].verdicts.push('C');
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_compaction_bench(&text)
            .unwrap_err()
            .contains("samples disagree"));
        let mut bad = b.clone();
        bad.plateau_ratio_on = 3.0;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_compaction_bench(&text)
            .unwrap_err()
            .contains("plateau"));
        let mut bad = b;
        bad.on.nodes_reclaimed = 0;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_compaction_bench(&text)
            .unwrap_err()
            .contains("reclaimed"));
        assert!(validate_compaction_bench("{").is_err());
    }

    #[test]
    fn table_renders_both_rows() {
        let b = run_compaction_bench(160, 20);
        let rendered = compaction_table(&b).render();
        assert!(rendered.contains("compaction-on"));
        assert!(rendered.contains("compaction-off"));
    }
}
