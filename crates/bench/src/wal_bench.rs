//! The `wal` experiment behind `BENCH_wal.json`: per-update commit
//! latency of [`DurableDatabase`] under the two sync policies, on real
//! fsync-backed [`DirStorage`].
//!
//! A fixed script of `n` ground inserts over the Orders schema runs once
//! with [`SyncPolicy::EveryRecord`] (one fsync per acknowledged update —
//! the §4 "journal everything" discipline taken literally) and once with
//! [`SyncPolicy::GroupCommit`] (fsync every `group` records plus one at
//! the trailing `sync`). Both runs land in fresh temp directories. The
//! result records wall times, the WAL's own [`WalStats`] counters, and a
//! recovery check: the `EveryRecord` directory is reopened and its
//! recovered alternative-world set must equal the live run's.
//!
//! Everything is (de)serializable, so the harness validates the emitted
//! JSON by re-parsing it into [`WalBench`] — the shape check behind
//! `make bench-smoke`.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::Instant;
use winslett_core::wal::{DirStorage, DurableDatabase, SyncPolicy, WalOptions};
use winslett_core::{DbOptions, LogicalDatabase};
use winslett_logic::ModelLimit;
use winslett_worlds::WorldsEngine;

/// One sync policy's measured run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WalRun {
    /// Human-readable policy label (`"every-record"` / `"group-commit"`).
    pub policy: String,
    /// Wall time of the full update script including the trailing sync, µs.
    pub total_us: f64,
    /// `total_us / updates` — the per-update commit latency.
    pub per_update_us: f64,
    /// WAL records appended (updates plus schema/fact journaling).
    pub records: u64,
    /// fsync calls issued.
    pub syncs: u64,
    /// Bytes appended to the log.
    pub bytes_appended: u64,
}

/// The complete `BENCH_wal.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WalBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"wal"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Number of journaled updates in the script.
    pub updates: u64,
    /// Group-commit batch size of the second run.
    pub group_size: u64,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// fsync latency dominates here, but single-CPU containers also slow
    /// the GUA apply between commits, so record it for honesty.
    pub host_parallelism: u64,
    /// Whether reopening the `EveryRecord` directory recovered exactly
    /// the live run's alternative-world set. Must be `true`.
    pub recovery_matches: bool,
    /// Wall time of that recovery (snapshot load + WAL replay), µs.
    pub recovery_us: f64,
    /// EveryRecord per-update latency / GroupCommit per-update latency.
    pub commit_speedup: f64,
    /// The one-fsync-per-update run.
    pub every_record: WalRun,
    /// The batched run.
    pub group_commit: WalRun,
    /// Free-form observations.
    pub notes: Vec<String>,
}

/// The alternative-world set rendered name-based, so images recovered
/// through a fresh symbol table compare equal to the live database.
fn world_set(db: &LogicalDatabase) -> BTreeSet<Vec<String>> {
    let engine = WorldsEngine::from_theory(db.theory(), ModelLimit::default())
        .expect("bench workload materializes");
    engine
        .worlds()
        .iter()
        .map(|w| db.theory().format_world(w))
        .collect()
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("winslett-wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the `n`-insert script under `policy` in a fresh directory and
/// returns the run record, the final world set, and the directory (kept
/// on disk so the caller can time recovery from it).
fn run_policy(
    n: usize,
    policy: SyncPolicy,
    label: &str,
    tag: &str,
) -> (WalRun, BTreeSet<Vec<String>>, std::path::PathBuf) {
    let dir = scratch_dir(tag);
    let storage = DirStorage::new(&dir).expect("create bench scratch dir");
    let wal_options = WalOptions {
        policy,
        // No auto-compaction: the measurement is append+fsync latency,
        // not snapshot cost.
        compact_growth_factor: None,
        compact_min_nodes: 0,
    };
    let (mut ddb, _) =
        DurableDatabase::open(storage, DbOptions::default(), wal_options).expect("bench open");
    ddb.declare_relation("Orders", 3).expect("declare Orders");
    ddb.declare_relation("InStock", 2).expect("declare InStock");
    ddb.load_fact("Orders", &["700", "32", "9"])
        .expect("seed fact");

    let start = Instant::now();
    for i in 0..n {
        let src = format!("INSERT InStock(p{i},{}) WHERE T", i % 10);
        ddb.execute(&src).expect("bench update");
    }
    ddb.sync().expect("trailing sync");
    let total_us = start.elapsed().as_secs_f64() * 1e6;

    let stats = ddb.stats();
    let worlds = world_set(ddb.db());
    let run = WalRun {
        policy: label.to_owned(),
        total_us,
        per_update_us: total_us / n as f64,
        records: stats.records,
        syncs: stats.syncs,
        bytes_appended: stats.bytes_appended,
    };
    (run, worlds, dir)
}

/// Measures both sync policies over `n` updates (batch size `group`) and
/// assembles the `BENCH_wal.json` document.
pub fn run_wal_bench(n: usize, group: usize) -> WalBench {
    let (every_record, live_worlds, every_dir) =
        run_policy(n, SyncPolicy::EveryRecord, "every-record", "every");
    let (group_commit, group_worlds, group_dir) =
        run_policy(n, SyncPolicy::GroupCommit(group), "group-commit", "grouped");

    // Recovery: reopen the EveryRecord image cold and time snapshot load
    // plus WAL replay; the recovered world set must equal the live one.
    let storage = DirStorage::new(&every_dir).expect("reopen bench dir");
    let start = Instant::now();
    let (recovered, _report) = DurableDatabase::open(
        storage,
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::EveryRecord,
            compact_growth_factor: None,
            compact_min_nodes: 0,
        },
    )
    .expect("bench recovery");
    let recovery_us = start.elapsed().as_secs_f64() * 1e6;
    let recovery_matches = world_set(recovered.db()) == live_worlds && group_worlds == live_worlds;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&every_dir);
    let _ = std::fs::remove_dir_all(&group_dir);

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let commit_speedup = every_record.per_update_us / group_commit.per_update_us;
    let notes = vec![
        format!(
            "{n} ground inserts over Orders/InStock; every-record issues one \
             fsync per acknowledged update, group-commit batches {group}."
        ),
        "Latency is fsync-bound: absolute numbers track the host's storage \
         stack, and on throttled CI filesystems the speedup can compress \
         toward 1; the durable invariant (recovery_matches) is \
         host-independent."
            .to_owned(),
    ];
    WalBench {
        version: 1,
        experiment: "wal".to_owned(),
        workload: format!("{n} ground INSERTs journaled to fsync-backed DirStorage"),
        updates: n as u64,
        group_size: group as u64,
        host_parallelism,
        recovery_matches,
        recovery_us,
        commit_speedup,
        every_record,
        group_commit,
        notes,
    }
}

/// Shape-validates `BENCH_wal.json` text by re-parsing it into
/// [`WalBench`] and checking the cross-field invariants. Returns the
/// parsed document on success; `make bench-smoke` fails on `Err`.
pub fn validate_wal_bench(text: &str) -> Result<WalBench, String> {
    let b: WalBench =
        serde_json::from_str(text).map_err(|e| format!("BENCH_wal.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "wal" {
        return Err(format!(
            "experiment is {:?}, expected \"wal\"",
            b.experiment
        ));
    }
    if b.updates == 0 {
        return Err("updates is 0 — nothing was measured".to_owned());
    }
    if b.group_size < 2 {
        return Err(format!(
            "group_size is {} — group commit needs a batch of at least 2",
            b.group_size
        ));
    }
    if !b.recovery_matches {
        return Err("recovered world set differs from the live run".to_owned());
    }
    for (label, run) in [
        ("every-record", &b.every_record),
        ("group-commit", &b.group_commit),
    ] {
        if run.policy != label {
            return Err(format!("run labeled {:?}, expected {label:?}", run.policy));
        }
        if !(run.per_update_us.is_finite() && run.per_update_us > 0.0) {
            return Err(format!("{label} per_update_us is not positive finite"));
        }
        if run.records < b.updates {
            return Err(format!(
                "{label} journaled {} records for {} updates",
                run.records, b.updates
            ));
        }
        if run.syncs == 0 {
            return Err(format!("{label} issued no fsyncs"));
        }
        if run.bytes_appended == 0 {
            return Err(format!("{label} appended no bytes"));
        }
    }
    // EveryRecord fsyncs once per record; group commit must do strictly
    // fewer for the same script (it still syncs at batch edges + trailer).
    if b.group_commit.syncs >= b.every_record.syncs {
        return Err(format!(
            "group commit issued {} fsyncs vs every-record's {} — batching is not batching",
            b.group_commit.syncs, b.every_record.syncs
        ));
    }
    if !(b.commit_speedup.is_finite() && b.commit_speedup > 0.0) {
        return Err("commit_speedup is not a positive finite number".to_owned());
    }
    if !(b.recovery_us.is_finite() && b.recovery_us > 0.0) {
        return Err("recovery_us is not a positive finite number".to_owned());
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".to_owned());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn wal_table(b: &WalBench) -> Table {
    let mut t = Table::new(
        "WAL",
        "durable commit latency: fsync-per-update vs group commit (DirStorage)",
        &[
            "policy",
            "per-update µs",
            "total µs",
            "records",
            "fsyncs",
            "bytes",
        ],
    );
    for r in [&b.every_record, &b.group_commit] {
        t.row(vec![
            r.policy.clone(),
            format!("{:.1}", r.per_update_us),
            format!("{:.1}", r.total_us),
            r.records.to_string(),
            r.syncs.to_string(),
            r.bytes_appended.to_string(),
        ]);
    }
    t.note(format!(
        "{} updates, group size {}; commit speedup ×{:.2}",
        b.updates, b.group_size, b.commit_speedup
    ));
    t.note(format!(
        "cold recovery replayed the log in {:.1} µs; worlds match: {}; host parallelism {}",
        b.recovery_us, b.recovery_matches, b.host_parallelism
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_wal_bench(12, 4);
        assert_eq!(b.updates, 12);
        assert!(b.recovery_matches);
        assert!(b.every_record.syncs > b.group_commit.syncs);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_wal_bench(&text).expect("validates");
        assert_eq!(back.updates, 12);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_wal_bench(8, 4);
        let mut bad = b.clone();
        bad.recovery_matches = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_wal_bench(&text).unwrap_err().contains("differs"));
        let mut bad = b.clone();
        bad.group_commit.syncs = bad.every_record.syncs + 1;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_wal_bench(&text)
            .unwrap_err()
            .contains("not batching"));
        assert!(validate_wal_bench("{").is_err());
    }

    #[test]
    fn table_renders_both_rows() {
        let b = run_wal_bench(8, 4);
        let rendered = wal_table(&b).render();
        assert!(rendered.contains("every-record"));
        assert!(rendered.contains("group-commit"));
    }
}
