//! Experiment implementations for EXPERIMENTS.md.
//!
//! The paper (PODS 1986) has no tables or figures; its evaluation artifacts
//! are theorems and the §3.6 cost analysis. Each experiment E1–E8 turns one
//! of those claims into a measurable run. The functions here are shared by
//! the `harness` binary (which prints the rows recorded in EXPERIMENTS.md)
//! and the Criterion benches (which time the same hot paths rigorously).

pub mod compaction_bench;
pub mod conflicts_bench;
pub mod connections_bench;
pub mod experiments;
pub mod query_bench;
pub mod replication_bench;
pub mod report;
pub mod server_bench;
pub mod txn_bench;
pub mod wal_bench;
pub mod worlds_bench;

pub use compaction_bench::{
    compaction_table, run_compaction_bench, validate_compaction_bench, CompactionBench,
};
pub use conflicts_bench::{
    conflicts_table, run_conflicts_bench, validate_conflicts_bench, ConflictsBench,
};
pub use connections_bench::{
    connections_table, run_connections_bench, validate_connections_bench, ConnectionsBench,
};
pub use query_bench::{query_table, run_query_bench, validate_query_bench, QueryBench};
pub use replication_bench::{
    replication_table, run_replication_bench, validate_replication_bench, ReplicationBench,
};
pub use report::Table;
pub use server_bench::{run_server_bench, server_table, validate_server_bench, ServerBench};
pub use txn_bench::{run_txn_bench, txn_table, validate_txn_bench, TxnBench};
pub use wal_bench::{run_wal_bench, validate_wal_bench, wal_table, WalBench};
pub use worlds_bench::{run_worlds_bench, validate_worlds_bench, worlds_table, WorldsBench};
