//! The `connections` experiment behind `BENCH_connections.json`: how
//! many concurrent sockets one `winslett-serve` instance can hold, and
//! what a read costs once they are all held — epoll reactor vs the
//! `--threaded` thread-per-connection baseline.
//!
//! For each tier size `n` and each serve mode, the bench boots one
//! in-process server (MemStorage, compaction off), dials `n`
//! connections from a single pacing thread — a connection counts as
//! *held* only once its Ping round-trips — then sends entailment-check
//! probes through a stride sample of the held sockets and records
//! p50/p99 per-check latency. The dial loop is identical for both
//! modes, so `accept_per_sec` compares admission cost (epoll: one
//! nonblocking accept plus an epoll registration; threaded: a full OS
//! thread spawn per socket).
//!
//! File-descriptor budget: `n` held sockets cost `2n` descriptors in
//! this one process (client end + server end). The bench asks the
//! kernel to raise `RLIMIT_NOFILE` first and, where the limit still
//! binds, honestly shrinks the tier and says so in `notes` rather than
//! reporting a tier it could not actually hold.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use winslett_core::{DbOptions, MemStorage, SyncPolicy, WalOptions};
use winslett_serve::{Client, Server, ServerOptions};

/// The entailment probe every sampled connection asks.
const PROBE: &str = "R(a)";

/// Descriptors reserved for everything that is not a held socket pair
/// (listener, WAL, epoll/eventfd, stdio, the allocator's spares).
const FD_SLACK: u64 = 512;

/// Raising and reading `RLIMIT_NOFILE` without a libc crate — the
/// kernel interface is three words, and `std` already links libc.
mod fdlimit {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// Tries to raise the soft (and, with privilege, hard) fd limit to
    /// `want`; returns the soft limit actually in force afterwards.
    pub fn raise(want: u64) -> u64 {
        unsafe {
            let mut cur = RLimit { cur: 0, max: 0 };
            if getrlimit(RLIMIT_NOFILE, &mut cur) != 0 {
                return 1024; // conservative guess; never happens on Linux
            }
            if cur.cur >= want {
                return cur.cur;
            }
            // First try raising both limits (works as root), then fall
            // back to soft-up-to-hard (works everywhere).
            let both = RLimit {
                cur: want,
                max: want.max(cur.max),
            };
            if setrlimit(RLIMIT_NOFILE, &both) == 0 {
                return want;
            }
            let soft = RLimit {
                cur: want.min(cur.max),
                max: cur.max,
            };
            if setrlimit(RLIMIT_NOFILE, &soft) == 0 {
                return soft.cur;
            }
            cur.cur
        }
    }
}

/// Closes a client socket with an RST instead of FIN so tearing down a
/// 10 000-socket tier does not strand 10 000 TIME_WAIT ports and starve
/// the next tier of ephemeral ports. (`TcpStream::set_linger` is not
/// stable; the setsockopt is four words.)
mod hardclose {
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;

    #[repr(C)]
    struct Linger {
        onoff: i32,
        linger: i32,
    }

    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;

    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const Linger, len: u32) -> i32;
    }

    pub fn mark(stream: &TcpStream) {
        let linger = Linger {
            onoff: 1,
            linger: 0,
        };
        unsafe {
            // Best-effort: a failure just means FIN + TIME_WAIT.
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_LINGER,
                &linger,
                std::mem::size_of::<Linger>() as u32,
            );
        }
    }
}

/// One (mode, tier) cell of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConnTier {
    /// `"epoll"` or `"threaded"`.
    pub mode: String,
    /// Connections this tier tried to hold (already fd-capped).
    pub target: u64,
    /// Connections actually held — Ping round-tripped and the socket
    /// stayed open for the probe phase.
    pub held: u64,
    /// Wall-clock to establish all held connections, milliseconds.
    pub establish_ms: f64,
    /// Held connections per second of establish time — the admission
    /// rate under a single pacing dialer.
    pub accept_per_sec: f64,
    /// Entailment checks probed through the held sockets.
    pub probes: u64,
    /// Median per-check latency with all sockets held, µs.
    pub read_p50_us: f64,
    /// 99th percentile, µs.
    pub read_p99_us: f64,
}

/// The complete `BENCH_connections.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConnectionsBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"connections"`.
    pub experiment: String,
    /// Soft `RLIMIT_NOFILE` in force during the run (after the bench's
    /// raise attempt); each held connection costs two descriptors.
    pub fd_limit: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: u64,
    /// The sweep: for each tier size, one epoll row and one threaded
    /// row, in increasing tier order.
    pub tiers: Vec<ConnTier>,
    /// Free-form observations, including any fd-forced tier shrinks.
    pub notes: Vec<String>,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn boot(
    target: usize,
    threaded: bool,
) -> (
    std::thread::JoinHandle<Result<MemStorage, winslett_core::DbError>>,
    std::net::SocketAddr,
) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: target + 64,
            idle_timeout: Duration::from_secs(120),
            compaction: None,
            threaded,
            ..ServerOptions::default()
        },
    )
    .expect("bench server bind");
    let addr = server.local_addr();
    (std::thread::spawn(move || server.run()), addr)
}

/// Runs one (mode, tier) cell against a fresh server.
fn run_tier(target: usize, threaded: bool, probe_budget: usize) -> (ConnTier, Vec<String>) {
    let mode = if threaded { "threaded" } else { "epoll" };
    let mut notes = Vec::new();
    let (running, addr) = boot(target, threaded);

    let mut setup = Client::connect(addr).expect("setup connect");
    setup.declare_relation("R", 1).expect("declare");
    setup.load_fact("R", &["a"]).expect("seed fact");

    // Dial until the tier is full or the host refuses; a connection is
    // held only once its Ping answer arrives.
    let started = Instant::now();
    let mut held: Vec<Client> = Vec::with_capacity(target);
    while held.len() < target {
        let mut client = match Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                notes.push(format!(
                    "{mode}/{target}: dial failed after {} held: {e}",
                    held.len()
                ));
                break;
            }
        };
        if let Err(e) = client.ping() {
            notes.push(format!(
                "{mode}/{target}: ping failed after {} held: {e}",
                held.len()
            ));
            break;
        }
        held.push(client);
    }
    let establish = started.elapsed();

    // Probe a stride sample of the held sockets while all of them stay
    // open — the latency numbers include whatever bookkeeping cost the
    // serve mode pays for the other `held - 1` connections.
    let mut latencies_us = Vec::new();
    if !held.is_empty() {
        let stride = (held.len() / probe_budget.max(1)).max(1);
        let mut i = 0;
        while latencies_us.len() < probe_budget && !held.is_empty() {
            let idx = (i * stride) % held.len();
            let start = Instant::now();
            match held[idx].check(PROBE) {
                Ok(_) => latencies_us.push(start.elapsed().as_secs_f64() * 1e6),
                Err(e) => {
                    notes.push(format!("{mode}/{target}: probe failed: {e}"));
                    break;
                }
            }
            i += 1;
        }
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let tier = ConnTier {
        mode: mode.to_owned(),
        target: target as u64,
        held: held.len() as u64,
        establish_ms: establish.as_secs_f64() * 1e3,
        accept_per_sec: held.len() as f64 / establish.as_secs_f64().max(1e-9),
        probes: latencies_us.len() as u64,
        read_p50_us: percentile(&latencies_us, 0.50),
        read_p99_us: percentile(&latencies_us, 0.99),
    };

    // RST-close the herd (setup included — a lingering connection would
    // stall the drain until the idle reaper gets it) so back-to-back
    // tiers do not fight over TIME_WAIT ephemeral ports, then shut down
    // through a fresh client.
    for c in &held {
        hardclose::mark(c.stream());
    }
    drop(held);
    hardclose::mark(setup.stream());
    drop(setup);
    match Client::connect(addr) {
        Ok(mut c) => {
            if let Err(e) = c.shutdown() {
                notes.push(format!("{mode}/{target}: shutdown failed: {e}"));
            }
        }
        Err(e) => notes.push(format!("{mode}/{target}: shutdown connect failed: {e}")),
    }
    if running.join().is_err() {
        notes.push(format!("{mode}/{target}: server thread panicked"));
    }
    (tier, notes)
}

/// Runs the full sweep and assembles the `BENCH_connections.json`
/// document. `targets` are tier sizes in increasing order; each runs
/// once per serve mode against its own fresh server.
pub fn run_connections_bench(targets: &[usize], probe_budget: usize) -> ConnectionsBench {
    let fd_limit = fdlimit::raise(65_536);
    let mut notes = vec![
        "A connection is held only after its Ping round-trips; probes are \
         entailment checks asked through a stride sample of the held sockets."
            .to_owned(),
        "The threaded baseline spends one OS thread (and its stack) per held \
         socket; the reactor holds every tier with a constant thread count \
         (reactor + writer + solver pool), so compare accept_per_sec and \
         footprint as well as latency."
            .to_owned(),
    ];
    let fd_room = (fd_limit.saturating_sub(FD_SLACK) / 2) as usize;

    let mut tiers = Vec::new();
    for &want in targets {
        let target = want.min(fd_room);
        if target < want {
            notes.push(format!(
                "tier {want} shrunk to {target}: RLIMIT_NOFILE {fd_limit} leaves room \
                 for {fd_room} socket pairs"
            ));
        }
        if target == 0 {
            continue;
        }
        for threaded in [false, true] {
            let (tier, mut tier_notes) = run_tier(target, threaded, probe_budget);
            tiers.push(tier);
            notes.append(&mut tier_notes);
        }
    }

    ConnectionsBench {
        version: 1,
        experiment: "connections".to_owned(),
        fd_limit,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        tiers,
        notes,
    }
}

/// Shape-validates `BENCH_connections.json` text by re-parsing it into
/// [`ConnectionsBench`] and checking the cross-field invariants.
/// `make connections-smoke` fails on `Err`.
pub fn validate_connections_bench(text: &str) -> Result<ConnectionsBench, String> {
    let b: ConnectionsBench = serde_json::from_str(text)
        .map_err(|e| format!("BENCH_connections.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "connections" {
        return Err(format!(
            "experiment is {:?}, expected \"connections\"",
            b.experiment
        ));
    }
    if b.tiers.is_empty() {
        return Err("no tiers recorded".to_owned());
    }
    if b.fd_limit == 0 || b.host_parallelism == 0 {
        return Err("fd_limit / host_parallelism must be positive".to_owned());
    }
    let mut targets: Vec<u64> = b.tiers.iter().map(|t| t.target).collect();
    targets.dedup();
    let mut prev = 0;
    for &t in &targets {
        if t <= prev {
            return Err("tier targets must strictly increase".to_owned());
        }
        prev = t;
    }
    for &t in &targets {
        for mode in ["epoll", "threaded"] {
            if !b.tiers.iter().any(|x| x.target == t && x.mode == mode) {
                return Err(format!("tier {t} is missing its {mode} row"));
            }
        }
    }
    for tier in &b.tiers {
        if tier.mode != "epoll" && tier.mode != "threaded" {
            return Err(format!("unknown mode {:?}", tier.mode));
        }
        // The epoll reactor is the product path: it must actually hold
        // every socket the tier asked for. The threaded baseline may
        // fall short (that shortfall is a result, recorded honestly).
        if tier.mode == "epoll" && tier.held != tier.target {
            return Err(format!(
                "epoll tier {} held only {} sockets",
                tier.target, tier.held
            ));
        }
        if tier.held == 0 {
            return Err(format!("{} tier {} held nothing", tier.mode, tier.target));
        }
        if !(tier.establish_ms.is_finite() && tier.establish_ms > 0.0) {
            return Err(format!(
                "{} tier {} establish_ms is not positive finite",
                tier.mode, tier.target
            ));
        }
        if !(tier.accept_per_sec.is_finite() && tier.accept_per_sec > 0.0) {
            return Err(format!(
                "{} tier {} accept_per_sec is not positive finite",
                tier.mode, tier.target
            ));
        }
        if tier.probes == 0 {
            return Err(format!(
                "{} tier {} recorded no probes",
                tier.mode, tier.target
            ));
        }
        let ordered = tier.read_p50_us > 0.0
            && tier.read_p50_us <= tier.read_p99_us
            && tier.read_p99_us.is_finite();
        if !ordered {
            return Err(format!(
                "{} tier {} read percentiles are not ordered positive finite",
                tier.mode, tier.target
            ));
        }
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn connections_table(b: &ConnectionsBench) -> Table {
    let mut t = Table::new(
        "CONNECTIONS",
        "concurrent-socket capacity and read latency: epoll reactor vs thread-per-connection",
        &[
            "mode",
            "target",
            "held",
            "establish ms",
            "accept/s",
            "probes",
            "read p50 µs",
            "read p99 µs",
        ],
    );
    for tier in &b.tiers {
        t.row(vec![
            tier.mode.clone(),
            tier.target.to_string(),
            tier.held.to_string(),
            format!("{:.1}", tier.establish_ms),
            format!("{:.0}", tier.accept_per_sec),
            tier.probes.to_string(),
            format!("{:.1}", tier.read_p50_us),
            format!("{:.1}", tier.read_p99_us),
        ]);
    }
    t.note(format!(
        "RLIMIT_NOFILE {} (each held socket costs two fds in-process); host parallelism {}",
        b.fd_limit, b.host_parallelism
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_connections_bench(&[4, 8], 24);
        assert_eq!(b.tiers.len(), 4);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_connections_bench(&text).expect("validates");
        assert!(back
            .tiers
            .iter()
            .filter(|t| t.mode == "epoll")
            .all(|t| t.held == t.target));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_connections_bench(&[3], 12);
        let mut bad = b.clone();
        bad.tiers[0].held = bad.tiers[0].target - 1; // epoll row comes first
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_connections_bench(&text)
            .unwrap_err()
            .contains("held only"));
        let mut bad = b.clone();
        bad.tiers.retain(|t| t.mode == "epoll");
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_connections_bench(&text)
            .unwrap_err()
            .contains("missing its threaded row"));
        let mut bad = b.clone();
        bad.tiers[1].read_p99_us = -1.0;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_connections_bench(&text)
            .unwrap_err()
            .contains("percentiles"));
        assert!(validate_connections_bench("{").is_err());
    }

    #[test]
    fn table_renders_both_modes() {
        let b = run_connections_bench(&[2], 8);
        let rendered = connections_table(&b).render();
        assert!(rendered.contains("epoll"));
        assert!(rendered.contains("threaded"));
    }
}
