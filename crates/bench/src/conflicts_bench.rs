//! The `conflicts` experiment behind `BENCH_conflicts.json` (E13):
//! does the server's conflict-aware write batcher pay off, and does it
//! preserve semantics?
//!
//! Two identical `winslett-serve` instances run the same workload — `w`
//! writer connections committing toggling updates over *disjoint* atom
//! pools (so the statements are pairwise independent by footprint) while
//! reader connections run pin → check → unpin loops — one instance with
//! [`winslett_serve::ServerOptions::batch_writes`] on, one with it off.
//! The batched leader coalesces queued independent writes into group
//! commits: one sync and one snapshot publication per batch instead of
//! one per write.
//!
//! After the timed window a deterministic reconciliation phase drives
//! both databases to the same intended final state, and the bench then
//! checks **verdict identity** twice per side: the server's final pinned
//! snapshot must agree with direct library calls on the reopened
//! post-shutdown storage (recovery *is* the §4 replay of the journaled
//! update dumps), and the two sides must agree with each other. Batching
//! that changed any verdict would fail the shape gate in
//! `make bench-smoke`.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use winslett_core::{DbOptions, DurableDatabase, MemStorage, SyncPolicy, WalOptions};
use winslett_serve::{Client, Server, ServerOptions};

/// Reader connections per side: enough to keep snapshot reads live
/// without drowning the writers on small CI hosts.
const READERS: usize = 2;

/// Entailment checks per pinned snapshot.
const CHECKS_PER_PIN: usize = 8;

/// Pause between a reader's pin cycles. The readers are a *fixed
/// background load*, not a competitor: left flat-out on a small host
/// they absorb every cycle the write path frees up (batching makes
/// follow-the-latest reads cheaper by publishing fewer generations), and
/// the writer column would measure reader appetite instead of write
/// cost.
const READER_PACE: Duration = Duration::from_millis(5);

/// Atoms in each writer's private pool (writer `w` touches only
/// `Pool(w, 0..POOL)` — disjoint footprints across writers).
const POOL: usize = 4;

/// Inert facts seeded up front to give the theory realistic bulk.
/// Snapshot publication deep-clones the theory, so its cost scales with
/// theory size — this is exactly the per-write cost that coalescing
/// amortizes, while the footprint analysis a batch adds stays O(one
/// statement). A near-empty theory would understate the payoff.
const FILLER: usize = 256;

/// One side of the comparison (batching on or off).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SideResult {
    /// Whether `batch_writes` was enabled.
    pub batched: bool,
    /// Updates acknowledged across all writers in the window.
    pub writer_updates: u64,
    /// Aggregate acknowledged writes per second.
    pub writes_per_sec: f64,
    /// Per-update ack latency percentiles, µs.
    pub write_p50_us: f64,
    /// 95th percentile, µs.
    pub write_p95_us: f64,
    /// Entailment checks answered across all readers in the window.
    pub total_reads: u64,
    /// Aggregate reads per second.
    pub reads_per_sec: f64,
    /// Snapshots the writer published over the whole run (stats counter;
    /// includes seeding and reconciliation).
    pub snapshots_published: u64,
    /// Batches the write leader flushed (0 when batching is off).
    pub write_batches: u64,
    /// Writes that shared a batch with at least one other write.
    pub coalesced_writes: u64,
    /// Whether the server's final pinned verdicts equal direct library
    /// calls on the reopened storage (WAL recovery = §4 replay).
    pub replay_matches: bool,
}

/// The complete `BENCH_conflicts.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConflictsBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"conflicts"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Measurement window per side, milliseconds.
    pub window_ms: u64,
    /// Concurrent writer connections per side.
    pub writers: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: u64,
    /// The classic one-publication-per-write path.
    pub unbatched: SideResult,
    /// The conflict-aware group-commit path.
    pub batched: SideResult,
    /// Whether the two sides' post-reconciliation probe verdicts are
    /// identical. Must be `true`: batching may only change *when*
    /// snapshots appear, never what is true in them.
    pub verdicts_match: bool,
    /// `batched.writes_per_sec / unbatched.writes_per_sec`.
    pub speedup: f64,
    /// Free-form observations.
    pub notes: Vec<String>,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// The probe checklist: one certain atom per writer pool after
/// reconciliation, plus the seeded branch (kept uncertain so checks do
/// real SAT work).
fn probes(writers: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..writers).map(|w| format!("Pool({w},0)")).collect();
    v.push("Branch(1)".to_owned());
    v.push("Branch(2)".to_owned());
    v
}

/// Writer `w`'s bounded update script: toggles membership over its
/// private pool, so concurrent writers' statements have disjoint
/// footprints and the batcher can legally coalesce them.
fn writer_statement(w: usize, i: usize) -> String {
    let k = i % POOL;
    if (i / POOL).is_multiple_of(2) {
        format!("INSERT Pool({w},{k}) WHERE T")
    } else {
        format!("DELETE Pool({w},{k}) WHERE T")
    }
}

/// Runs one side: same seed, same workload, batching on or off.
fn run_side(batch: bool, writers: usize, window: Duration) -> (SideResult, Vec<(bool, bool)>) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            batch_writes: batch,
            // This experiment isolates the batching effect; the compactor
            // would add its own publications to the counts under test.
            compaction: None,
            threaded: false,
            ..ServerOptions::default()
        },
    )
    .expect("bench server bind");
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());

    let mut setup = Client::connect(addr).expect("setup connect");
    setup.declare_relation("Pool", 2).expect("declare Pool");
    setup.declare_relation("Branch", 1).expect("declare Branch");
    setup.declare_relation("Filler", 1).expect("declare Filler");
    for i in 0..FILLER {
        setup
            .load_fact("Filler", &[&(1000 + i).to_string()])
            .expect("seed filler fact");
    }
    // Seed every pool atom true so all probe constants exist before the
    // readers start checking them.
    for w in 0..writers {
        for k in 0..POOL {
            setup
                .load_fact("Pool", &[&w.to_string(), &k.to_string()])
                .expect("seed pool fact");
        }
    }
    setup
        .execute("INSERT Branch(1) | Branch(2) WHERE T")
        .expect("seed branch");

    let probe_list = probes(writers);
    let stop = Arc::new(AtomicBool::new(false));
    let mut reader_handles = Vec::new();
    for _ in 0..READERS {
        let stop = Arc::clone(&stop);
        let probe_list = probe_list.clone();
        reader_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connect");
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client.pin().expect("pin");
                for i in 0..CHECKS_PER_PIN {
                    client
                        .check(&probe_list[i % probe_list.len()])
                        .expect("check");
                    reads += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                client.unpin().expect("unpin");
                std::thread::sleep(READER_PACE);
            }
            reads
        }));
    }
    let mut writer_handles = Vec::new();
    for w in 0..writers {
        let stop = Arc::clone(&stop);
        writer_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connect");
            let mut latencies_us = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let start = Instant::now();
                client
                    .execute(&writer_statement(w, i))
                    .expect("bench update");
                latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                i += 1;
            }
            latencies_us
        }));
    }

    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut write_latencies: Vec<f64> = Vec::new();
    for h in writer_handles {
        write_latencies.extend(h.join().expect("writer thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let mut total_reads = 0u64;
    for h in reader_handles {
        total_reads += h.join().expect("reader thread");
    }

    // Reconciliation: the writers stopped at arbitrary toggle phases, so
    // drive every pool atom to a fixed final state. Both sides end at
    // the same intended theory regardless of how far each writer got.
    for w in 0..writers {
        for k in 0..POOL {
            setup
                .execute(&format!("INSERT Pool({w},{k}) WHERE T"))
                .expect("reconcile");
        }
    }

    // Final verdicts over a pinned server snapshot, plus the counters.
    let server_verdicts: Vec<(bool, bool)> = {
        let mut client = Client::connect(addr).expect("verdict connect");
        client.pin().expect("pin final");
        probe_list
            .iter()
            .map(|p| {
                let t = client.check(p).expect("final check");
                (t.possible, t.certain)
            })
            .collect()
    };
    let stats = setup.stats().expect("stats");

    setup.shutdown().expect("shutdown");
    let storage = running.join().expect("server thread").expect("server run");

    // Reopen the flushed storage: recovery replays the journaled §4
    // update dumps. Direct library verdicts are the ground truth.
    let (reopened, _) = DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
        .expect("bench reopen");
    let mut direct = reopened;
    let direct_verdicts: Vec<(bool, bool)> = probe_list
        .iter()
        .map(|p| {
            let possible = direct.db_mut().is_possible(p).expect("direct possible");
            let certain = direct.db_mut().is_certain(p).expect("direct certain");
            (possible, certain)
        })
        .collect();

    write_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let side = SideResult {
        batched: batch,
        writer_updates: write_latencies.len() as u64,
        writes_per_sec: write_latencies.len() as f64 / elapsed,
        write_p50_us: percentile(&write_latencies, 0.50),
        write_p95_us: percentile(&write_latencies, 0.95),
        total_reads,
        reads_per_sec: total_reads as f64 / elapsed,
        snapshots_published: stats.snapshots_published,
        write_batches: stats.write_batches,
        coalesced_writes: stats.coalesced_writes,
        replay_matches: server_verdicts == direct_verdicts,
    };
    (side, server_verdicts)
}

/// Runs both sides and assembles the `BENCH_conflicts.json` document.
pub fn run_conflicts_bench(writers: usize, window_ms: u64) -> ConflictsBench {
    let window = Duration::from_millis(window_ms);
    let (unbatched, verdicts_off) = run_side(false, writers, window);
    let (batched, verdicts_on) = run_side(true, writers, window);
    let verdicts_match = verdicts_off == verdicts_on;
    let speedup = if unbatched.writes_per_sec > 0.0 {
        batched.writes_per_sec / unbatched.writes_per_sec
    } else {
        0.0
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let notes = vec![
        format!(
            "{writers} writers toggle disjoint Pool(w, 0..{POOL}) atoms — pairwise \
             independent by footprint, so the batching leader may coalesce them; \
             {READERS} readers run pin → {CHECKS_PER_PIN} checks → unpin throughout."
        ),
        "A deterministic reconciliation phase drives both sides to the same \
         intended theory before verdicts are compared, so the timed window can \
         stop writers at any phase."
            .to_owned(),
        "replay_matches compares each server's final pinned snapshot against \
         direct library calls on its reopened storage — WAL recovery replays \
         the journaled §4 update dumps."
            .to_owned(),
        "Coalescing requires writes to actually queue up; on single-core hosts \
         or with few writers, write_batches ≈ writer_updates and the two sides \
         converge. The validation threshold is tolerant of that."
            .to_owned(),
    ];
    ConflictsBench {
        version: 1,
        experiment: "conflicts".to_owned(),
        workload: format!(
            "{writers} disjoint-pool writers + {READERS} snapshot readers for \
             {window_ms} ms against winslett-serve (MemStorage, group commit 8), \
             batch_writes off vs on"
        ),
        window_ms,
        writers: writers as u64,
        host_parallelism,
        unbatched,
        batched,
        verdicts_match,
        speedup,
        notes,
    }
}

/// Shape-validates `BENCH_conflicts.json` text by re-parsing it into
/// [`ConflictsBench`] and checking the cross-field invariants. Returns
/// the parsed document on success; `make bench-smoke` fails on `Err`.
pub fn validate_conflicts_bench(text: &str) -> Result<ConflictsBench, String> {
    let b: ConflictsBench = serde_json::from_str(text)
        .map_err(|e| format!("BENCH_conflicts.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "conflicts" {
        return Err(format!(
            "experiment is {:?}, expected \"conflicts\"",
            b.experiment
        ));
    }
    if b.window_ms == 0 {
        return Err("window_ms is 0 — nothing was measured".to_owned());
    }
    if b.writers == 0 {
        return Err("no writers recorded".to_owned());
    }
    for (side, name) in [(&b.unbatched, "unbatched"), (&b.batched, "batched")] {
        if side.batched != (name == "batched") {
            return Err(format!("side {name} has batched = {}", side.batched));
        }
        if side.writer_updates == 0 {
            return Err(format!("{name}: no writes acknowledged"));
        }
        if !(side.writes_per_sec.is_finite() && side.writes_per_sec > 0.0) {
            return Err(format!("{name}: writes_per_sec is not positive finite"));
        }
        if !(side.write_p50_us > 0.0 && side.write_p95_us >= side.write_p50_us) {
            return Err(format!(
                "{name}: write percentiles are not ordered positive"
            ));
        }
        if side.total_reads == 0 {
            return Err(format!("{name}: readers were starved"));
        }
        if side.snapshots_published == 0 {
            return Err(format!("{name}: no snapshots published"));
        }
        if !side.replay_matches {
            return Err(format!(
                "{name}: server snapshot verdicts differ from the reopened \
                 storage — replay identity broken"
            ));
        }
    }
    if b.unbatched.write_batches != 0 {
        return Err("unbatched side reports write batches".to_owned());
    }
    if b.batched.write_batches == 0 {
        return Err("batched side flushed no batches".to_owned());
    }
    // A batch publishes at most one snapshot: coalescing can only reduce
    // publications per acknowledged write, never add them.
    if b.batched.snapshots_published > b.batched.write_batches + 1 {
        return Err(format!(
            "batched side published {} snapshots from {} batches",
            b.batched.snapshots_published, b.batched.write_batches
        ));
    }
    if !b.verdicts_match {
        return Err("batched and unbatched final verdicts differ".to_owned());
    }
    // The payoff claim, with slack for scheduler noise on small CI hosts:
    // batching must not *cost* throughput.
    if b.batched.writes_per_sec < 0.85 * b.unbatched.writes_per_sec {
        return Err(format!(
            "batched writer throughput regressed: {:.0}/s vs {:.0}/s unbatched",
            b.batched.writes_per_sec, b.unbatched.writes_per_sec
        ));
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".to_owned());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn conflicts_table(b: &ConflictsBench) -> Table {
    let mut t = Table::new(
        "CONFLICTS",
        "conflict-aware write batching: group-commit of pairwise-independent writes, on vs off",
        &[
            "mode",
            "writes/s",
            "write p50 µs",
            "write p95 µs",
            "reads/s",
            "snapshots",
            "batches",
            "coalesced",
        ],
    );
    for side in [&b.unbatched, &b.batched] {
        t.row(vec![
            if side.batched { "batched" } else { "unbatched" }.to_owned(),
            format!("{:.0}", side.writes_per_sec),
            format!("{:.1}", side.write_p50_us),
            format!("{:.1}", side.write_p95_us),
            format!("{:.0}", side.reads_per_sec),
            side.snapshots_published.to_string(),
            side.write_batches.to_string(),
            side.coalesced_writes.to_string(),
        ]);
    }
    t.note(format!(
        "{} writers × {} ms window; speedup {:.2}×; verdicts identical across \
         sides: {}; replay identity: {} / {}",
        b.writers,
        b.window_ms,
        b.speedup,
        b.verdicts_match,
        b.unbatched.replay_matches,
        b.batched.replay_matches
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_conflicts_bench(3, 80);
        assert!(b.verdicts_match);
        assert!(b.unbatched.replay_matches && b.batched.replay_matches);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_conflicts_bench(&text).expect("validates");
        assert_eq!(back.writers, 3);
        assert!(back.batched.write_batches > 0);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_conflicts_bench(3, 60);
        let mut bad = b.clone();
        bad.verdicts_match = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_conflicts_bench(&text)
            .unwrap_err()
            .contains("differ"));
        let mut bad = b.clone();
        bad.batched.replay_matches = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_conflicts_bench(&text)
            .unwrap_err()
            .contains("replay identity"));
        let mut bad = b.clone();
        bad.batched.writes_per_sec = 0.1 * bad.unbatched.writes_per_sec;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_conflicts_bench(&text)
            .unwrap_err()
            .contains("regressed"));
        assert!(validate_conflicts_bench("{").is_err());
    }
}
