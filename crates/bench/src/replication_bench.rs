//! The `replication` experiment behind `BENCH_replication.json`: read
//! throughput scaling across WAL-shipping replicas, verdict identity at
//! every sampled LSN, and an exhaustive kill-byte catch-up sweep.
//!
//! Three claims, three sections:
//!
//! 1. **Scaling** — for each level `r`, the bench boots `r` replicas of
//!    one live primary and runs one reader per replica (pin → checks →
//!    unpin) concurrently with a flat-out writer on the primary, for a
//!    fixed window. Aggregate replica read throughput per level is the
//!    scaling curve; `writer_updates > 0` per level is the witness that
//!    replica reads never touch the primary's writer.
//! 2. **Verdict identity** — readers record the probe verdicts of every
//!    distinct replica state they pin, tagged with its LSN. After the
//!    run, each sampled LSN's verdicts are compared against a direct
//!    library replay of the acknowledged statement prefix through that
//!    LSN — the same serialization witness the linearizability tests
//!    use. One mismatch anywhere fails validation.
//! 3. **Catch-up sweep** — a scripted history is re-run on
//!    [`FailpointStorage`] killing the primary at **every** byte
//!    offset; after each kill the torn storage is recovered and a
//!    follower rebuilt from `catchup_from(0)` must denote exactly the
//!    recovered primary's world set. Spliced logs with an LSN gap at
//!    the checkpoint boundary must be *refused*, not absorbed.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use winslett_core::wal::{SNAPSHOT_FILE, WAL_FILE};
use winslett_core::{
    replay_record, restore_theory, Catchup, DbError, DbOptions, DurableDatabase, FailpointStorage,
    LogicalDatabase, MemStorage, Storage, SyncPolicy, WalOptions,
};
use winslett_serve::{Client, Replica, ReplicaOptions, Server, ServerOptions};

/// Probes every reader asks; also the verdict-identity checklist.
const PROBES: &[&str] = &["Orders(700,32,9)", "Orders(100,32,1)", "InStock(32,1)"];

/// Checks issued per pinned replica snapshot before re-pinning.
const CHECKS_PER_PIN: usize = 16;

/// Writes acknowledged by the seed (declares, facts, branch) — sampled
/// LSNs below this predate the probe vocabulary and are not recorded.
const SEED_WRITES: u64 = 5;

/// Cap on verified verdict samples (evenly spaced over the distinct
/// sampled LSNs), bounding the ground-truth replay work.
const MAX_VERIFIED_SAMPLES: usize = 32;

/// One replica-count level of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaLevel {
    /// Concurrent replicas, one reader connection each.
    pub replicas: u64,
    /// Entailment checks answered across all replica readers.
    pub total_reads: u64,
    /// Aggregate replica reads per second.
    pub reads_per_sec: f64,
    /// Per-check latency percentiles, µs.
    pub read_p50_us: f64,
    /// 95th percentile, µs.
    pub read_p95_us: f64,
    /// 99th percentile, µs.
    pub read_p99_us: f64,
    /// Updates the primary's writer committed during the window — must
    /// be > 0: replica reads never touch the primary's writer lock.
    pub writer_updates: u64,
    /// `LagBehind` refusals readers absorbed while their replica caught
    /// up (informational; retries are the protocol).
    pub lag_refusals: u64,
}

/// One verified verdict sample: a replica state pinned at `lsn` whose
/// probe verdicts were compared against the library replay of the
/// acknowledged prefix through `lsn`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VerdictSample {
    /// The LSN the replica snapshot had applied through.
    pub lsn: u64,
    /// Whether every probe's `(possible, certain)` matched the replay.
    pub matches: bool,
}

/// The kill-byte catch-up sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CatchupSweep {
    /// Kill offsets exercised — every byte of the scripted history.
    pub kill_points: u64,
    /// Whether a follower rebuilt via `catchup_from(0)` matched the
    /// recovered primary's world set at every kill point.
    pub all_consistent: bool,
    /// Spliced logs (LSN gap at the checkpoint boundary) refused with
    /// the typed `LsnGap` error instead of being absorbed.
    pub gap_splices_rejected: u64,
}

/// The complete `BENCH_replication.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicationBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"replication"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Measurement window per replica level, milliseconds.
    pub window_ms: u64,
    /// `std::thread::available_parallelism()` on the measuring host; on
    /// 1 the scaling column is a non-collapse check, not a speedup.
    pub host_parallelism: u64,
    /// The sweep, in increasing replica count.
    pub levels: Vec<ReplicaLevel>,
    /// Verified verdict samples, in increasing LSN.
    pub verdict_samples: Vec<VerdictSample>,
    /// Whether every sampled replica state matched the serial prefix.
    pub verdicts_match: bool,
    /// The kill-byte sweep results.
    pub catchup: CatchupSweep,
    /// Free-form observations.
    pub notes: Vec<String>,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn boot_primary() -> (
    std::thread::JoinHandle<Result<MemStorage, DbError>>,
    std::net::SocketAddr,
) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            ..ServerOptions::default()
        },
    )
    .expect("bench primary bind");
    let addr = server.local_addr();
    (std::thread::spawn(move || server.run()), addr)
}

fn boot_replica(
    primary: std::net::SocketAddr,
) -> (
    winslett_serve::ReplicaHandle,
    std::thread::JoinHandle<()>,
    std::net::SocketAddr,
) {
    let replica = Replica::bind(
        ("127.0.0.1", 0),
        primary,
        DbOptions::default(),
        ReplicaOptions {
            idle_timeout: Duration::from_secs(30),
            reconnect_backoff: Duration::from_millis(10),
            ..ReplicaOptions::default()
        },
    )
    .expect("bench replica bind");
    let addr = replica.local_addr();
    let handle = replica.handle();
    let thread = std::thread::spawn(move || {
        let _ = replica.run();
    });
    (handle, thread, addr)
}

/// Seeds the paper's Orders/InStock schema through the wire (5 writes:
/// LSNs 0..=4).
fn seed(client: &mut Client) {
    client.declare_relation("Orders", 3).expect("declare");
    client.declare_relation("InStock", 2).expect("declare");
    client
        .load_fact("Orders", &["700", "32", "9"])
        .expect("seed fact");
    client
        .load_fact("InStock", &["32", "1"])
        .expect("seed fact");
    client
        .execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
        .expect("seed branch");
}

/// The writer's bounded update script (same toggling pool as the server
/// bench, so the theory stays compact for any window).
fn writer_statement(i: usize) -> String {
    let k = i % 6;
    if (i / 6).is_multiple_of(2) {
        format!("INSERT InStock({k},{k}) WHERE T")
    } else {
        format!("DELETE InStock({k},{k}) WHERE T")
    }
}

/// One raw sampled replica state.
struct RawSample {
    lsn: u64,
    truths: Vec<(bool, bool)>,
}

/// Runs one replica level: `replicas` followers each with one reader,
/// plus a flat-out writer on the primary. Readers append every distinct
/// pinned state to `samples`; the writer appends its acked statements
/// (in LSN order) to `acked`.
fn run_level(
    primary: std::net::SocketAddr,
    replicas: usize,
    window: Duration,
    next_statement: &mut usize,
    acked: &mut Vec<(u64, String)>,
    samples: &Arc<Mutex<Vec<RawSample>>>,
) -> ReplicaLevel {
    let mut fleet = Vec::new();
    for _ in 0..replicas {
        fleet.push(boot_replica(primary));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut reader_handles = Vec::new();
    for (_, _, replica_addr) in &fleet {
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(samples);
        let replica_addr = *replica_addr;
        reader_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(replica_addr).expect("reader connect");
            let mut latencies_us = Vec::new();
            let mut lag_refusals = 0u64;
            let mut last_sampled = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Pin at the seed boundary: every probe constant is
                // interned once the seed writes (LSNs 0..SEED_WRITES)
                // have applied, so checks never hit a younger snapshot's
                // strict-parse refusal.
                let snap = match client.pin_at(SEED_WRITES - 1) {
                    Ok(snap) => snap,
                    Err(winslett_serve::ClientError::Server(e))
                        if e.kind == winslett_serve::ErrorKindWire::LagBehind =>
                    {
                        lag_refusals += 1;
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    Err(e) => panic!("replica pin failed: {e}"),
                };
                let mut truths = Vec::new();
                for (i, probe) in PROBES.iter().cycle().take(CHECKS_PER_PIN).enumerate() {
                    let start = Instant::now();
                    let t = client.check(probe).expect("replica check");
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                    if i < PROBES.len() {
                        truths.push((t.possible, t.certain));
                    }
                }
                client.unpin().expect("unpin");
                // Record each distinct post-seed state once per reader.
                if snap.last_lsn + 1 > SEED_WRITES && snap.last_lsn != last_sampled {
                    last_sampled = snap.last_lsn;
                    let mut guard = samples.lock().expect("samples lock");
                    guard.push(RawSample {
                        lsn: snap.last_lsn,
                        truths,
                    });
                }
            }
            (latencies_us, lag_refusals)
        }));
    }

    let writer_stop = Arc::clone(&stop);
    let writer_start = *next_statement;
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(primary).expect("writer connect");
        let mut acked = Vec::new();
        let mut i = writer_start;
        while !writer_stop.load(Ordering::Relaxed) {
            let statement = writer_statement(i);
            let reply = client.execute(&statement).expect("bench update");
            acked.push((reply.lsn, statement));
            i += 1;
        }
        (acked, i)
    });

    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);

    let mut read_latencies: Vec<f64> = Vec::new();
    let mut lag_refusals = 0u64;
    for h in reader_handles {
        let (lat, lags) = h.join().expect("reader thread");
        read_latencies.extend(lat);
        lag_refusals += lags;
    }
    let (level_acked, next) = writer.join().expect("writer thread");
    let elapsed = started.elapsed().as_secs_f64();
    let writer_updates = level_acked.len() as u64;
    *next_statement = next;
    acked.extend(level_acked);

    for (handle, thread, _) in fleet {
        handle.request_shutdown();
        thread.join().expect("replica thread");
    }

    read_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ReplicaLevel {
        replicas: replicas as u64,
        total_reads: read_latencies.len() as u64,
        reads_per_sec: read_latencies.len() as f64 / elapsed,
        read_p50_us: percentile(&read_latencies, 0.50),
        read_p95_us: percentile(&read_latencies, 0.95),
        read_p99_us: percentile(&read_latencies, 0.99),
        writer_updates,
        lag_refusals,
    }
}

/// Verifies the sampled replica states against an incremental library
/// replay of the acknowledged statements, in LSN order.
fn verify_samples(acked: &[(u64, String)], raw: Vec<RawSample>) -> Vec<VerdictSample> {
    // Distinct sampled LSNs, evenly subsampled down to the cap.
    let mut lsns: Vec<u64> = raw.iter().map(|s| s.lsn).collect();
    lsns.sort_unstable();
    lsns.dedup();
    let step = lsns.len().div_ceil(MAX_VERIFIED_SAMPLES).max(1);
    let chosen: Vec<u64> = lsns.iter().copied().step_by(step).collect();

    // One representative sample per chosen LSN (readers that pinned the
    // same LSN saw the same snapshot; any representative will do — a
    // divergence between them would already be a consistency bug the
    // comparison below catches against the replay).
    let mut ground = LogicalDatabase::new();
    ground.declare_relation("Orders", 3).expect("declare");
    ground.declare_relation("InStock", 2).expect("declare");
    ground
        .load_fact("Orders", &["700", "32", "9"])
        .expect("fact");
    ground.load_fact("InStock", &["32", "1"]).expect("fact");
    ground
        .execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
        .expect("branch");

    let mut verified = Vec::new();
    let mut applied = 0usize;
    for lsn in chosen {
        // Advance the replay through this LSN (acked is in LSN order).
        while applied < acked.len() && acked[applied].0 <= lsn {
            ground.execute(&acked[applied].1).expect("replay");
            applied += 1;
        }
        let Some(sample) = raw.iter().find(|s| s.lsn == lsn) else {
            continue;
        };
        let matches = PROBES.iter().zip(&sample.truths).all(|(probe, &(p, c))| {
            let want_p = ground.is_possible(probe).expect("replay possible");
            let want_c = ground.is_certain(probe).expect("replay certain");
            (p, c) == (want_p, want_c)
        });
        verified.push(VerdictSample { lsn, matches });
    }
    verified
}

// ----- the kill-byte catch-up sweep -----------------------------------------

/// The scripted history the sweep tears at every byte: declares, a
/// branching insert, a mid-script checkpoint (so kills land on both
/// sides of the boundary), then suffix writes.
fn sweep_script(db: &mut DurableDatabase<FailpointStorage>) -> Result<(), DbError> {
    db.declare_relation("R", 1)?;
    db.declare_relation("S", 1)?;
    db.execute("INSERT R(1) WHERE T")?;
    db.execute("INSERT R(2) | R(3) WHERE T")?;
    db.checkpoint()?;
    db.execute("INSERT S(1) WHERE R(1)")?;
    db.execute("DELETE R(1) WHERE T")?;
    db.execute("MODIFY R(2) TO BE R(4) WHERE T")?;
    Ok(())
}

fn world_set(db: &LogicalDatabase) -> std::collections::BTreeSet<Vec<String>> {
    db.world_names().expect("worlds").into_iter().collect()
}

/// Rebuilds a follower database from a primary's catch-up material.
fn follower_from_catchup(catchup: Catchup) -> LogicalDatabase {
    let (mut db, entries) = match catchup {
        Catchup::Suffix(entries) => (LogicalDatabase::new(), entries),
        Catchup::Snapshot(snap, entries) => {
            let theory = restore_theory(&snap.theory).expect("snapshot restores");
            (
                LogicalDatabase::from_theory(theory, DbOptions::default()),
                entries,
            )
        }
    };
    for entry in entries {
        replay_record(&mut db, &entry.record).expect("catch-up record replays");
    }
    db
}

/// Drops the leading `drop` records from a serialized WAL, keeping the
/// header — the splice a buggy archiver could produce.
fn strip_head_records(wal: &[u8], drop: usize) -> Vec<u8> {
    let mut out = wal[..8].to_vec(); // "WWAL" + version
    let mut offset = 8usize;
    for _ in 0..drop {
        let len = u32::from_le_bytes(wal[offset..offset + 4].try_into().expect("len"));
        offset += 8 + len as usize;
    }
    out.extend_from_slice(&wal[offset..]);
    out
}

/// Runs the sweep: every kill byte, plus the splice-rejection cases.
pub fn run_catchup_sweep() -> CatchupSweep {
    // Probe run: how many bytes does the full script write?
    let probe = FailpointStorage::unlimited();
    {
        let (mut db, _) =
            DurableDatabase::open(probe.clone(), DbOptions::default(), WalOptions::default())
                .expect("probe open");
        sweep_script(&mut db).expect("probe script");
        db.close().expect("probe close");
    }
    let total_bytes = probe.bytes_written();

    let mut kill_points = 0u64;
    let mut all_consistent = true;
    for kill in 0..=total_bytes {
        kill_points += 1;
        let fp = FailpointStorage::new(kill);
        // Drive the script until the injected crash (or completion, at
        // kill == total_bytes).
        let script_result =
            DurableDatabase::open(fp.clone(), DbOptions::default(), WalOptions::default()).map(
                |(mut db, _)| {
                    let r = sweep_script(&mut db);
                    if r.is_ok() {
                        let _ = db.close();
                    }
                    r
                },
            );
        let _ = script_result; // errors are the point
                               // Recover the torn storage, then prove a follower catching up
                               // from 0 lands on exactly the recovered primary's worlds.
        let survivor = fp.survivor();
        let (recovered, _report) =
            DurableDatabase::open(survivor, DbOptions::default(), WalOptions::default())
                .expect("recovery tolerates every torn tail");
        let catchup = recovered.catchup_from(0).expect("catch-up after recovery");
        let follower = follower_from_catchup(catchup);
        if world_set(&follower) != world_set(recovered.db()) {
            all_consistent = false;
        }
    }

    // Splice rejection: an LSN gap at the checkpoint boundary must be a
    // typed refusal, in both recovery and the catch-up API.
    let mut gap_splices_rejected = 0u64;
    let full = FailpointStorage::unlimited();
    {
        let (mut db, _) =
            DurableDatabase::open(full.clone(), DbOptions::default(), WalOptions::default())
                .expect("splice open");
        sweep_script(&mut db).expect("splice script");
        db.close().expect("splice close");
    }
    let mut spliced = full.survivor();
    let wal = spliced
        .read(WAL_FILE)
        .expect("wal readable")
        .expect("wal exists");
    let snapshot_present = spliced
        .read(SNAPSHOT_FILE)
        .expect("snapshot readable")
        .is_some();
    assert!(
        snapshot_present,
        "the mid-script checkpoint wrote a snapshot"
    );
    // The mid-script checkpoint truncated the log, so the WAL holds only
    // the suffix (LSNs 4..=6); dropping its first record leaves a gap at
    // the checkpoint boundary the recovery check must refuse.
    spliced
        .replace(WAL_FILE, &strip_head_records(&wal, 1))
        .expect("splice replace");
    match DurableDatabase::open(spliced, DbOptions::default(), WalOptions::default()) {
        Err(DbError::LsnGap { .. }) => gap_splices_rejected += 1,
        other => panic!("spliced log must be a typed LsnGap refusal, got {other:?}"),
    }
    // A future cursor (subscriber claiming records the primary never
    // wrote) is the same typed refusal through the catch-up API.
    let (intact, _) =
        DurableDatabase::open(full.survivor(), DbOptions::default(), WalOptions::default())
            .expect("intact reopen");
    match intact.catchup_from(intact.next_lsn() + 1) {
        Err(DbError::LsnGap { .. }) => gap_splices_rejected += 1,
        other => panic!("future cursor must be a typed LsnGap refusal, got {other:?}"),
    }

    CatchupSweep {
        kill_points,
        all_consistent,
        gap_splices_rejected,
    }
}

/// Runs the full experiment and assembles `BENCH_replication.json`.
pub fn run_replication_bench(replica_levels: &[usize], window_ms: u64) -> ReplicationBench {
    let catchup = run_catchup_sweep();

    let (running, addr) = boot_primary();
    let mut setup = Client::connect(addr).expect("setup connect");
    seed(&mut setup);

    let window = Duration::from_millis(window_ms);
    let samples = Arc::new(Mutex::new(Vec::new()));
    let mut acked: Vec<(u64, String)> = Vec::new();
    let mut next_statement = 0usize;
    let mut levels: Vec<ReplicaLevel> = Vec::new();
    for &r in replica_levels {
        // Checkpoint between levels so each level's fresh replicas
        // bootstrap from the checkpoint-plus-suffix path instead of
        // replaying every prior level's full write history.
        setup.checkpoint().expect("checkpoint between levels");
        levels.push(run_level(
            addr,
            r,
            window,
            &mut next_statement,
            &mut acked,
            &samples,
        ));
    }

    setup.shutdown().expect("shutdown");
    running
        .join()
        .expect("primary thread")
        .expect("primary run");

    acked.sort_by_key(|&(lsn, _)| lsn);
    let raw = Arc::try_unwrap(samples)
        .map(|m| m.into_inner().expect("samples"))
        .unwrap_or_else(|arc| std::mem::take(&mut arc.lock().expect("samples")));
    let verdict_samples = verify_samples(&acked, raw);
    let verdicts_match = !verdict_samples.is_empty() && verdict_samples.iter().all(|s| s.matches);

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let notes = vec![
        format!(
            "Each level boots that many replicas of one primary; one reader per \
             replica loops pin_at → {CHECKS_PER_PIN} checks → unpin while one \
             writer commits flat-out on the primary."
        ),
        "Every sampled replica state is verified against a direct library \
         replay of the acknowledged statement prefix through its LSN — \
         replicas only ever expose serial prefixes."
            .to_owned(),
        "The catch-up sweep kills a FailpointStorage primary at every byte \
         of a scripted history; after recovery a follower rebuilt from \
         catchup_from(0) must match the primary's world set exactly."
            .to_owned(),
        "On host_parallelism 1 the levels time-share one core, so judge \
         scaling by non-collapse of aggregate throughput, not speedup."
            .to_owned(),
    ];
    ReplicationBench {
        version: 1,
        experiment: "replication".to_owned(),
        workload: format!(
            "{} replica levels × {window_ms} ms against one winslett-serve \
             primary (MemStorage, group commit 8); kill-byte catch-up sweep",
            replica_levels.len()
        ),
        window_ms,
        host_parallelism,
        levels,
        verdict_samples,
        verdicts_match,
        catchup,
        notes,
    }
}

/// Shape-validates `BENCH_replication.json` text by re-parsing it into
/// [`ReplicationBench`] and checking the cross-field invariants.
pub fn validate_replication_bench(text: &str) -> Result<ReplicationBench, String> {
    let b: ReplicationBench = serde_json::from_str(text)
        .map_err(|e| format!("BENCH_replication.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "replication" {
        return Err(format!(
            "experiment is {:?}, expected \"replication\"",
            b.experiment
        ));
    }
    if b.window_ms == 0 {
        return Err("window_ms is 0 — nothing was measured".to_owned());
    }
    if b.levels.is_empty() {
        return Err("no replica levels recorded".to_owned());
    }
    let mut prev = 0;
    for level in &b.levels {
        if level.replicas <= prev {
            return Err("replica levels must strictly increase".to_owned());
        }
        prev = level.replicas;
        if level.total_reads == 0 {
            return Err(format!("level {} served no reads", level.replicas));
        }
        if !(level.reads_per_sec.is_finite() && level.reads_per_sec > 0.0) {
            return Err(format!(
                "level {} reads_per_sec is not positive finite",
                level.replicas
            ));
        }
        let ordered = level.read_p50_us <= level.read_p95_us
            && level.read_p95_us <= level.read_p99_us
            && level.read_p50_us > 0.0
            && level.read_p99_us.is_finite();
        if !ordered {
            return Err(format!(
                "level {} read percentiles are not ordered positive finite",
                level.replicas
            ));
        }
        if level.writer_updates == 0 {
            return Err(format!(
                "level {} starved the primary's writer — replica reads must \
                 never touch the writer lock",
                level.replicas
            ));
        }
    }
    let first = &b.levels[0];
    let last = &b.levels[b.levels.len() - 1];
    if last.reads_per_sec < 0.3 * first.reads_per_sec {
        return Err(format!(
            "aggregate replica read throughput collapsed: {:.0}/s at {} replicas \
             vs {:.0}/s at {}",
            last.reads_per_sec, last.replicas, first.reads_per_sec, first.replicas
        ));
    }
    if b.verdict_samples.is_empty() {
        return Err("no verdict samples recorded — nothing proved identity".to_owned());
    }
    if let Some(bad) = b.verdict_samples.iter().find(|s| !s.matches) {
        return Err(format!(
            "replica verdicts diverged from the serial prefix at lsn {}",
            bad.lsn
        ));
    }
    if !b.verdicts_match {
        return Err("verdicts_match is false".to_owned());
    }
    if b.catchup.kill_points == 0 {
        return Err("catch-up sweep exercised no kill points".to_owned());
    }
    if !b.catchup.all_consistent {
        return Err("a follower diverged from the recovered primary after a kill".to_owned());
    }
    if b.catchup.gap_splices_rejected < 2 {
        return Err(format!(
            "expected both splice-rejection cases, saw {}",
            b.catchup.gap_splices_rejected
        ));
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".to_owned());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn replication_table(b: &ReplicationBench) -> Table {
    let mut t = Table::new(
        "REPLICATION",
        "WAL-shipping replicas: aggregate read throughput vs replica count under a live writer",
        &[
            "replicas",
            "reads/s",
            "read p50 µs",
            "read p95 µs",
            "read p99 µs",
            "writer upd",
            "lag refusals",
        ],
    );
    for level in &b.levels {
        t.row(vec![
            level.replicas.to_string(),
            format!("{:.0}", level.reads_per_sec),
            format!("{:.1}", level.read_p50_us),
            format!("{:.1}", level.read_p95_us),
            format!("{:.1}", level.read_p99_us),
            level.writer_updates.to_string(),
            level.lag_refusals.to_string(),
        ]);
    }
    t.note(format!(
        "{} ms window per level; {} verdict samples all match the serial \
         prefix: {}; catch-up sweep: {} kill points, all consistent: {}, \
         gap splices rejected: {}",
        b.window_ms,
        b.verdict_samples.len(),
        b.verdicts_match,
        b.catchup.kill_points,
        b.catchup.all_consistent,
        b.catchup.gap_splices_rejected
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catchup_sweep_is_consistent_at_every_kill_byte() {
        let sweep = run_catchup_sweep();
        assert!(sweep.kill_points > 100, "the script writes real bytes");
        assert!(sweep.all_consistent);
        assert_eq!(sweep.gap_splices_rejected, 2);
    }

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_replication_bench(&[1, 2], 150);
        assert!(b.verdicts_match, "sampled verdicts match the replay");
        assert_eq!(b.levels.len(), 2);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_replication_bench(&text).expect("validates");
        assert_eq!(back.levels[0].replicas, 1);
        assert!(back.levels.iter().all(|l| l.writer_updates > 0));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_replication_bench(&[1], 100);
        let mut bad = b.clone();
        bad.verdict_samples[0].matches = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_replication_bench(&text)
            .unwrap_err()
            .contains("diverged"));
        let mut bad = b.clone();
        bad.catchup.all_consistent = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_replication_bench(&text)
            .unwrap_err()
            .contains("follower diverged"));
        let mut bad = b.clone();
        bad.levels[0].writer_updates = 0;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_replication_bench(&text)
            .unwrap_err()
            .contains("starved"));
        assert!(validate_replication_bench("{").is_err());
    }
}
