//! The eight experiments of EXPERIMENTS.md, one function per claim.

use crate::report::Table;
use std::time::{Duration, Instant};
use winslett_core::{ReplayDatabase, Workload};
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::{equivalent_brute, equivalent_updates, Update};
use winslett_logic::{AtomId, Formula, ModelLimit, Wff};
use winslett_theory::Theory;
use winslett_worlds::{check_commutes, WorldsEngine};

fn fmt_us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// E1 — Theorem 1/5: GUA equals the per-world semantics on randomized
/// workloads, at every simplification level.
pub fn e1(trials: usize) -> Table {
    let mut table = Table::new(
        "E1",
        "commutative diagram: GUA vs possible-worlds baseline",
        &["configuration", "trials", "agreements", "max worlds"],
    );
    for (label, level) in [
        ("no simplify", SimplifyLevel::None),
        ("fast simplify", SimplifyLevel::Fast),
        ("full simplify", SimplifyLevel::Full),
    ] {
        let mut agreements = 0usize;
        let mut ran = 0usize;
        let mut max_worlds = 0usize;
        let mut rng = Rng(0xE1_0001 + level as u64);
        for _ in 0..trials {
            let (theory, ids) = random_theory(&mut rng);
            if !theory.is_consistent() {
                continue;
            }
            ran += 1;
            let before = theory.clone();
            let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(level));
            let mut updates = Vec::new();
            for _ in 0..(1 + rng.below(3)) {
                let u = random_update(&mut rng, &ids);
                updates.push(u.clone());
                engine.apply(&u).expect("update applies");
            }
            let report = check_commutes(&before, &updates, &engine.theory, ModelLimit::default())
                .expect("diagram runs");
            max_worlds = max_worlds.max(report.expected.len());
            if report.commutes {
                agreements += 1;
            }
        }
        table.row(vec![
            label.into(),
            ran.to_string(),
            agreements.to_string(),
            max_worlds.to_string(),
        ]);
        assert_eq!(agreements, ran, "E1 MUST be exact ({label})");
    }
    table.note("expected shape: agreements == trials in every configuration (Theorem 1/5)");
    table
}

/// E2 — Theorems 2–4: the equivalence deciders agree with brute force, and
/// are much cheaper.
pub fn e2(pairs: usize) -> Table {
    let mut table = Table::new(
        "E2",
        "update equivalence: theorem deciders vs per-model brute force",
        &[
            "pairs",
            "agreements",
            "equivalent",
            "decider µs/pair",
            "brute µs/pair",
        ],
    );
    let mut rng = Rng(0xE2_0001);
    let mut agreements = 0usize;
    let mut equivalent = 0usize;
    let mut t_decider = Duration::ZERO;
    let mut t_brute = Duration::ZERO;
    const N: usize = 4;
    for _ in 0..pairs {
        let b1 = random_update_small(&mut rng, N);
        let b2 = random_update_small(&mut rng, N);
        let s = Instant::now();
        let d = equivalent_updates(&b1, &b2, N).expect("small").equivalent;
        t_decider += s.elapsed();
        let s = Instant::now();
        let b = equivalent_brute(&b1, &b2, N).expect("small");
        t_brute += s.elapsed();
        if d == b {
            agreements += 1;
        }
        if b {
            equivalent += 1;
        }
    }
    assert_eq!(agreements, pairs, "E2 MUST be exact");
    table.row(vec![
        pairs.to_string(),
        agreements.to_string(),
        equivalent.to_string(),
        fmt_us(t_decider / pairs as u32),
        fmt_us(t_brute / pairs as u32),
    ]);
    table.note("expected shape: 100% agreement; decider cost independent of the model space");
    table
}

/// E3 — §3.6: GUA runs in O(g · log R). Sweep g and R, report µs/update
/// and the normalized time / (g·log₂R) which should stay ~flat.
pub fn e3(reps: usize) -> Table {
    let mut table = Table::new(
        "E3",
        "GUA cost scaling in g and R (claim: O(g·log R))",
        &["R", "g", "µs/update", "µs/(g·log2 R)"],
    );
    for &r in &[256usize, 1024, 4096, 16384, 65536] {
        for &g in &[1usize, 4, 16, 64] {
            let mut w = Workload::new(0xE3 + r as u64);
            let (mut theory, atoms) = w.orders_theory(r);
            // Pre-generate updates so generation cost is excluded.
            let updates: Vec<Update> = (0..reps)
                .map(|i| w.conjunctive_insert(&mut theory, &atoms, g, i))
                .collect();
            let mut engine =
                GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
            let start = Instant::now();
            for u in &updates {
                engine.apply(u).expect("update applies");
            }
            let per_update = start.elapsed() / reps as u32;
            let norm = per_update.as_secs_f64() * 1e6 / (g as f64 * (r as f64).log2());
            table.row(vec![
                r.to_string(),
                g.to_string(),
                fmt_us(per_update),
                format!("{norm:.3}"),
            ]);
        }
    }
    table.note(
        "expected shape: µs/update ~ linear in g, ~flat in R (indices); last column ~constant-ish",
    );
    table
}

/// E4 — §3.6: the theory grows O(g) per update.
pub fn e4(reps: usize) -> Table {
    let mut table = Table::new(
        "E4",
        "store growth per update (claim: O(g) nodes, independent of R)",
        &["R", "g", "nodes/update", "nodes/(g)"],
    );
    for &r in &[1024usize, 16384] {
        for &g in &[1usize, 2, 4, 8, 16, 32, 64] {
            let mut w = Workload::new(0xE4 + g as u64);
            let (mut theory, atoms) = w.orders_theory(r);
            let updates: Vec<Update> = (0..reps)
                .map(|i| w.conjunctive_insert(&mut theory, &atoms, g, i))
                .collect();
            let mut engine =
                GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
            let before = engine.theory.store.size_nodes();
            for u in &updates {
                engine.apply(u).expect("update applies");
            }
            let grown = engine.theory.store.size_nodes() - before;
            let per_update = grown as f64 / reps as f64;
            table.row(vec![
                r.to_string(),
                g.to_string(),
                format!("{per_update:.1}"),
                format!("{:.2}", per_update / g as f64),
            ]);
        }
    }
    table.note("expected shape: nodes/update linear in g (ratio ~constant), independent of R");
    table
}

/// E5 — §3.6: dependency instantiation is O(g·R) worst case (every tuple
/// conflicts) and O(g·log R) best case (no conflicts).
pub fn e5(reps: usize) -> Table {
    let mut table = Table::new(
        "E5",
        "FD instantiation: engineered worst vs best case",
        &[
            "R",
            "worst µs/upd",
            "best µs/upd",
            "worst/best",
            "worst instances",
        ],
    );
    for &r in &[64usize, 256, 1024, 4096] {
        // Worst case: every existing tuple shares the inserted key.
        let mut w = Workload::new(0xE5);
        let (mut theory, _) = w.fd_theory_worst(r);
        let updates: Vec<Update> = (0..reps)
            .map(|i| w.fd_insert(&mut theory, true, i))
            .collect();
        let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
        let start = Instant::now();
        let mut instances = 0usize;
        for u in &updates {
            instances += engine.apply(u).expect("update applies").dep_instances;
        }
        let worst = start.elapsed() / reps as u32;
        let worst_instances = instances / reps;

        // Best case: fresh keys, no joins.
        let mut w = Workload::new(0xE5);
        let (mut theory, _) = w.fd_theory_best(r);
        let updates: Vec<Update> = (0..reps)
            .map(|i| w.fd_insert(&mut theory, false, i))
            .collect();
        let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(SimplifyLevel::None));
        let start = Instant::now();
        for u in &updates {
            engine.apply(u).expect("update applies");
        }
        let best = start.elapsed() / reps as u32;

        table.row(vec![
            r.to_string(),
            fmt_us(worst),
            fmt_us(best),
            format!("{:.1}", worst.as_secs_f64() / best.as_secs_f64().max(1e-9)),
            worst_instances.to_string(),
        ]);
    }
    table.note("expected shape: worst/best ratio grows ~linearly with R; worst instances ≈ 2R");
    table
}

/// E6 — §4: simplification keeps the theory small and queries fast under
/// update churn; without it the theory grows without bound.
pub fn e6(steps: usize) -> Table {
    let mut table = Table::new(
        "E6",
        "simplification under churn (insert-disjunction + ASSERT cycles)",
        &[
            "level",
            "steps",
            "final nodes",
            "final wffs",
            "update ms",
            "query µs",
        ],
    );
    for (label, level) in [
        ("none", SimplifyLevel::None),
        ("fast", SimplifyLevel::Fast),
        ("full", SimplifyLevel::Full),
    ] {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).expect("fresh schema");
        let mut ids = Vec::new();
        for i in 0..6 {
            let c = t.constant(&format!("c{i}"));
            let id = t.atom(r, &[c]);
            if i == 0 {
                t.assert_atom(id);
            } else {
                t.assert_not_atom(id);
            }
            ids.push(id);
        }
        let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(level));
        let mut rng = Rng(0xE6);
        let start = Instant::now();
        for i in 0..steps {
            let a = ids[rng.below(ids.len())];
            let b = ids[rng.below(ids.len())];
            engine
                .apply(&Update::insert(
                    Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                    Wff::t(),
                ))
                .expect("update applies");
            let keep = ids[(i + 1) % ids.len()];
            engine
                .apply(&Update::assert(Formula::Or(vec![
                    Wff::Atom(keep),
                    Wff::Atom(keep).not(),
                ])))
                .expect("assert applies");
            // Every few steps, pin something down.
            if i % 3 == 0 {
                engine
                    .apply(&Update::assert(Wff::Atom(ids[i % ids.len()])))
                    .expect("assert applies");
            }
        }
        let update_time = start.elapsed();
        let probe = Wff::or2(Wff::Atom(ids[0]), Wff::Atom(ids[1]));
        let start = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            std::hint::black_box(engine.theory.entails(&probe));
        }
        let query_time = start.elapsed() / reps;
        table.row(vec![
            label.into(),
            steps.to_string(),
            engine.theory.store.size_nodes().to_string(),
            engine.theory.store.len().to_string(),
            format!("{:.1}", update_time.as_secs_f64() * 1e3),
            fmt_us(query_time),
        ]);
    }
    table.note(
        "expected shape: nodes grow ~linearly with steps at level none; stay bounded at fast/full",
    );
    table
}

/// E7 — branching updates: GUA stays polynomial while the possible-worlds
/// baseline is exponential in the number of branching updates.
pub fn e7(max_k: usize) -> Table {
    let mut table = Table::new(
        "E7",
        "k branching updates: GUA vs possible-worlds baseline",
        &[
            "k",
            "worlds",
            "GUA µs",
            "baseline µs",
            "GUA query µs",
            "baseline query µs",
        ],
    );
    for k in 1..=max_k {
        let mut w = Workload::new(0xE7);
        let (mut theory, _) = w.orders_theory(4);
        let updates: Vec<Update> = (0..k)
            .map(|i| w.disjunctive_insert(&mut theory, 2, i))
            .collect();
        let before = theory.clone();

        // GUA path (best of 3 to damp one-shot jitter).
        let mut gua_time = Duration::MAX;
        let mut engine = GuaEngine::new(
            before.clone(),
            GuaOptions::simplify_always(SimplifyLevel::Fast),
        );
        for _ in 0..3 {
            let mut candidate = GuaEngine::new(
                before.clone(),
                GuaOptions::simplify_always(SimplifyLevel::Fast),
            );
            let start = Instant::now();
            for u in &updates {
                candidate.apply(u).expect("update applies");
            }
            let elapsed = start.elapsed();
            if elapsed < gua_time {
                gua_time = elapsed;
                engine = candidate;
            }
        }
        let _ = theory;

        // Baseline path.
        let start = Instant::now();
        let mut baseline =
            WorldsEngine::from_theory(&before, ModelLimit::default()).expect("materializes");
        baseline
            .apply_all(&updates, &engine.theory)
            .expect("baseline applies");
        let baseline_time = start.elapsed();

        // A certain-truth probe on both.
        let probe = { updates[0].to_insert().omega };
        let start = Instant::now();
        std::hint::black_box(engine.theory.entails(&probe));
        let gua_query = start.elapsed();
        let start = Instant::now();
        std::hint::black_box(baseline.entails(&probe));
        let baseline_query = start.elapsed();

        table.row(vec![
            k.to_string(),
            baseline.len().to_string(),
            fmt_us(gua_time),
            fmt_us(baseline_time),
            fmt_us(gua_query),
            fmt_us(baseline_query),
        ]);
    }
    table.note(
        "expected shape: worlds ≈ 3^k; baseline time exponential in k; GUA time ~linear in k",
    );
    table
}

/// E8 — the §4 strawman: replay-log recompute vs eager GUA+simplify, as
/// the log grows.
pub fn e8(max_log: usize) -> Table {
    let mut table = Table::new(
        "E8",
        "query cost vs update-log length: replay strawman vs GUA+simplify",
        &[
            "log len",
            "eager query µs",
            "replay query µs",
            "eager nodes",
            "replay nodes",
        ],
    );
    let mut len = 4usize;
    while len <= max_log {
        let mut w = Workload::new(0xE8);
        let (theory, atoms) = w.orders_theory(16);
        let mut eager = GuaEngine::new(
            theory.clone(),
            GuaOptions::simplify_always(SimplifyLevel::Fast),
        );
        let mut replay = ReplayDatabase::new(theory.clone());
        let mut scratch = theory;
        for i in 0..len {
            let u = if i % 4 == 3 {
                w.disjunctive_insert(&mut scratch, 2, i)
            } else {
                w.conjunctive_insert(&mut scratch, &atoms, 4, i)
            };
            // Share the language so atom ids line up in all copies.
            eager.theory.vocab = scratch.vocab.clone();
            eager.theory.atoms = scratch.atoms.clone();
            eager.apply(&u).expect("update applies");
            replay
                .update_synced(u, &scratch)
                .expect("update shares the workload lineage");
        }
        let probe = Wff::Atom(atoms[0]);
        let start = Instant::now();
        std::hint::black_box(eager.theory.entails(&probe));
        let eager_q = start.elapsed();
        let start = Instant::now();
        let materialized = replay.materialize().expect("replay materializes");
        std::hint::black_box(materialized.entails(&probe));
        let replay_q = start.elapsed();
        table.row(vec![
            len.to_string(),
            fmt_us(eager_q),
            fmt_us(replay_q),
            eager.theory.store.size_nodes().to_string(),
            materialized.store.size_nodes().to_string(),
        ]);
        len *= 2;
    }
    table.note(
        "expected shape: replay query cost grows ~linearly with log length; eager stays ~flat",
    );
    table
}

/// E9 — semantics ablation: the PODS-1986 semantics vs the PMA
/// (minimal-change) semantics the paper's §3.4 foreshadows. Measures how
/// the two diverge as disjunctive updates accumulate: world counts and the
/// number of atoms that remain certain.
pub fn e9(max_k: usize) -> Table {
    let mut table = Table::new(
        "E9",
        "semantics ablation: PODS-1986 vs PMA (minimal change)",
        &[
            "k",
            "1986 worlds",
            "PMA worlds",
            "1986 certain atoms",
            "PMA certain atoms",
        ],
    );
    for k in 1..=max_k {
        let mut w = Workload::new(0xE9);
        let (mut theory, base_atoms) = w.orders_theory(4);
        // Updates that partially overlap what is already true: ω = known ∨ new.
        let updates: Vec<Update> = (0..k)
            .map(|i| {
                let known = base_atoms[i % base_atoms.len()];
                let fresh = w.fresh_orders_atom(&mut theory, 7000 + i);
                Update::insert(
                    Formula::Or(vec![Wff::Atom(known), Wff::Atom(fresh)]),
                    Wff::t(),
                )
            })
            .collect();
        let mut std_engine =
            WorldsEngine::from_theory(&theory, ModelLimit::default()).expect("materializes");
        let mut pma_engine = std_engine.clone();
        for u in &updates {
            std_engine.apply(u, &theory).expect("std applies");
            pma_engine.apply_pma(u, &theory).expect("pma applies");
        }
        let certain = |e: &WorldsEngine| {
            (0..theory.num_atoms())
                .filter(|&i| {
                    let wff = Wff::Atom(AtomId(i as u32));
                    e.entails(&wff)
                })
                .count()
        };
        table.row(vec![
            k.to_string(),
            std_engine.len().to_string(),
            pma_engine.len().to_string(),
            certain(&std_engine).to_string(),
            certain(&pma_engine).to_string(),
        ]);
    }
    table.note("expected shape: 1986 worlds grow ~2^k (it forgets the known disjunct); PMA stays at 1 world and keeps everything certain");
    table
}

// ---------------------------------------------------------------------------
// shared randomized generators (xorshift for determinism, no external deps)
// ---------------------------------------------------------------------------

/// Deterministic xorshift RNG for the experiment generators.
pub struct Rng(pub u64);

impl Rng {
    /// Next raw value.
    #[allow(clippy::should_implement_trait)] // not an Iterator
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_wff(rng: &mut Rng, num_atoms: usize, depth: usize) -> Wff {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(8) {
            0 => Wff::t(),
            1 => Wff::f(),
            _ => {
                let a = Wff::Atom(AtomId(rng.below(num_atoms) as u32));
                if rng.below(2) == 0 {
                    a
                } else {
                    a.not()
                }
            }
        };
    }
    match rng.below(4) {
        0 => random_wff(rng, num_atoms, depth - 1).not(),
        1 => Formula::And(vec![
            random_wff(rng, num_atoms, depth - 1),
            random_wff(rng, num_atoms, depth - 1),
        ]),
        2 => Formula::Or(vec![
            random_wff(rng, num_atoms, depth - 1),
            random_wff(rng, num_atoms, depth - 1),
        ]),
        _ => Wff::implies(
            random_wff(rng, num_atoms, depth - 1),
            random_wff(rng, num_atoms, depth - 1),
        ),
    }
}

fn random_update_small(rng: &mut Rng, num_atoms: usize) -> Update {
    match rng.below(4) {
        0 => Update::insert(random_wff(rng, num_atoms, 2), random_wff(rng, num_atoms, 2)),
        1 => Update::delete(
            AtomId(rng.below(num_atoms) as u32),
            random_wff(rng, num_atoms, 1),
        ),
        2 => Update::modify(
            AtomId(rng.below(num_atoms) as u32),
            random_wff(rng, num_atoms, 1),
            random_wff(rng, num_atoms, 1),
        ),
        _ => Update::assert(random_wff(rng, num_atoms, 2)),
    }
}

fn random_theory(rng: &mut Rng) -> (Theory, Vec<AtomId>) {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).expect("fresh schema");
    let n = 3 + rng.below(3);
    let mut ids = Vec::new();
    for i in 0..n {
        let c = t.constant(&format!("c{i}"));
        ids.push(t.atom(r, &[c]));
    }
    for _ in 0..(1 + rng.below(3)) {
        let w = random_wff(rng, n, 3);
        t.assert_wff(&w);
    }
    for &id in &ids {
        t.register_atom(id);
    }
    (t, ids)
}

fn random_update(rng: &mut Rng, ids: &[AtomId]) -> Update {
    match rng.below(4) {
        0 => Update::insert(random_wff(rng, ids.len(), 2), random_wff(rng, ids.len(), 2)),
        1 => Update::delete(ids[rng.below(ids.len())], random_wff(rng, ids.len(), 1)),
        2 => Update::modify(
            ids[rng.below(ids.len())],
            random_wff(rng, ids.len(), 1),
            random_wff(rng, ids.len(), 1),
        ),
        _ => Update::assert(random_wff(rng, ids.len(), 2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_small_run_is_exact() {
        let t = e1(10);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn e2_small_run_is_exact() {
        let t = e2(20);
        assert_eq!(t.rows[0][1], "20");
    }

    #[test]
    fn e4_growth_is_linear_in_g() {
        let t = e4(10);
        // nodes/g ratio column should be bounded (constant-ish): spread
        // between min and max ratio within a factor of 6.
        let ratios: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .collect();
        let lo = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 6.0, "ratios: {ratios:?}");
    }

    #[test]
    fn e5_worst_case_produces_instances() {
        let t = e5(3);
        let worst_instances: usize = t.rows[0][4].parse().unwrap();
        assert!(worst_instances >= 64);
    }

    #[test]
    fn e6_simplification_bounds_growth() {
        let t = e6(20);
        let nodes: Vec<usize> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // none > fast ≥ full.
        assert!(nodes[0] > nodes[1], "{nodes:?}");
        assert!(nodes[1] >= nodes[2], "{nodes:?}");
    }

    #[test]
    fn e8_replay_store_grows_with_log() {
        let t = e8(16);
        let replay_nodes: Vec<usize> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            replay_nodes.windows(2).all(|w| w[0] < w[1]),
            "{replay_nodes:?}"
        );
    }

    #[test]
    fn e9_pma_stays_single_world() {
        let t = e9(3);
        for row in &t.rows {
            assert_eq!(row[2], "1", "PMA world count");
        }
        let w1986: Vec<usize> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert_eq!(w1986, vec![3, 9, 27]);
    }

    #[test]
    fn e7_world_counts_are_exponential() {
        let t = e7(4);
        let worlds: Vec<usize> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert_eq!(worlds, vec![3, 9, 27, 81]);
    }
}
