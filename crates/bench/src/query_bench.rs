//! The `query` experiment behind `BENCH_query.json`: incremental
//! entailment sessions measured against the legacy fresh-solver-per-check
//! path on a repeated-entailment query workload.
//!
//! The workload is the E11 shape: an Orders(r) theory with residual
//! disjunctive facts (so certain and possible answers genuinely differ), a
//! mixed query set — a full scan, a multi-relation join, and a
//! constant-bound query with safe negation — evaluated `rounds` times over.
//! Both decision strategies run in the same binary over *identical*
//! candidate sets:
//!
//! * **legacy** — what `Theory::consistent_with`/`Theory::entails` did
//!   before the session refactor: every check Tseitin-encodes the whole
//!   model-constraint section plus the candidate wff into a fresh solver,
//!   solves once, and throws everything away.
//! * **session** — one [`winslett_logic::EntailmentSession`] built from the same
//!   constraints: the base is encoded once, every candidate wff is encoded
//!   once behind an activation literal, and every check is an
//!   assumption-solve that keeps learnt clauses alive.
//!
//! Verdicts must agree check-for-check, and the session verdicts are also
//! cross-checked against the production [`Query::evaluate`] path. The
//! emitted JSON is validated by re-parsing into [`QueryBench`] — the shape
//! gate behind `make bench-smoke`.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use winslett_core::{Query, Workload};
use winslett_logic::{cnf::Tseitin, Wff};
use winslett_theory::Theory;

/// Solver-side counters for one decision strategy's full run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SolveCounters {
    /// SAT solves performed (two per candidate binding that is possible,
    /// one per candidate that is not).
    pub solves: u64,
    /// Wff-to-CNF encodings performed. Legacy re-encodes the constraint
    /// section for every solve; the session encodes each wff once.
    pub encodes: u64,
    /// Encodings skipped because the wff's activation literal was already
    /// cached (always 0 for the legacy path).
    pub encode_reuse_hits: u64,
    /// Unit propagations across all solves.
    pub propagations: u64,
    /// Conflicts across all solves.
    pub conflicts: u64,
}

/// One decision strategy's measured run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathRun {
    /// Wall time of the full workload, µs (for the session path this
    /// includes building the session from the theory).
    pub total_us: f64,
    /// Solver counters accumulated over the run.
    pub stats: SolveCounters,
}

/// The complete `BENCH_query.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryBench {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Experiment id — always `"query"`.
    pub experiment: String,
    /// Human description of the workload.
    pub workload: String,
    /// Times the whole query set was evaluated.
    pub rounds: u64,
    /// Distinct queries in the set.
    pub queries: u64,
    /// Candidate bindings per round, summed over the query set.
    pub candidate_bindings: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: u64,
    /// Whether legacy and session verdicts agreed on every check *and* the
    /// session verdicts reproduce `Query::evaluate`. Must be `true`.
    pub identical_answers: bool,
    /// Legacy total time / session total time.
    pub session_speedup: f64,
    /// The fresh-solver-per-check run.
    pub legacy: PathRun,
    /// The incremental-session run.
    pub session: PathRun,
    /// Free-form observations.
    pub notes: Vec<String>,
}

/// Per-candidate verdicts, `(possible, certain)`, in workload order.
type Verdicts = Vec<(bool, bool)>;

/// The legacy decision path: a fresh Tseitin encoding and solver per
/// check, exactly as `Theory::consistent_with`/`Theory::entails` worked
/// before the session refactor (minus their per-call reconstruction of the
/// constraint list, which is hoisted here — flattering the legacy path).
fn run_legacy(
    constraints: &[Wff],
    num_atoms: usize,
    rounds: usize,
    candidate_sets: &[Vec<(Vec<String>, Wff)>],
) -> (PathRun, Verdicts) {
    let mut stats = SolveCounters::default();
    let mut verdicts = Vec::new();
    let solve = |stats: &mut SolveCounters, query_wff: &Wff, negated: bool| -> bool {
        let mut ts = Tseitin::new(num_atoms);
        for c in constraints {
            ts.assert_true(c);
        }
        if negated {
            ts.assert_false(query_wff);
        } else {
            ts.assert_true(query_wff);
        }
        let mut solver = ts.finish().into_solver();
        let sat = solver.solve().is_sat();
        stats.solves += 1;
        stats.encodes += constraints.len() as u64 + 1;
        stats.propagations += solver.propagations;
        stats.conflicts += solver.conflicts;
        sat
    };
    let start = Instant::now();
    for _ in 0..rounds {
        for cands in candidate_sets {
            for (_, wff) in cands {
                let possible = solve(&mut stats, wff, false);
                let certain = possible && !solve(&mut stats, wff, true);
                verdicts.push((possible, certain));
            }
        }
    }
    let total_us = start.elapsed().as_secs_f64() * 1e6;
    (PathRun { total_us, stats }, verdicts)
}

/// The session decision path: one [`winslett_logic::EntailmentSession`] over the same
/// constraints, reused across every check of every round.
fn run_session(
    theory: &Theory,
    rounds: usize,
    candidate_sets: &[Vec<(Vec<String>, Wff)>],
) -> (PathRun, Verdicts) {
    let mut verdicts = Vec::new();
    let start = Instant::now();
    let mut session = theory.fresh_entailment_session();
    for _ in 0..rounds {
        for cands in candidate_sets {
            for (_, wff) in cands {
                let l = session.literal_for(wff);
                let possible = session.satisfiable_under(&[l]);
                let certain = possible && !session.satisfiable_under(&[l.negate()]);
                verdicts.push((possible, certain));
            }
        }
    }
    let total_us = start.elapsed().as_secs_f64() * 1e6;
    let s = session.stats();
    let stats = SolveCounters {
        solves: s.assumption_solves,
        encodes: s.base_wffs + s.encoded_wffs,
        encode_reuse_hits: s.encode_reuse_hits,
        propagations: session.solver_mut().propagations,
        conflicts: session.solver_mut().conflicts,
    };
    (PathRun { total_us, stats }, verdicts)
}

/// Builds the E11-style workload, measures both decision paths, and
/// assembles the `BENCH_query.json` document.
pub fn run_query_bench(r: usize, rounds: usize) -> QueryBench {
    let mut w = Workload::new(0x9E11);
    let (mut theory, _) = w.orders_theory(r);
    // Residual incompleteness: disjunctive facts over fresh Orders atoms,
    // loaded directly as wffs. Their atoms are possible but not certain,
    // so the two solves per candidate genuinely diverge.
    for i in 0..(r / 8).max(2) {
        let u = w.disjunctive_insert(&mut theory, 2, i);
        theory.assert_wff(&u.to_insert().omega);
    }
    let texts = [
        "?- Orders(?o, ?p, ?q)",
        "?- Orders(?o, ?p, ?q) & InStock(?p, ?q)",
        "?- Orders(?o, 32, ?q) & !InStock(32, ?q)",
    ];
    let parsed: Vec<Query> = texts
        .iter()
        .map(|t| Query::parse(t, &theory).expect("workload queries parse"))
        .collect();
    let candidate_sets: Vec<Vec<(Vec<String>, Wff)>> = parsed
        .iter()
        .map(|q| {
            q.candidate_instances(&theory)
                .expect("candidates enumerate")
        })
        .collect();
    let candidate_bindings: u64 = candidate_sets.iter().map(|c| c.len() as u64).sum();

    let constraints = theory.model_constraints();
    let num_atoms = theory.num_atoms();
    let (legacy, legacy_verdicts) = run_legacy(&constraints, num_atoms, rounds, &candidate_sets);
    let (session, session_verdicts) = run_session(&theory, rounds, &candidate_sets);

    // Check-for-check agreement, plus agreement with the production path:
    // answers assembled from the first round of session verdicts must
    // reproduce `Query::evaluate` exactly.
    let mut identical_answers = legacy_verdicts == session_verdicts;
    let mut offset = 0;
    for (q, cands) in parsed.iter().zip(&candidate_sets) {
        let production = q.evaluate(&theory).expect("production evaluate");
        let mut certain: Vec<Vec<String>> = Vec::new();
        let mut possible: Vec<Vec<String>> = Vec::new();
        for (i, (row, _)) in cands.iter().enumerate() {
            let (p, c) = session_verdicts[offset + i];
            if p {
                if c {
                    certain.push(row.clone());
                }
                possible.push(row.clone());
            }
        }
        offset += cands.len();
        certain.sort();
        certain.dedup();
        possible.sort();
        possible.dedup();
        identical_answers &= certain == production.certain && possible == production.possible;
    }

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let session_speedup = legacy.total_us / session.total_us;
    let notes = vec![
        format!(
            "legacy re-encodes the {}-wff constraint section for every solve \
             ({} encodings total); the session encodes it once and reuses \
             {} cached activation literals.",
            constraints.len(),
            legacy.stats.encodes,
            session.stats.encode_reuse_hits
        ),
        "certain is only solved for possible candidates on both paths, so \
         solve counts match and the speedup isolates encoding reuse plus \
         retained learnt clauses."
            .to_owned(),
    ];
    QueryBench {
        version: 1,
        experiment: "query".to_owned(),
        workload: format!(
            "E11-style: {} queries × {rounds} rounds over Orders({r}) with \
             {} disjunctive residual facts",
            texts.len(),
            (r / 8).max(2)
        ),
        rounds: rounds as u64,
        queries: texts.len() as u64,
        candidate_bindings,
        host_parallelism,
        identical_answers,
        session_speedup,
        legacy,
        session,
        notes,
    }
}

/// Shape-validates `BENCH_query.json` text by re-parsing it into
/// [`QueryBench`] and checking the cross-field invariants. Returns the
/// parsed document on success; `make bench-smoke` fails on `Err`.
pub fn validate_query_bench(text: &str) -> Result<QueryBench, String> {
    let b: QueryBench =
        serde_json::from_str(text).map_err(|e| format!("BENCH_query.json does not parse: {e}"))?;
    if b.version != 1 {
        return Err(format!("unknown version {}", b.version));
    }
    if b.experiment != "query" {
        return Err(format!(
            "experiment is {:?}, expected \"query\"",
            b.experiment
        ));
    }
    if b.rounds == 0 || b.queries == 0 || b.candidate_bindings == 0 {
        return Err(
            "workload collapsed: rounds, queries, and candidate_bindings must be > 0".into(),
        );
    }
    if !b.identical_answers {
        return Err("legacy and session paths disagree on some verdict".into());
    }
    for (label, run) in [("legacy", &b.legacy), ("session", &b.session)] {
        if run.stats.solves == 0 {
            return Err(format!("{label} run performed no solves"));
        }
        if !(run.total_us.is_finite() && run.total_us > 0.0) {
            return Err(format!("{label} total_us is not a positive finite number"));
        }
    }
    if b.legacy.stats.solves != b.session.stats.solves {
        return Err(format!(
            "solve counts diverge: legacy {} vs session {} — the paths did \
             different logical work",
            b.legacy.stats.solves, b.session.stats.solves
        ));
    }
    if b.session.stats.encodes >= b.legacy.stats.encodes {
        return Err(format!(
            "session encoded {} wffs, legacy {} — the session is not \
             amortizing encodings",
            b.session.stats.encodes, b.legacy.stats.encodes
        ));
    }
    if b.session.stats.encode_reuse_hits == 0 {
        return Err("session recorded no encode-reuse hits on a repeated workload".into());
    }
    if b.legacy.stats.encode_reuse_hits != 0 {
        return Err("legacy path cannot have encode-reuse hits".into());
    }
    if !(b.session_speedup.is_finite() && b.session_speedup >= 2.0) {
        return Err(format!(
            "session_speedup is {:.2}, below the ×2 acceptance floor",
            b.session_speedup
        ));
    }
    if b.host_parallelism == 0 {
        return Err("host_parallelism is 0".into());
    }
    Ok(b)
}

/// Renders the bench result as a harness table.
pub fn query_table(b: &QueryBench) -> Table {
    let mut t = Table::new(
        "QUERY",
        "incremental entailment session vs fresh solver per check (repeated query workload)",
        &[
            "path",
            "total µs",
            "solves",
            "encodes",
            "reuse hits",
            "propagations",
            "conflicts",
        ],
    );
    for (label, r) in [("legacy", &b.legacy), ("session", &b.session)] {
        t.row(vec![
            label.to_owned(),
            format!("{:.1}", r.total_us),
            r.stats.solves.to_string(),
            r.stats.encodes.to_string(),
            r.stats.encode_reuse_hits.to_string(),
            r.stats.propagations.to_string(),
            r.stats.conflicts.to_string(),
        ]);
    }
    t.note(format!(
        "{} queries × {} rounds, {} candidate bindings/round; host parallelism {}",
        b.queries, b.rounds, b.candidate_bindings, b.host_parallelism
    ));
    t.note(format!(
        "session speedup ×{:.2}, identical answers: {}",
        b.session_speedup, b.identical_answers
    ));
    for n in &b.notes {
        t.note(n.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_round_trips() {
        let b = run_query_bench(8, 2);
        assert!(b.identical_answers);
        assert_eq!(b.queries, 3);
        assert!(b.candidate_bindings > 0);
        assert_eq!(b.legacy.stats.solves, b.session.stats.solves);
        assert!(b.session.stats.encode_reuse_hits > 0);
        let text = serde_json::to_string_pretty(&b).expect("serializes");
        let back = validate_query_bench(&text).expect("validates");
        assert_eq!(back.rounds, 2);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        let b = run_query_bench(8, 2);
        let mut bad = b.clone();
        bad.identical_answers = false;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_query_bench(&text)
            .unwrap_err()
            .contains("disagree"));
        let mut bad = b.clone();
        bad.session_speedup = 1.1;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_query_bench(&text)
            .unwrap_err()
            .contains("acceptance floor"));
        let mut bad = b.clone();
        bad.session.stats.encodes = bad.legacy.stats.encodes;
        let text = serde_json::to_string_pretty(&bad).expect("serializes");
        assert!(validate_query_bench(&text)
            .unwrap_err()
            .contains("amortizing"));
        assert!(validate_query_bench("{").is_err());
    }

    #[test]
    fn table_renders_both_rows() {
        let b = run_query_bench(8, 2);
        let rendered = query_table(&b).render();
        assert!(rendered.contains("legacy"));
        assert!(rendered.contains("session"));
    }
}
