//! # winslett-theory
//!
//! Extended relational theories (Winslett, PODS 1986, §2 and §3.5): the
//! representation of a logical database with incomplete information.
//!
//! An extended relational theory consists of
//!
//! 1. **unique-name axioms** — structural here: distinct interned constants
//!    denote distinct individuals;
//! 2. **completion axioms** — the [`CompletionRegistry`]: per-predicate
//!    ordered indices of exactly the ground atoms appearing in the theory;
//! 3. a **non-axiomatic section** of arbitrary ground wffs (which may
//!    mention predicate constants) — the [`FormulaStore`], implementing the
//!    §3.6 pointer/index substrate with O(1) atom renaming;
//! 4. optionally **type axioms** encoding the schema ([`Schema`]);
//! 5. optionally **dependency axioms** in the paper's template form
//!    ([`Dependency`]): functional, relation-inclusion, multivalued, or any
//!    custom `∀x⃗ (α → β)`.
//!
//! [`Theory`] ties these together and provides model-level operations
//! (consistency, entailment, alternative-world enumeration) via the SAT
//! kernel of `winslett-logic`.

pub mod deps;
pub mod error;
pub mod registry;
pub mod schema;
pub mod stats;
pub mod store;
pub mod theory;

pub use deps::{AtomPattern, Dependency, HeadFormula, Term};
pub use error::TheoryError;
pub use registry::CompletionRegistry;
pub use schema::Schema;
pub use stats::TheoryStats;
pub use store::{FormulaId, FormulaStore, SlotId};
pub use theory::Theory;
