//! The indexed formula store — the storage substrate of §3.6.
//!
//! The paper's cost model requires that:
//!
//! * "all ground atomic formulas in the non-axiomatic section of T must
//!   appear in indices … so that lookup and insertion time is O(log R)";
//! * "all occurrences of a ground atomic formula or predicate constant in
//!   the non-axiomatic section of T are linked together in a list whose
//!   head is an index entry, so that renaming may be done rapidly";
//! * "the names of ground atomic formulas cannot be physically stored with
//!   the non-axiomatic wffs they appear in; however, the non-axiomatic wffs
//!   may contain pointers into a separate name space".
//!
//! [`FormulaStore`] realizes this with *slot indirection*: stored formulas
//! hold [`SlotId`]s, and a side table maps each slot to its current
//! [`AtomId`]. All occurrences of an atom share one slot (the paper's
//! occurrence list head), so GUA Step 2's rename of `f` to a fresh
//! predicate constant `p_f` is a single table write — O(1) regardless of
//! how many occurrences `f` has.

use crate::error::TheoryError;
use rustc_hash::FxHashMap;
use smallvec::SmallVec;
use winslett_logic::{AtomId, Formula, Wff};

/// Index of a slot in the store's indirection table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u32);

impl SlotId {
    /// Dense index of this slot.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a stored formula.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FormulaId(pub u32);

impl FormulaId {
    /// Dense index of this formula.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct StoredFormula {
    body: Formula<SlotId>,
    /// Number of AST nodes, cached for O(1) size accounting.
    nodes: usize,
    live: bool,
}

/// The non-axiomatic section of an extended relational theory, stored with
/// the indirection structure of §3.6.
#[derive(Clone, Default, Debug)]
pub struct FormulaStore {
    formulas: Vec<StoredFormula>,
    /// Current atom of each slot (the "separate name space" pointers).
    slots: Vec<AtomId>,
    /// Live binding: which slots currently display each atom. In normal
    /// operation an atom has at most one slot; renames onto an existing
    /// atom (never done by GUA, which renames onto *fresh* predicate
    /// constants) can merge lists.
    atom_slots: FxHashMap<AtomId, SmallVec<[SlotId; 1]>>,
    /// Occurrence count per slot, for growth accounting.
    slot_occurrences: Vec<usize>,
    /// Total AST nodes over live formulas.
    live_nodes: usize,
    /// Number of live formulas.
    live_count: usize,
    /// Identifier-space ceilings (`u32::MAX` unless lowered). Lowering them
    /// makes the [`FormulaStore::try_insert`] capacity errors reachable in
    /// tests and lets an operator quota a tenant's store.
    max_slots: Option<u32>,
    max_formulas: Option<u32>,
    /// Bumped on every semantic mutation (insert, remove, rename,
    /// replace_all); feeds [`Theory::generation`](crate::Theory) so cached
    /// entailment sessions notice staleness.
    version: u64,
}

impl FormulaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live formulas.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no live formulas exist.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total AST nodes over live formulas — the store-size measure used in
    /// experiment E4 (O(g) growth per update).
    pub fn size_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Monotone mutation counter: strictly increases on every insert,
    /// remove, rename, and wholesale replacement.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Lowers the identifier-space ceilings. Inserts that would need a slot
    /// or formula id at or beyond a ceiling fail with
    /// [`TheoryError::StoreCapacity`] instead of allocating. Used by tests
    /// to make the (otherwise ~4-billion-insert) overflow path reachable,
    /// and available to deployments that quota per-database growth.
    pub fn set_capacity(&mut self, max_slots: u32, max_formulas: u32) {
        self.max_slots = Some(max_slots);
        self.max_formulas = Some(max_formulas);
    }

    fn slot_ceiling(&self) -> u64 {
        self.max_slots.map_or(u64::from(u32::MAX), u64::from)
    }

    fn formula_ceiling(&self) -> u64 {
        self.max_formulas.map_or(u64::from(u32::MAX), u64::from)
    }

    fn slot_for(&mut self, atom: AtomId) -> SlotId {
        if let Some(list) = self.atom_slots.get(&atom) {
            if let Some(&s) = list.first() {
                return s;
            }
        }
        let s = SlotId(u32::try_from(self.slots.len()).expect("checked by try_insert"));
        self.slots.push(atom);
        self.slot_occurrences.push(0);
        self.atom_slots.entry(atom).or_default().push(s);
        s
    }

    /// Inserts a wff, returning its handle.
    ///
    /// Panics if the store's identifier space is exhausted; fallible
    /// callers (the GUA update path) use [`FormulaStore::try_insert`].
    pub fn insert(&mut self, wff: &Wff) -> FormulaId {
        self.try_insert(wff)
            .unwrap_or_else(|e| panic!("formula store insert failed: {e}"))
    }

    /// Inserts a wff, returning its handle — or a typed
    /// [`TheoryError::StoreCapacity`] if the insert would exhaust the
    /// `u32` slot or formula identifier space (or a configured quota)
    /// rather than panicking mid-update.
    pub fn try_insert(&mut self, wff: &Wff) -> Result<FormulaId, TheoryError> {
        // Capacity is checked up front so a failed insert allocates
        // nothing: the slot table must fit every atom of `wff` that does
        // not already have a live binding, and the formula table one more
        // entry.
        if self.formulas.len() as u64 >= self.formula_ceiling() {
            return Err(TheoryError::StoreCapacity {
                what: "formulas",
                limit: self.formula_ceiling(),
            });
        }
        let new_slots = wff
            .atom_set()
            .into_iter()
            .filter(|a| !self.atom_slots.contains_key(a))
            .count() as u64;
        if self.slots.len() as u64 + new_slots > self.slot_ceiling() {
            return Err(TheoryError::StoreCapacity {
                what: "slots",
                limit: self.slot_ceiling(),
            });
        }
        let body = wff.map_atoms(&mut |a: &AtomId| {
            let s = self.slot_for(*a);
            self.slot_occurrences[s.index()] += 1;
            s
        });
        let nodes = body.size();
        let id = FormulaId(u32::try_from(self.formulas.len()).expect("checked above"));
        self.live_nodes += nodes;
        self.live_count += 1;
        self.version += 1;
        self.formulas.push(StoredFormula {
            body,
            nodes,
            live: true,
        });
        Ok(id)
    }

    /// Removes a formula (used by simplification). Idempotent.
    pub fn remove(&mut self, id: FormulaId) {
        let sf = &mut self.formulas[id.index()];
        if sf.live {
            sf.live = false;
            self.live_nodes -= sf.nodes;
            self.live_count -= 1;
            self.version += 1;
            // Occurrence counts are decremented so `occurrences_of` stays
            // accurate for simplification decisions.
            let body = sf.body.clone();
            body.for_each_atom(&mut |s: &SlotId| {
                self.slot_occurrences[s.index()] -= 1;
            });
        }
    }

    /// Whether `id` refers to a live formula.
    pub fn is_live(&self, id: FormulaId) -> bool {
        self.formulas.get(id.index()).is_some_and(|sf| sf.live)
    }

    /// Renames every occurrence of `from` to `to` in O(1) per slot (O(1)
    /// total in GUA, where `to` is always fresh). This is the paper's
    /// pointer-list renaming of Step 2.
    ///
    /// Returns the number of formula occurrences affected.
    pub fn rename_atom(&mut self, from: AtomId, to: AtomId) -> usize {
        let Some(list) = self.atom_slots.remove(&from) else {
            return 0;
        };
        self.version += 1;
        let mut occurrences = 0;
        for &s in &list {
            debug_assert_eq!(self.slots[s.index()], from);
            self.slots[s.index()] = to;
            occurrences += self.slot_occurrences[s.index()];
        }
        self.atom_slots.entry(to).or_default().extend(list);
        occurrences
    }

    /// Whether `atom` currently occurs in any live formula.
    pub fn contains_atom(&self, atom: AtomId) -> bool {
        self.occurrences_of(atom) > 0
    }

    /// Number of live occurrences of `atom`.
    pub fn occurrences_of(&self, atom: AtomId) -> usize {
        self.atom_slots
            .get(&atom)
            .map(|list| list.iter().map(|s| self.slot_occurrences[s.index()]).sum())
            .unwrap_or(0)
    }

    /// Resolves a stored formula back to a wff over atoms.
    pub fn resolve(&self, id: FormulaId) -> Wff {
        self.formulas[id.index()]
            .body
            .map_atoms(&mut |s: &SlotId| self.slots[s.index()])
    }

    /// Iterates over the live formulas as `(id, wff)`.
    pub fn iter(&self) -> impl Iterator<Item = (FormulaId, Wff)> + '_ {
        self.formulas
            .iter()
            .enumerate()
            .filter(|(_, sf)| sf.live)
            .map(|(i, sf)| {
                (
                    FormulaId(i as u32),
                    sf.body.map_atoms(&mut |s: &SlotId| self.slots[s.index()]),
                )
            })
    }

    /// Materializes all live formulas as wffs over atoms.
    pub fn wffs(&self) -> Vec<Wff> {
        self.iter().map(|(_, w)| w).collect()
    }

    /// The set of atoms with at least one live occurrence, in sorted order.
    pub fn live_atoms(&self) -> Vec<AtomId> {
        let mut out: Vec<AtomId> = self
            .atom_slots
            .iter()
            .filter(|(_, list)| list.iter().any(|s| self.slot_occurrences[s.index()] > 0))
            .map(|(&a, _)| a)
            .collect();
        out.sort_unstable();
        out
    }

    /// Replaces the entire store contents with `wffs` (used by the
    /// simplifier after a rewrite pass). Slot and occurrence bookkeeping is
    /// rebuilt from scratch.
    pub fn replace_all(&mut self, wffs: &[Wff]) {
        let (max_slots, max_formulas) = (self.max_slots, self.max_formulas);
        let version = self.version;
        *self = FormulaStore::new();
        self.max_slots = max_slots;
        self.max_formulas = max_formulas;
        // Carry the mutation counter forward (and advance it) so the reset
        // cannot rewind a generation another component has already observed.
        self.version = version + 1;
        for w in wffs {
            self.insert(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Formula;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    #[test]
    fn insert_and_resolve_roundtrip() {
        let mut s = FormulaStore::new();
        let w = Wff::and2(a(1), Wff::or2(a(2), a(1)).not());
        let id = s.insert(&w);
        assert_eq!(s.resolve(id), w);
        assert_eq!(s.len(), 1);
        assert_eq!(s.size_nodes(), w.size());
    }

    #[test]
    fn rename_affects_all_occurrences_across_formulas() {
        let mut s = FormulaStore::new();
        let f1 = s.insert(&Wff::or2(a(1), a(2)));
        let f2 = s.insert(&Wff::and2(a(1), a(3)));
        let n = s.rename_atom(AtomId(1), AtomId(99));
        assert_eq!(n, 2);
        assert_eq!(s.resolve(f1), Wff::or2(a(99), a(2)));
        assert_eq!(s.resolve(f2), Wff::and2(a(99), a(3)));
        assert!(!s.contains_atom(AtomId(1)));
        assert!(s.contains_atom(AtomId(99)));
    }

    #[test]
    fn rename_then_reinsert_uses_fresh_slot() {
        // After renaming a → p_a, a *new* occurrence of `a` must not be
        // captured by the old slot (GUA Step 3 re-introduces the original
        // atoms after Step 2's rename).
        let mut s = FormulaStore::new();
        let f1 = s.insert(&a(1));
        s.rename_atom(AtomId(1), AtomId(50));
        let f2 = s.insert(&a(1));
        assert_eq!(s.resolve(f1), a(50));
        assert_eq!(s.resolve(f2), a(1));
        assert_eq!(s.occurrences_of(AtomId(1)), 1);
        assert_eq!(s.occurrences_of(AtomId(50)), 1);
    }

    #[test]
    fn rename_missing_atom_is_noop() {
        let mut s = FormulaStore::new();
        s.insert(&a(1));
        assert_eq!(s.rename_atom(AtomId(7), AtomId(8)), 0);
        assert!(s.contains_atom(AtomId(1)));
    }

    #[test]
    fn rename_merge_onto_existing_atom() {
        // Not used by GUA (targets are fresh), but must stay correct.
        let mut s = FormulaStore::new();
        let f1 = s.insert(&a(1));
        let f2 = s.insert(&a(2));
        s.rename_atom(AtomId(1), AtomId(2));
        assert_eq!(s.resolve(f1), a(2));
        assert_eq!(s.resolve(f2), a(2));
        assert_eq!(s.occurrences_of(AtomId(2)), 2);
        // A further rename of the merged atom moves both slots.
        s.rename_atom(AtomId(2), AtomId(3));
        assert_eq!(s.resolve(f1), a(3));
        assert_eq!(s.resolve(f2), a(3));
    }

    #[test]
    fn remove_updates_accounting() {
        let mut s = FormulaStore::new();
        let w = Wff::or2(a(1), a(2));
        let id = s.insert(&w);
        let id2 = s.insert(&a(1));
        s.remove(id);
        assert_eq!(s.len(), 1);
        assert_eq!(s.size_nodes(), 1);
        assert_eq!(s.occurrences_of(AtomId(1)), 1);
        assert_eq!(s.occurrences_of(AtomId(2)), 0);
        assert!(!s.is_live(id));
        assert!(s.is_live(id2));
        // Removing twice is a no-op.
        s.remove(id);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wffs_skips_dead_formulas() {
        let mut s = FormulaStore::new();
        let id = s.insert(&a(1));
        s.insert(&a(2));
        s.remove(id);
        assert_eq!(s.wffs(), vec![a(2)]);
    }

    #[test]
    fn live_atoms_sorted_and_filtered() {
        let mut s = FormulaStore::new();
        let id = s.insert(&Wff::and2(a(5), a(3)));
        s.insert(&a(9));
        assert_eq!(s.live_atoms(), vec![AtomId(3), AtomId(5), AtomId(9)]);
        s.remove(id);
        assert_eq!(s.live_atoms(), vec![AtomId(9)]);
    }

    #[test]
    fn replace_all_rebuilds() {
        let mut s = FormulaStore::new();
        s.insert(&a(1));
        s.rename_atom(AtomId(1), AtomId(2));
        s.replace_all(&[a(3), Wff::or2(a(4), a(3))]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.occurrences_of(AtomId(3)), 2);
        assert!(!s.contains_atom(AtomId(2)));
    }

    #[test]
    fn capacity_exhaustion_is_a_typed_error_not_a_panic() {
        let mut s = FormulaStore::new();
        s.set_capacity(2, 2);
        s.insert(&Wff::and2(a(1), a(2))); // fills both slots
        assert!(matches!(
            s.try_insert(&a(3)),
            Err(TheoryError::StoreCapacity {
                what: "slots",
                limit: 2
            })
        ));
        // A wff over already-slotted atoms still fits (no new slots).
        s.try_insert(&a(1)).unwrap();
        // … and now the formula table is full.
        assert!(matches!(
            s.try_insert(&a(2)),
            Err(TheoryError::StoreCapacity {
                what: "formulas",
                limit: 2
            })
        ));
        // A failed insert must not have corrupted accounting.
        assert_eq!(s.len(), 2);
        assert_eq!(s.occurrences_of(AtomId(1)), 2);
        assert_eq!(s.occurrences_of(AtomId(3)), 0);
        assert!(!s.contains_atom(AtomId(3)));
    }

    #[test]
    fn failed_insert_allocates_nothing() {
        // The capacity check runs before any slot allocation: a rejected
        // wff must not leave partial slots behind (which would corrupt
        // occurrence accounting for later renames).
        let mut s = FormulaStore::new();
        s.set_capacity(3, 10);
        s.insert(&Wff::and2(a(1), a(2)));
        // a(1) is slotted, but a(4) & a(5) need two new slots: only one fits.
        assert!(s.try_insert(&Wff::and2(a(4), a(5))).is_err());
        assert_eq!(s.occurrences_of(AtomId(4)), 0);
        assert!(!s.contains_atom(AtomId(5)));
        // The remaining slot is still usable.
        s.try_insert(&a(4)).unwrap();
        assert_eq!(s.occurrences_of(AtomId(4)), 1);
    }

    #[test]
    fn occurrence_accounting_after_merge_remove_reinsert() {
        // Regression: a merge rename (two slots now display one atom)
        // followed by remove and re-insert must keep per-atom occurrence
        // sums exact — `occurrences_of` drives simplification decisions
        // and `contains_atom` drives predicate-constant visibility.
        let mut s = FormulaStore::new();
        let f1 = s.insert(&Wff::or2(a(1), a(1)));
        let f2 = s.insert(&a(2));
        s.rename_atom(AtomId(1), AtomId(2)); // merge: atom 2 has two slots
        assert_eq!(s.occurrences_of(AtomId(2)), 3);
        s.remove(f1);
        assert_eq!(s.occurrences_of(AtomId(2)), 1);
        // Re-insert through the merged binding: the occurrence lands on
        // one of atom 2's slots and the total must reflect it.
        let f3 = s.insert(&Wff::and2(a(2), a(3)));
        assert_eq!(s.occurrences_of(AtomId(2)), 2);
        assert_eq!(s.occurrences_of(AtomId(3)), 1);
        assert_eq!(s.resolve(f3), Wff::and2(a(2), a(3)));
        assert_eq!(s.resolve(f2), a(2));
        // Removing everything zeroes the sums over *both* merged slots.
        s.remove(f2);
        s.remove(f3);
        assert_eq!(s.occurrences_of(AtomId(2)), 0);
        assert!(!s.contains_atom(AtomId(2)));
        assert_eq!(s.live_atoms(), Vec::<AtomId>::new());
    }

    #[test]
    fn replace_all_preserves_capacity_quota() {
        let mut s = FormulaStore::new();
        s.set_capacity(8, 8);
        s.replace_all(&[a(1)]);
        assert!(s
            .try_insert(&Wff::and2(
                a(2),
                Wff::and2(a(3), Wff::and2(a(4), Wff::and2(a(5), a(6))))
            ))
            .is_ok());
        // 6 slots used; 3 more distinct atoms exceed the 8-slot quota.
        assert!(s
            .try_insert(&Wff::and2(a(7), Wff::and2(a(8), a(9))))
            .is_err());
    }

    #[test]
    fn rename_cost_is_independent_of_occurrences() {
        // Structural check on the O(1) claim: renaming touches only the
        // slot table, so the number of atom_slots entries visited equals
        // the number of slots for `from` (1 here), however many
        // occurrences exist.
        let mut s = FormulaStore::new();
        for _ in 0..1000 {
            s.insert(&Wff::or2(a(1), a(1)));
        }
        assert_eq!(s.occurrences_of(AtomId(1)), 2000);
        let affected = s.rename_atom(AtomId(1), AtomId(2));
        assert_eq!(affected, 2000);
        // Every stored formula now displays the new atom.
        assert!(s.iter().all(|(_, w)| !w.contains_atom(AtomId(1))));
    }
}
