//! Size and cost-model statistics for a theory.

use serde::{Deserialize, Serialize};

/// A snapshot of theory sizes, used by the growth experiment (E4) and the
/// simplification experiment (E6).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TheoryStats {
    /// Live formulas in the non-axiomatic section.
    pub num_formulas: usize,
    /// Total AST nodes over live formulas.
    pub store_nodes: usize,
    /// Interned atoms (universe size).
    pub num_atoms: usize,
    /// Atoms registered in completion axioms.
    pub num_registered: usize,
    /// The §3.6 `R`: max registered atoms of any single predicate.
    pub max_predicate_size: usize,
    /// Interned constants.
    pub num_constants: usize,
    /// Declared predicates (including predicate constants).
    pub num_predicates: usize,
    /// Dependency axioms.
    pub num_dependencies: usize,
}

impl std::fmt::Display for TheoryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} wffs / {} nodes, {} atoms ({} registered, R = {}), {} constants, {} predicates, {} dependencies",
            self.num_formulas,
            self.store_nodes,
            self.num_atoms,
            self.num_registered,
            self.max_predicate_size,
            self.num_constants,
            self.num_predicates,
            self.num_dependencies,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_numbers() {
        let s = TheoryStats {
            num_formulas: 3,
            store_nodes: 17,
            num_atoms: 5,
            num_registered: 4,
            max_predicate_size: 2,
            num_constants: 6,
            num_predicates: 2,
            num_dependencies: 1,
        };
        let txt = s.to_string();
        assert!(txt.contains("3 wffs"));
        assert!(txt.contains("R = 2"));
    }
}
