//! Size and cost-model statistics for a theory.

use serde::{Deserialize, Serialize};

/// A snapshot of theory sizes, used by the growth experiment (E4) and the
/// simplification experiment (E6).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TheoryStats {
    /// Live formulas in the non-axiomatic section.
    pub num_formulas: usize,
    /// Total AST nodes over live formulas.
    pub store_nodes: usize,
    /// Interned atoms (universe size).
    pub num_atoms: usize,
    /// Atoms registered in completion axioms.
    pub num_registered: usize,
    /// The §3.6 `R`: max registered atoms of any single predicate.
    pub max_predicate_size: usize,
    /// Interned constants.
    pub num_constants: usize,
    /// Declared predicates (including predicate constants).
    pub num_predicates: usize,
    /// Dependency axioms.
    pub num_dependencies: usize,
    /// Entailment sessions built (first use plus generation rebuilds).
    #[serde(default)]
    pub session_rebuilds: u64,
    /// Cached sessions discarded because the theory mutated underneath.
    #[serde(default)]
    pub session_invalidations: u64,
    /// Assumption solves answered by cached sessions.
    #[serde(default)]
    pub session_assumption_solves: u64,
    /// Query wffs Tseitin-encoded inside sessions.
    #[serde(default)]
    pub session_encodes: u64,
    /// Query wffs answered from the activation-literal cache — theory
    /// re-encodings the legacy fresh-solver path would have paid.
    #[serde(default)]
    pub session_encode_reuse_hits: u64,
    /// Conflict clauses learnt and retained across session queries.
    #[serde(default)]
    pub session_learned_retained: u64,
}

impl std::fmt::Display for TheoryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} wffs / {} nodes, {} atoms ({} registered, R = {}), {} constants, {} predicates, {} dependencies; \
             sessions: {} built / {} invalidated, {} solves, {} encodes (+{} reused), {} learnt kept",
            self.num_formulas,
            self.store_nodes,
            self.num_atoms,
            self.num_registered,
            self.max_predicate_size,
            self.num_constants,
            self.num_predicates,
            self.num_dependencies,
            self.session_rebuilds,
            self.session_invalidations,
            self.session_assumption_solves,
            self.session_encodes,
            self.session_encode_reuse_hits,
            self.session_learned_retained,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_numbers() {
        let s = TheoryStats {
            num_formulas: 3,
            store_nodes: 17,
            num_atoms: 5,
            num_registered: 4,
            max_predicate_size: 2,
            num_constants: 6,
            num_predicates: 2,
            num_dependencies: 1,
            session_rebuilds: 2,
            session_invalidations: 1,
            session_assumption_solves: 9,
            session_encodes: 4,
            session_encode_reuse_hits: 5,
            session_learned_retained: 7,
        };
        let txt = s.to_string();
        assert!(txt.contains("3 wffs"));
        assert!(txt.contains("R = 2"));
        assert!(txt.contains("2 built"));
        assert!(txt.contains("9 solves"));
    }

    #[test]
    fn old_json_without_session_fields_still_deserializes() {
        let json = r#"{"num_formulas":1,"store_nodes":1,"num_atoms":1,
            "num_registered":1,"max_predicate_size":1,"num_constants":1,
            "num_predicates":1,"num_dependencies":0}"#;
        let s: TheoryStats = serde_json::from_str(json).unwrap();
        assert_eq!(s.session_rebuilds, 0);
        assert_eq!(s.session_assumption_solves, 0);
    }
}
