//! Extended relational theories (§2, extended per §3.5).
//!
//! A [`Theory`] bundles the language (vocabulary + atom table), the schema
//! (type axioms), the dependency axioms, the completion-axiom registry, and
//! the indexed non-axiomatic section. Unique-name axioms are structural;
//! completion axioms are the registry; type and dependency axioms are
//! templates instantiated on demand. The only materialized formulas are the
//! ground wffs of the non-axiomatic section — exactly as the paper
//! prescribes for implementations.
//!
//! ## Model semantics
//!
//! A model assigns truth values to every interned atom such that:
//!
//! * every live wff of the non-axiomatic section is true;
//! * every atom that is neither registered (completion axioms) nor a
//!   predicate constant occurring in the section is **false** — this is the
//!   closed-world reading of the completion axioms;
//! * predicate constants not occurring in the section are pinned false
//!   (they are invisible, so this choice does not affect alternative
//!   worlds; it merely keeps model counts small).
//!
//! An *alternative world* is a model projected onto the visible (arity ≥ 1)
//! registered atoms.

use crate::deps::Dependency;
use crate::error::TheoryError;
use crate::registry::CompletionRegistry;
use crate::schema::Schema;
use crate::stats::TheoryStats;
use crate::store::{FormulaId, FormulaStore};
use std::sync::Mutex;
use winslett_logic::{
    enumerate_models, AtomId, AtomTable, BitSet, ConstId, EntailmentSession, GroundAtom,
    ModelLimit, PredId, PredicateKind, SessionStats, Vocabulary, Wff,
};

/// Interior-mutable cache holding the theory's [`EntailmentSession`].
///
/// Entailment methods take `&self`, and the worlds engine shares a
/// `&Theory` across scoped threads, so the cache sits behind a `Mutex`
/// (keeping `Theory: Sync`). Cloning a theory deliberately starts the
/// clone with an empty cache — sessions are cheap to rebuild and carry
/// solver state that must not be shared between diverging theories.
#[derive(Default)]
struct SessionSlot(Mutex<SlotInner>);

#[derive(Default)]
struct SlotInner {
    /// The cached session, tagged with the generation it was built at.
    cached: Option<(u64, EntailmentSession)>,
    /// Sessions built (first use + rebuilds after invalidation).
    rebuilds: u64,
    /// Cached sessions discarded on generation mismatch.
    invalidations: u64,
    /// Counters accumulated from sessions that were retired.
    retired: SessionStats,
    /// Learnt-clause totals from retired sessions.
    retired_learned: u64,
}

impl SessionSlot {
    fn lock(&self) -> std::sync::MutexGuard<'_, SlotInner> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Clone for SessionSlot {
    fn clone(&self) -> Self {
        SessionSlot::default()
    }
}

impl std::fmt::Debug for SessionSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("SessionSlot")
            .field("cached", &inner.cached.as_ref().map(|(g, _)| *g))
            .field("rebuilds", &inner.rebuilds)
            .field("invalidations", &inner.invalidations)
            .finish()
    }
}

/// An extended relational theory.
///
/// ```
/// use winslett_theory::Theory;
/// use winslett_logic::{ModelLimit, Wff};
///
/// let mut t = Theory::new();
/// let orders = t.declare_relation("Orders", 2)?;
/// let (c1, c2) = (t.constant("700"), t.constant("32"));
/// let tup = t.atom(orders, &[c1, c2]);
/// t.assert_atom(tup);
///
/// assert!(t.is_consistent());
/// assert!(t.entails(&Wff::Atom(tup)));
/// assert_eq!(t.alternative_worlds(ModelLimit::default())?.len(), 1);
/// # Ok::<(), winslett_theory::TheoryError>(())
/// ```
#[derive(Clone, Default, Debug)]
pub struct Theory {
    /// The language `L`.
    pub vocab: Vocabulary,
    /// Interned ground atoms (the name space of §3.6).
    pub atoms: AtomTable,
    /// Type axioms and the attribute set `A`.
    pub schema: Schema,
    /// Dependency axioms.
    pub deps: Vec<Dependency>,
    /// Completion axioms, as per-predicate registered-atom indices.
    pub registry: CompletionRegistry,
    /// The non-axiomatic section.
    pub store: FormulaStore,
    /// Extra generation ticks folded into [`Theory::generation`]. The
    /// component version counters only count mutations *of this theory
    /// value*; when a separately-evolved copy (e.g. a background-compacted
    /// clone) is swapped in for a live theory, its counters may trail the
    /// live ones even though its encoding differs. The swap bumps this
    /// epoch past the retired theory's generation so every cached
    /// [`EntailmentSession`] and per-snapshot reader sees a strictly
    /// larger generation and rebuilds.
    epoch: u64,
    /// Cached entailment session, invalidated on generation mismatch.
    session: SessionSlot,
}

impl Theory {
    /// Creates an empty theory.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- schema construction -------------------------------------------

    /// Declares a unary attribute predicate and records it in the schema.
    pub fn declare_attribute(&mut self, name: &str) -> Result<PredId, TheoryError> {
        let p = self
            .vocab
            .declare_predicate(name, 1, PredicateKind::Attribute)
            .ok_or_else(|| TheoryError::UnknownPredicate { name: name.into() })?;
        self.schema.add_attribute(p, &self.vocab)?;
        Ok(p)
    }

    /// Declares an untyped relation (a theory without type axioms, §2).
    pub fn declare_relation(&mut self, name: &str, arity: usize) -> Result<PredId, TheoryError> {
        self.vocab
            .declare_predicate(name, arity, PredicateKind::Relation)
            .ok_or_else(|| TheoryError::UnknownPredicate { name: name.into() })
    }

    /// Declares a relation with a type axiom: argument `i` ranges over
    /// attribute `attrs[i]` (§3.5, item 4).
    pub fn declare_typed_relation(
        &mut self,
        name: &str,
        attrs: &[PredId],
    ) -> Result<PredId, TheoryError> {
        let p = self.declare_relation(name, attrs.len())?;
        self.schema.set_type_axiom(p, attrs.to_vec(), &self.vocab)?;
        Ok(p)
    }

    /// Adds a dependency axiom (§3.5, item 5).
    pub fn add_dependency(&mut self, dep: Dependency) {
        self.deps.push(dep);
    }

    // ----- atoms and constants -------------------------------------------

    /// Interns a constant.
    pub fn constant(&mut self, name: &str) -> ConstId {
        self.vocab.constant(name)
    }

    /// Interns the atom `pred(args…)` (without registering it).
    pub fn atom(&mut self, pred: PredId, args: &[ConstId]) -> AtomId {
        self.atoms.intern(GroundAtom::new(pred, args))
    }

    /// Interns an atom from names, declaring nothing: every symbol must
    /// exist.
    pub fn atom_by_name(&mut self, pred: &str, args: &[&str]) -> Result<AtomId, TheoryError> {
        let p = self
            .vocab
            .find_predicate(pred)
            .ok_or_else(|| TheoryError::UnknownPredicate { name: pred.into() })?;
        let decl = self.vocab.predicate(p);
        if decl.arity != args.len() {
            return Err(TheoryError::ArityMismatch {
                predicate: pred.into(),
                expected: decl.arity,
                got: args.len(),
            });
        }
        let cs: Vec<ConstId> = args.iter().map(|a| self.vocab.constant(a)).collect();
        Ok(self.atoms.intern(GroundAtom::new(p, &cs)))
    }

    /// Registers `atom` in the completion axiom of its predicate. Returns
    /// `true` if the atom was new to the axiom. Predicate constants have no
    /// completion axioms and are accepted as a no-op `false`.
    pub fn register_atom(&mut self, atom: AtomId) -> bool {
        let ga = self.atoms.resolve(atom).clone();
        if self.vocab.predicate(ga.pred).kind == PredicateKind::PredicateConstant {
            return false;
        }
        self.registry.register(ga.pred, atom, &ga.args)
    }

    /// Whether `atom` is visible in alternative worlds (arity ≥ 1).
    pub fn is_visible(&self, atom: AtomId) -> bool {
        self.vocab
            .predicate(self.atoms.resolve(atom).pred)
            .kind
            .visible()
    }

    // ----- the non-axiomatic section --------------------------------------

    /// Adds a ground wff to the non-axiomatic section, registering every
    /// visible atom it mentions in the completion axioms (the "is a
    /// disjunct iff appears elsewhere in T" rule of §2).
    pub fn assert_wff(&mut self, wff: &Wff) -> FormulaId {
        let atoms: Vec<AtomId> = wff.atom_set().into_iter().collect();
        for a in atoms {
            self.register_atom(a);
        }
        self.store.insert(wff)
    }

    /// Convenience: assert that `atom` holds.
    pub fn assert_atom(&mut self, atom: AtomId) -> FormulaId {
        self.assert_wff(&Wff::Atom(atom))
    }

    /// Convenience: assert that `atom` does not hold (registers it so its
    /// falsity is recorded rather than implied by completion).
    pub fn assert_not_atom(&mut self, atom: AtomId) -> FormulaId {
        self.assert_wff(&Wff::Atom(atom).not())
    }

    // ----- model-level operations ------------------------------------------

    /// Size of the atom universe (all interned atoms).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The wffs that constrain models: the live non-axiomatic section plus
    /// pinned-false units for atoms outside the completion axioms.
    pub fn model_constraints(&self) -> Vec<Wff> {
        let mut wffs = self.store.wffs();
        for (id, ga) in self.atoms.iter() {
            let kind = self.vocab.predicate(ga.pred).kind;
            let pinned_false = match kind {
                PredicateKind::PredicateConstant => !self.store.contains_atom(id),
                _ => !self.registry.is_registered(id),
            };
            if pinned_false {
                wffs.push(Wff::Atom(id).not());
            }
        }
        wffs
    }

    /// Projection mask selecting the externally visible atoms (registered,
    /// arity ≥ 1).
    pub fn visible_projection(&self) -> BitSet {
        let mut mask = BitSet::zeros(self.atoms.len());
        for (id, ga) in self.atoms.iter() {
            if self.vocab.predicate(ga.pred).kind.visible() && self.registry.is_registered(id) {
                mask.set(id.index(), true);
            }
        }
        mask
    }

    /// Enumerates the alternative worlds: models of the theory projected
    /// onto visible atoms, each world given as the bitset of true atoms.
    pub fn alternative_worlds(&self, limit: ModelLimit) -> Result<Vec<BitSet>, TheoryError> {
        let constraints = self.model_constraints();
        let refs: Vec<&Wff> = constraints.iter().collect();
        let proj = self.visible_projection();
        enumerate_models(&refs, self.num_atoms(), &proj, limit).map_err(TheoryError::from)
    }

    // ----- the incremental entailment session -----------------------------

    /// A monotone counter covering every semantic mutation of the theory:
    /// section inserts/removes/renames, completion-axiom registrations,
    /// schema changes, dependency additions, and growth of the atom
    /// universe or vocabulary. Each summand is itself monotone, so the sum
    /// strictly increases whenever any component changes — the cached
    /// session compares generations and rebuilds on mismatch.
    pub fn generation(&self) -> u64 {
        self.epoch
            + self.store.version()
            + self.registry.version()
            + self.schema.version()
            + self.deps.len() as u64
            + self.atoms.len() as u64
            + self.vocab.num_constants() as u64
            + self.vocab.num_predicates() as u64
    }

    /// Bumps the generation epoch until `self.generation() > floor`.
    ///
    /// Used when this theory value replaces another one whose generation
    /// it did not inherit (background compaction swaps a
    /// separately-simplified clone in for the live theory). Guarantees
    /// strict advance so no consumer keyed on the retired theory's
    /// generation can mistake the replacement for an unchanged theory.
    pub fn advance_generation_past(&mut self, floor: u64) {
        let current = self.generation();
        if current <= floor {
            self.epoch += floor - current + 1;
        }
    }

    /// Builds a fresh [`EntailmentSession`] over the current model
    /// constraints, bypassing the cache. Used for per-worker session
    /// clones in parallel query evaluation and by benchmarks.
    pub fn fresh_entailment_session(&self) -> EntailmentSession {
        let constraints = self.model_constraints();
        EntailmentSession::with_base(self.num_atoms(), constraints.iter())
    }

    /// Runs `f` against the cached entailment session, (re)building it
    /// first if none exists or the theory has mutated since it was built.
    pub fn with_entailment_session<R>(&self, f: impl FnOnce(&mut EntailmentSession) -> R) -> R {
        let generation = self.generation();
        let mut slot = self.session.lock();
        let stale = match &slot.cached {
            Some((g, _)) => *g != generation,
            None => true,
        };
        if stale {
            if let Some((_, old)) = slot.cached.take() {
                slot.invalidations += 1;
                let st = old.stats();
                slot.retired.base_wffs += st.base_wffs;
                slot.retired.encoded_wffs += st.encoded_wffs;
                slot.retired.encode_reuse_hits += st.encode_reuse_hits;
                slot.retired.assumption_solves += st.assumption_solves;
                slot.retired_learned += old.learned_retained();
            }
            slot.cached = Some((generation, self.fresh_entailment_session()));
            slot.rebuilds += 1;
        }
        let (_, session) = slot.cached.as_mut().expect("just ensured");
        f(session)
    }

    /// Cumulative session counters: retired sessions plus the live one.
    fn session_counters(&self) -> (u64, u64, SessionStats, u64) {
        let slot = self.session.lock();
        let mut total = slot.retired;
        let mut learned = slot.retired_learned;
        if let Some((_, s)) = &slot.cached {
            let st = s.stats();
            total.base_wffs += st.base_wffs;
            total.encoded_wffs += st.encoded_wffs;
            total.encode_reuse_hits += st.encode_reuse_hits;
            total.assumption_solves += st.assumption_solves;
            learned += s.learned_retained();
        }
        (slot.rebuilds, slot.invalidations, total, learned)
    }

    /// Whether the theory has at least one model.
    pub fn is_consistent(&self) -> bool {
        self.with_entailment_session(|s| s.is_consistent())
    }

    /// Whether every model of the theory satisfies `wff` (certain truth).
    pub fn entails(&self, wff: &Wff) -> bool {
        self.with_entailment_session(|s| s.entails(wff))
    }

    /// Computes the truth *backbone* of the theory over its atoms: for each
    /// interned atom, `Some(v)` when every model assigns it `v`, `None`
    /// when models disagree. Returns `Ok(None)` for an inconsistent theory.
    ///
    /// One incremental SAT session answers all atoms (learnt clauses are
    /// shared across the per-atom queries), so this is the efficient way to
    /// ask "which tuples are certain?" wholesale — used by the relational
    /// projections in `winslett-core`.
    pub fn atom_backbone(&self) -> Result<Option<Vec<Option<bool>>>, TheoryError> {
        // Activation literals of previously-encoded query wffs are free
        // variables that never constrain the atoms, so the backbone over
        // the first `num_atoms` variables is unaffected by session reuse.
        let n = self.num_atoms();
        Ok(self.with_entailment_session(|s| winslett_logic::backbone(s.solver_mut(), n)))
    }

    /// Projects a raw SAT model (which may carry Tseitin auxiliary
    /// variables beyond the atom universe) onto the visible atoms,
    /// yielding an alternative world. Shared by [`Theory::find_world_where`]
    /// and the snapshot readers in `winslett-core`, which extract worlds
    /// from their own per-connection sessions.
    pub fn project_model_to_world(&self, model: &[bool]) -> BitSet {
        let proj = self.visible_projection();
        let mut world = BitSet::zeros(self.num_atoms());
        for (i, &truth) in model.iter().enumerate().take(self.num_atoms()) {
            if truth && proj.get(i) {
                world.set(i, true);
            }
        }
        world
    }

    /// Finds one alternative world in which `wff` holds, if any — a
    /// *witness* for possibility (or, applied to `¬wff`, a counterexample
    /// to certainty). Returns the world projected onto visible atoms.
    pub fn find_world_where(&self, wff: &Wff) -> Option<BitSet> {
        let result = self.with_entailment_session(|s| {
            let l = s.literal_for(wff);
            s.solve_under(&[l])
        });
        match result {
            winslett_logic::SatResult::Sat(model) => Some(self.project_model_to_world(&model)),
            winslett_logic::SatResult::Unsat => None,
        }
    }

    /// Whether some model of the theory satisfies `wff` (possible truth).
    pub fn consistent_with(&self, wff: &Wff) -> bool {
        self.with_entailment_session(|s| s.consistent_with(wff))
    }

    // ----- §3.5 legality --------------------------------------------------

    /// Materializes the ground instance of the type axiom for a registered
    /// atom `P(c⃗)`: `P(c⃗) → A₁(c₁) ∧ … ∧ Aₙ(cₙ)`. Returns `None` for
    /// predicates without type axioms. Interns attribute atoms on demand.
    pub fn type_axiom_instance(&mut self, atom: AtomId) -> Option<Wff> {
        let ga = self.atoms.resolve(atom).clone();
        let attrs = self.schema.type_axiom(ga.pred)?.to_vec();
        let conjuncts: Vec<Wff> = attrs
            .iter()
            .zip(ga.args.iter())
            .map(|(&attr, &c)| {
                let a = self.atoms.intern(GroundAtom::new(attr, &[c]));
                Wff::Atom(a)
            })
            .collect();
        Some(Wff::implies(Wff::Atom(atom), Wff::and(conjuncts)))
    }

    /// Checks the §3.5 invariant: "removing the type and dependency axioms
    /// from T does not change the models of T" — i.e. every instantiated
    /// type/dependency axiom over the registered atoms is entailed by the
    /// rest of the theory. Returns the first counterexample.
    pub fn check_axioms_redundant(&mut self) -> Result<(), TheoryError> {
        // Type axioms: one instance per registered atom of a typed relation.
        let typed_atoms: Vec<AtomId> = self
            .registry
            .iter()
            .filter(|(p, _)| self.schema.type_axiom(*p).is_some())
            .map(|(_, a)| a)
            .collect();
        for atom in typed_atoms {
            if let Some(inst) = self.type_axiom_instance(atom) {
                if !self.entails(&inst) {
                    return Err(TheoryError::AxiomsNotRedundant {
                        axiom: format!("type axiom instance for atom {atom}"),
                    });
                }
            }
        }
        // Dependency axioms: all instantiations over registered atoms.
        let deps = self.deps.clone();
        for dep in &deps {
            let insts = dep.instantiate(&self.registry, &mut self.atoms, None);
            for inst in insts {
                if !self.entails(&inst) {
                    return Err(TheoryError::AxiomsNotRedundant {
                        axiom: dep.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Full legality check for an extended relational theory:
    ///
    /// 1. every atom occurring in the non-axiomatic section is either
    ///    registered in a completion axiom or a predicate constant (the §2
    ///    "is a disjunct iff appears elsewhere in T" rule);
    /// 2. type axioms reference declared attributes with matching arities
    ///    (enforced structurally at declaration — re-checked here);
    /// 3. the §3.5 invariant: removing the type and dependency axioms does
    ///    not change the models (every instance is entailed).
    ///
    /// Ground-ness and equality-freedom hold by construction ([`Wff`] has
    /// no variables or equality), so they need no runtime check.
    pub fn validate(&mut self) -> Result<(), TheoryError> {
        for a in self.store.live_atoms() {
            let ga = self.atoms.resolve(a);
            let kind = self.vocab.predicate(ga.pred).kind;
            if kind != PredicateKind::PredicateConstant && !self.registry.is_registered(a) {
                return Err(TheoryError::AxiomsNotRedundant {
                    axiom: format!(
                        "atom {} occurs in the section but not in any completion axiom",
                        ga.display(&self.vocab)
                    ),
                });
            }
        }
        for (rel, attrs) in self.schema.type_axioms() {
            let decl = self.vocab.predicate(rel);
            if decl.arity != attrs.len() {
                return Err(TheoryError::TypeAxiomArity {
                    relation: decl.name.clone(),
                    expected: decl.arity,
                    got: attrs.len(),
                });
            }
        }
        self.check_axioms_redundant()
    }

    // ----- reporting -------------------------------------------------------

    /// Current statistics (sizes, counts, the cost-model `R`).
    /// Current size of the non-axiomatic section in AST nodes — the §3.6
    /// store-size measure, exposed as a cheap accessor (no full
    /// [`TheoryStats`] construction) for growth-triggered hooks such as
    /// the WAL's snapshot compaction in `winslett-core`.
    pub fn store_nodes(&self) -> usize {
        self.store.size_nodes()
    }

    pub fn stats(&self) -> TheoryStats {
        let (rebuilds, invalidations, session, learned) = self.session_counters();
        TheoryStats {
            num_formulas: self.store.len(),
            store_nodes: self.store.size_nodes(),
            num_atoms: self.atoms.len(),
            num_registered: self.registry.len(),
            max_predicate_size: self.registry.max_predicate_size(),
            num_constants: self.vocab.num_constants(),
            num_predicates: self.vocab.num_predicates(),
            num_dependencies: self.deps.len(),
            session_rebuilds: rebuilds,
            session_invalidations: invalidations,
            session_assumption_solves: session.assumption_solves,
            session_encodes: session.encoded_wffs,
            session_encode_reuse_hits: session.encode_reuse_hits,
            session_learned_retained: learned,
        }
    }

    /// Renders a world bitset as sorted atom strings, for display/tests.
    pub fn format_world(&self, world: &BitSet) -> Vec<String> {
        let mut out: Vec<String> = world
            .ones()
            .map(|i| {
                self.atoms
                    .resolve(AtomId(i as u32))
                    .display(&self.vocab)
                    .to_string()
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::ModelLimit;

    /// The running example of §3.3: atoms a, b with non-axiomatic section
    /// {a, a ∨ b}.
    fn paper_theory() -> (Theory, AtomId, AtomId) {
        let mut t = Theory::new();
        let r = t.declare_relation("Tup", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_wff(&Wff::Atom(a));
        t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
        (t, a, b)
    }

    #[test]
    fn paper_theory_has_two_worlds() {
        let (t, a, b) = paper_theory();
        let worlds = t.alternative_worlds(ModelLimit::default()).unwrap();
        assert_eq!(worlds.len(), 2);
        let rendered: Vec<Vec<String>> = worlds.iter().map(|w| t.format_world(w)).collect();
        assert!(rendered.contains(&vec!["Tup(a)".to_string()]));
        assert!(rendered.contains(&vec!["Tup(a)".to_string(), "Tup(b)".to_string()]));
        let _ = (a, b);
    }

    #[test]
    fn unregistered_atoms_are_false_everywhere() {
        let (mut t, _, _) = paper_theory();
        // Intern but never use a third atom: completion forces it false.
        let cc = t.constant("c");
        let r = t.vocab.find_predicate("Tup").unwrap();
        let c = t.atom(r, &[cc]);
        let worlds = t.alternative_worlds(ModelLimit::default()).unwrap();
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().all(|w| !w.get(c.index())));
        assert!(!t.consistent_with(&Wff::Atom(c)));
        assert!(t.entails(&Wff::Atom(c).not()));
    }

    #[test]
    fn predicate_constants_are_invisible() {
        let (mut t, a, _) = paper_theory();
        let pc = t.vocab.fresh_predicate_constant();
        let pca = t.atoms.intern(GroundAtom::nullary(pc));
        // p ∨ a: p is free, but projection hides it, so worlds unchanged.
        t.assert_wff(&Wff::or2(Wff::Atom(pca), Wff::Atom(a)));
        let worlds = t.alternative_worlds(ModelLimit::default()).unwrap();
        assert_eq!(worlds.len(), 2);
        assert!(!t.visible_projection().get(pca.index()));
    }

    #[test]
    fn consistency_and_entailment() {
        let (mut t, a, b) = paper_theory();
        assert!(t.is_consistent());
        assert!(t.entails(&Wff::Atom(a)));
        assert!(!t.entails(&Wff::Atom(b)));
        assert!(t.consistent_with(&Wff::Atom(b)));
        assert!(t.consistent_with(&Wff::Atom(b).not()));
        // Make it inconsistent.
        t.assert_wff(&Wff::Atom(a).not());
        assert!(!t.is_consistent());
        assert!(t
            .alternative_worlds(ModelLimit::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn atom_by_name_errors() {
        let (mut t, _, _) = paper_theory();
        assert!(matches!(
            t.atom_by_name("Nope", &["a"]),
            Err(TheoryError::UnknownPredicate { .. })
        ));
        assert!(matches!(
            t.atom_by_name("Tup", &["a", "b"]),
            Err(TheoryError::ArityMismatch { .. })
        ));
        assert!(t.atom_by_name("Tup", &["a"]).is_ok());
    }

    #[test]
    fn type_axiom_instance_materializes() {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let quan = t.declare_attribute("Quan").unwrap();
        let instock = t.declare_typed_relation("InStock", &[part, quan]).unwrap();
        let c32 = t.constant("32");
        let c5 = t.constant("5");
        let atom = t.atom(instock, &[c32, c5]);
        let inst = t.type_axiom_instance(atom).unwrap();
        // InStock(32,5) → PartNo(32) ∧ Quan(5)
        match inst {
            Wff::Implies(lhs, rhs) => {
                assert_eq!(*lhs, Wff::Atom(atom));
                assert!(matches!(*rhs, Wff::And(ref v) if v.len() == 2));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // Untyped relations yield no instance.
        let r = t.declare_relation("Untyped", 1).unwrap();
        let u = t.atom(r, &[c32]);
        assert!(t.type_axiom_instance(u).is_none());
    }

    #[test]
    fn axiom_redundancy_check_detects_violation() {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let instock = t.declare_typed_relation("InStock1", &[part]).unwrap();
        let c = t.constant("32");
        let atom = t.atom(instock, &[c]);
        // Assert InStock1(32) without PartNo(32): the type axiom instance
        // is not entailed.
        t.assert_atom(atom);
        assert!(matches!(
            t.check_axioms_redundant(),
            Err(TheoryError::AxiomsNotRedundant { .. })
        ));
        // Now assert the attribute too; the instance becomes entailed.
        let pa = t.atom(part, &[c]);
        t.assert_atom(pa);
        assert!(t.check_axioms_redundant().is_ok());
    }

    #[test]
    fn dependency_redundancy_check() {
        use crate::deps::Dependency;
        let mut t = Theory::new();
        let p = t.declare_relation("P", 1).unwrap();
        let q = t.declare_relation("Q", 1).unwrap();
        t.add_dependency(Dependency::inclusion("inc", p, 1, q, &[0]).unwrap());
        let ca = t.constant("a");
        let pa = t.atom(p, &[ca]);
        t.assert_atom(pa);
        // P(a) asserted but P(a) → Q(a) is not entailed (Q(a) unregistered
        // hence false): violation.
        assert!(matches!(
            t.check_axioms_redundant(),
            Err(TheoryError::AxiomsNotRedundant { .. })
        ));
        let qa = t.atom(q, &[ca]);
        t.assert_atom(qa);
        assert!(t.check_axioms_redundant().is_ok());
    }

    #[test]
    fn validate_accepts_legal_theories_and_flags_illegal() {
        let (mut t, _, _) = paper_theory();
        assert!(t.validate().is_ok());
        // GUA residue (predicate constants in the section) is legal.
        let pc = t.vocab.fresh_predicate_constant();
        let pca = t.atoms.intern(GroundAtom::nullary(pc));
        t.store.insert(&Wff::Atom(pca).not());
        assert!(t.validate().is_ok());
        // But a visible atom smuggled into the store without registration
        // violates the completion-axiom rule.
        let r = t.vocab.find_predicate("Tup").unwrap();
        let cz = t.constant("z");
        let z = t.atom(r, &[cz]);
        t.store.insert(&Wff::Atom(z)); // bypasses assert_wff on purpose
        assert!(matches!(
            t.validate(),
            Err(TheoryError::AxiomsNotRedundant { .. })
        ));
    }

    #[test]
    fn stats_reflect_contents() {
        let (t, _, _) = paper_theory();
        let s = t.stats();
        assert_eq!(s.num_formulas, 2);
        assert_eq!(s.num_atoms, 2);
        assert_eq!(s.num_registered, 2);
        assert_eq!(s.max_predicate_size, 2);
        assert!(s.store_nodes >= 4);
    }

    #[test]
    fn generation_bumps_on_every_mutation_class() {
        let mut t = Theory::new();
        let g0 = t.generation();
        let r = t.declare_relation("P", 1).unwrap();
        let g1 = t.generation();
        assert!(g1 > g0, "predicate declaration must bump");
        let c = t.constant("a");
        let g2 = t.generation();
        assert!(g2 > g1, "constant interning must bump");
        let atom = t.atom(r, &[c]);
        let g3 = t.generation();
        assert!(g3 > g2, "atom interning must bump");
        t.register_atom(atom);
        let g4 = t.generation();
        assert!(g4 > g3, "registration must bump");
        let id = t.assert_wff(&Wff::Atom(atom));
        let g5 = t.generation();
        assert!(g5 > g4, "section insert must bump");
        t.store.remove(id);
        let g6 = t.generation();
        assert!(g6 > g5, "section remove must bump");
        t.store.replace_all(&[Wff::Atom(atom)]);
        let g7 = t.generation();
        assert!(g7 > g6, "replace_all must bump");
        let attr = t.declare_attribute("A").unwrap();
        let g8 = t.generation();
        assert!(g8 > g7, "attribute declaration must bump");
        t.declare_typed_relation("Q", &[attr]).unwrap();
        let g9 = t.generation();
        assert!(g9 > g8, "type axiom must bump");
        t.add_dependency(crate::deps::Dependency::inclusion("d", r, 1, r, &[0]).unwrap());
        assert!(t.generation() > g9, "dependency must bump");
        // Read-only operations must not bump.
        let g = t.generation();
        let _ = t.is_consistent();
        let _ = t.stats();
        assert_eq!(t.generation(), g);
    }

    #[test]
    fn advance_generation_past_forces_strict_advance() {
        let (t, _, _) = paper_theory();
        // A clone shares every component counter, so its generation ties
        // the original's — exactly the case the epoch exists to break.
        let mut clone = t.clone();
        assert_eq!(clone.generation(), t.generation());
        clone.advance_generation_past(t.generation());
        assert!(clone.generation() > t.generation());
        // Already past the floor: a no-op, never a regression.
        let g = clone.generation();
        clone.advance_generation_past(0);
        assert_eq!(clone.generation(), g);
        // Large floors are cleared in one step.
        clone.advance_generation_past(g + 1000);
        assert!(clone.generation() > g + 1000);
    }

    #[test]
    fn cached_session_invalidates_on_mutation() {
        let (mut t, a, b) = paper_theory();
        assert!(t.entails(&Wff::Atom(a)));
        assert!(!t.entails(&Wff::Atom(b)));
        // Mutate: the cached session must not serve stale answers.
        t.assert_wff(&Wff::Atom(b));
        assert!(t.entails(&Wff::Atom(b)));
        let stats = t.stats();
        assert_eq!(stats.session_rebuilds, 2);
        assert_eq!(stats.session_invalidations, 1);
        assert!(stats.session_assumption_solves >= 3);
        // Asking the same wff again reuses its activation literal.
        assert!(t.entails(&Wff::Atom(b)));
        assert!(t.stats().session_encode_reuse_hits >= 1);
    }

    #[test]
    fn rename_invalidates_cached_session() {
        let (mut t, a, b) = paper_theory();
        assert!(t.entails(&Wff::Atom(a)));
        // Rename a → b in the section: {b, b ∨ b}; a becomes unregistered
        // only in the store, but the session must re-read the section.
        t.store.rename_atom(a, b);
        assert!(t.entails(&Wff::Atom(b)));
        assert!(!t.entails(&Wff::Atom(a)));
    }

    #[test]
    fn clone_gives_independent_theory() {
        let (mut t, a, _) = paper_theory();
        let snapshot = t.clone();
        t.assert_wff(&Wff::Atom(a).not());
        assert!(!t.is_consistent());
        assert!(snapshot.is_consistent());
    }
}
