//! Database schemas and type axioms (§3.5, item 4).
//!
//! A schema distinguishes a set `A` of unary *attribute* predicates and,
//! for each relation `P` of arity `n`, optionally one type axiom
//!
//! ```text
//! ∀x₁…xₙ ( P(x₁,…,xₙ) → A₁(x₁) ∧ … ∧ Aₙ(xₙ) )
//! ```
//!
//! Theories *without* type axioms (the §2 base case) simply declare
//! relations untyped.

use crate::error::TheoryError;
use rustc_hash::FxHashMap;
use winslett_logic::{PredId, PredicateKind, Vocabulary};

/// The schema: declared attributes and per-relation type axioms.
#[derive(Clone, Default, Debug)]
pub struct Schema {
    /// Declared attribute predicates, in declaration order.
    attributes: Vec<PredId>,
    /// Type axiom for each typed relation: the attribute predicate of each
    /// argument position.
    type_axioms: FxHashMap<PredId, Vec<PredId>>,
    /// Bumped on every mutation; feeds
    /// [`Theory::generation`](crate::Theory).
    version: u64,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `pred` as an attribute (must be unary). Idempotent.
    pub fn add_attribute(&mut self, pred: PredId, vocab: &Vocabulary) -> Result<(), TheoryError> {
        let decl = vocab.predicate(pred);
        if decl.arity != 1 || decl.kind != PredicateKind::Attribute {
            return Err(TheoryError::NotAnAttribute {
                name: decl.name.clone(),
            });
        }
        if !self.attributes.contains(&pred) {
            self.attributes.push(pred);
            self.version += 1;
        }
        Ok(())
    }

    /// Monotone mutation counter: strictly increases on every schema
    /// change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Installs the type axiom for `relation`: argument `i` ranges over
    /// `attrs[i]`. All `attrs` must be declared attributes.
    pub fn set_type_axiom(
        &mut self,
        relation: PredId,
        attrs: Vec<PredId>,
        vocab: &Vocabulary,
    ) -> Result<(), TheoryError> {
        let decl = vocab.predicate(relation);
        if decl.arity != attrs.len() {
            return Err(TheoryError::TypeAxiomArity {
                relation: decl.name.clone(),
                expected: decl.arity,
                got: attrs.len(),
            });
        }
        for &a in &attrs {
            if !self.attributes.contains(&a) {
                return Err(TheoryError::NotAnAttribute {
                    name: vocab.predicate(a).name.clone(),
                });
            }
        }
        self.type_axioms.insert(relation, attrs);
        self.version += 1;
        Ok(())
    }

    /// The type axiom of `relation`, if one is declared.
    pub fn type_axiom(&self, relation: PredId) -> Option<&[PredId]> {
        self.type_axioms.get(&relation).map(Vec::as_slice)
    }

    /// Whether any type axioms are declared.
    pub fn has_type_axioms(&self) -> bool {
        !self.type_axioms.is_empty()
    }

    /// Declared attributes in declaration order.
    pub fn attributes(&self) -> &[PredId] {
        &self.attributes
    }

    /// Whether `pred` is a declared attribute.
    pub fn is_attribute(&self, pred: PredId) -> bool {
        self.attributes.contains(&pred)
    }

    /// Iterates over `(relation, attrs)` type-axiom pairs.
    pub fn type_axioms(&self) -> impl Iterator<Item = (PredId, &[PredId])> {
        self.type_axioms.iter().map(|(&p, a)| (p, a.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::PredicateKind;

    fn vocab() -> (Vocabulary, PredId, PredId, PredId) {
        let mut v = Vocabulary::new();
        let part = v
            .declare_predicate("PartNo", 1, PredicateKind::Attribute)
            .unwrap();
        let quan = v
            .declare_predicate("Quan", 1, PredicateKind::Attribute)
            .unwrap();
        let instock = v
            .declare_predicate("InStock", 2, PredicateKind::Relation)
            .unwrap();
        (v, part, quan, instock)
    }

    #[test]
    fn declare_attributes_and_type_axiom() {
        let (v, part, quan, instock) = vocab();
        let mut s = Schema::new();
        s.add_attribute(part, &v).unwrap();
        s.add_attribute(quan, &v).unwrap();
        s.set_type_axiom(instock, vec![part, quan], &v).unwrap();
        assert_eq!(s.type_axiom(instock), Some(&[part, quan][..]));
        assert!(s.has_type_axioms());
        assert!(s.is_attribute(part));
        assert!(!s.is_attribute(instock));
    }

    #[test]
    fn non_unary_predicate_rejected_as_attribute() {
        let (v, _, _, instock) = vocab();
        let mut s = Schema::new();
        assert!(matches!(
            s.add_attribute(instock, &v),
            Err(TheoryError::NotAnAttribute { .. })
        ));
    }

    #[test]
    fn type_axiom_arity_checked() {
        let (v, part, _, instock) = vocab();
        let mut s = Schema::new();
        s.add_attribute(part, &v).unwrap();
        assert!(matches!(
            s.set_type_axiom(instock, vec![part], &v),
            Err(TheoryError::TypeAxiomArity {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn type_axiom_requires_declared_attributes() {
        let (v, part, quan, instock) = vocab();
        let mut s = Schema::new();
        s.add_attribute(part, &v).unwrap();
        // `quan` not declared as attribute in the schema yet.
        assert!(matches!(
            s.set_type_axiom(instock, vec![part, quan], &v),
            Err(TheoryError::NotAnAttribute { .. })
        ));
    }

    #[test]
    fn untyped_relations_have_no_axiom() {
        let (_, _, _, instock) = vocab();
        let s = Schema::new();
        assert_eq!(s.type_axiom(instock), None);
        assert!(!s.has_type_axioms());
    }
}
