//! Dependency axioms (§3.5, item 5).
//!
//! The paper considers "universally quantified dependencies of a template
//! form": `∀x₁…xₙ (α → β)` where `α` is a conjunction of atomic formulas
//! `g₁…gₘ`, `β` is quantifier-free, and every `xᵢ` appears in `α`.
//! [`Dependency`] is that template language, with convenience constructors
//! for the three families the paper costs out in §3.6: functional,
//! relation-inclusion, and multivalued dependencies.
//!
//! Instantiation (GUA Step 6) substitutes constants for variables "for
//! those ground atomic formulas that unify with gᵢ of α": we match body
//! patterns against the registered atoms of the completion registry, with
//! an optional *trigger* atom that must occupy one body position — this is
//! what makes the best case `O(g log R)` (no conflicts: the trigger fails
//! to join with anything) versus the `O(gR)` worst case (the trigger joins
//! with every tuple of the relation).
//!
//! Equality in instantiated heads is resolved immediately by the
//! unique-name axioms: `c₁ = c₂` becomes `T` iff the constants are
//! identical, so instantiated dependencies are ordinary ground wffs.

use crate::error::TheoryError;
use crate::registry::CompletionRegistry;
use rustc_hash::{FxHashMap, FxHashSet};
use winslett_logic::{AtomId, AtomTable, ConstId, GroundAtom, PredId, Wff};

/// A term in a dependency template: a universally quantified variable or a
/// constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Variable `x_i` (0-based).
    Var(u16),
    /// A constant of the language.
    Cst(ConstId),
}

/// An atomic formula pattern `P(t₁,…,tₙ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AtomPattern {
    /// The predicate.
    pub pred: PredId,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl AtomPattern {
    /// Builds a pattern.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        AtomPattern { pred, args }
    }

    fn vars(&self, out: &mut FxHashSet<u16>) {
        for t in &self.args {
            if let Term::Var(v) = t {
                out.insert(*v);
            }
        }
    }
}

/// The quantifier-free consequent `β` of a template dependency.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeadFormula {
    /// A truth constant.
    Truth(bool),
    /// An atomic formula.
    Atom(AtomPattern),
    /// Equality between terms — resolved by unique names at instantiation.
    Eq(Term, Term),
    /// Negation.
    Not(Box<HeadFormula>),
    /// Conjunction.
    And(Vec<HeadFormula>),
    /// Disjunction.
    Or(Vec<HeadFormula>),
}

impl HeadFormula {
    fn vars(&self, out: &mut FxHashSet<u16>) {
        match self {
            HeadFormula::Truth(_) => {}
            HeadFormula::Atom(a) => a.vars(out),
            HeadFormula::Eq(s, t) => {
                for t in [s, t] {
                    if let Term::Var(v) = t {
                        out.insert(*v);
                    }
                }
            }
            HeadFormula::Not(x) => x.vars(out),
            HeadFormula::And(xs) | HeadFormula::Or(xs) => {
                for x in xs {
                    x.vars(out);
                }
            }
        }
    }
}

/// A template dependency `∀x⃗ (g₁ ∧ … ∧ gₘ → β)`.
///
/// ```
/// use winslett_theory::{Dependency, Theory};
///
/// let mut t = Theory::new();
/// let price = t.declare_relation("Price", 2)?;
/// // The paper's FD shape: ∀x₁x₂x₃ ((P(x₁,x₂) ∧ P(x₁,x₃)) → x₂ = x₃).
/// let fd = Dependency::functional("price-fd", price, 2, &[0])?;
/// t.add_dependency(fd);
/// # Ok::<(), winslett_theory::TheoryError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dependency {
    /// Human-readable label, used in error messages and transcripts.
    pub name: String,
    /// Number of distinct variables.
    pub num_vars: u16,
    /// The body `α`: a nonempty conjunction of atom patterns containing
    /// every variable.
    pub body: Vec<AtomPattern>,
    /// The head `β`.
    pub head: HeadFormula,
}

impl Dependency {
    /// Builds and validates a template dependency: the body must be
    /// nonempty and every variable (in body or head) must occur in the
    /// body, per §3.5 ("x₁ through xₙ appear in α").
    pub fn new(
        name: impl Into<String>,
        num_vars: u16,
        body: Vec<AtomPattern>,
        head: HeadFormula,
    ) -> Result<Self, TheoryError> {
        if body.is_empty() {
            return Err(TheoryError::MalformedDependency {
                message: "body must be a nonempty conjunction".into(),
            });
        }
        let mut body_vars = FxHashSet::default();
        for g in &body {
            g.vars(&mut body_vars);
        }
        let mut head_vars = FxHashSet::default();
        head.vars(&mut head_vars);
        for v in body_vars.iter().chain(head_vars.iter()) {
            if *v >= num_vars {
                return Err(TheoryError::MalformedDependency {
                    message: format!("variable x{v} out of range (num_vars = {num_vars})"),
                });
            }
        }
        if let Some(v) = head_vars.difference(&body_vars).next() {
            return Err(TheoryError::MalformedDependency {
                message: format!("head variable x{v} does not appear in the body"),
            });
        }
        Ok(Dependency {
            name: name.into(),
            num_vars,
            body,
            head,
        })
    }

    /// A functional dependency on `pred` (arity `arity`): the columns in
    /// `key` determine all other columns. E.g. the paper's
    /// `∀x₁x₂x₃ ((P(x₁,x₂) ∧ P(x₁,x₃)) → x₂ = x₃)` is
    /// `functional("fd", p, 2, &[0])`.
    pub fn functional(
        name: impl Into<String>,
        pred: PredId,
        arity: usize,
        key: &[usize],
    ) -> Result<Self, TheoryError> {
        let mut args1 = Vec::with_capacity(arity);
        let mut args2 = Vec::with_capacity(arity);
        let mut eqs = Vec::new();
        let mut next_var = 0u16;
        for i in 0..arity {
            let v1 = next_var;
            next_var += 1;
            args1.push(Term::Var(v1));
            if key.contains(&i) {
                args2.push(Term::Var(v1));
            } else {
                let v2 = next_var;
                next_var += 1;
                args2.push(Term::Var(v2));
                eqs.push(HeadFormula::Eq(Term::Var(v1), Term::Var(v2)));
            }
        }
        let head = match eqs.len() {
            0 => HeadFormula::Truth(true),
            1 => eqs.pop().expect("len checked"),
            _ => HeadFormula::And(eqs),
        };
        Dependency::new(
            name,
            next_var,
            vec![AtomPattern::new(pred, args1), AtomPattern::new(pred, args2)],
            head,
        )
    }

    /// A relation-inclusion dependency: `∀x⃗ (P(x⃗) → Q(x_{cols}))`. E.g.
    /// the paper's `∀x (P(x) → Q(x))` is `inclusion("inc", p, 1, q, &[0])`.
    pub fn inclusion(
        name: impl Into<String>,
        from: PredId,
        from_arity: usize,
        to: PredId,
        cols: &[usize],
    ) -> Result<Self, TheoryError> {
        for &c in cols {
            if c >= from_arity {
                return Err(TheoryError::MalformedDependency {
                    message: format!("inclusion column {c} out of range"),
                });
            }
        }
        let body_args: Vec<Term> = (0..from_arity as u16).map(Term::Var).collect();
        let head_args: Vec<Term> = cols.iter().map(|&c| Term::Var(c as u16)).collect();
        Dependency::new(
            name,
            from_arity as u16,
            vec![AtomPattern::new(from, body_args)],
            HeadFormula::Atom(AtomPattern::new(to, head_args)),
        )
    }

    /// A multivalued dependency `X ↠ Y` on `pred`: whenever two tuples
    /// agree on the `x_cols`, swapping their `y_cols` blocks also yields a
    /// tuple: `∀ (P(x,y,z) ∧ P(x,y′,z′) → P(x,y,z′))`.
    pub fn multivalued(
        name: impl Into<String>,
        pred: PredId,
        arity: usize,
        x_cols: &[usize],
        y_cols: &[usize],
    ) -> Result<Self, TheoryError> {
        let mut t1 = Vec::with_capacity(arity);
        let mut t2 = Vec::with_capacity(arity);
        let mut head = Vec::with_capacity(arity);
        let mut next_var = 0u16;
        for i in 0..arity {
            if x_cols.contains(&i) {
                let v = next_var;
                next_var += 1;
                t1.push(Term::Var(v));
                t2.push(Term::Var(v));
                head.push(Term::Var(v));
            } else {
                let v1 = next_var;
                next_var += 1;
                let v2 = next_var;
                next_var += 1;
                t1.push(Term::Var(v1));
                t2.push(Term::Var(v2));
                // Y columns come from tuple 1, the rest (Z) from tuple 2.
                head.push(Term::Var(if y_cols.contains(&i) { v1 } else { v2 }));
            }
        }
        Dependency::new(
            name,
            next_var,
            vec![AtomPattern::new(pred, t1), AtomPattern::new(pred, t2)],
            HeadFormula::Atom(AtomPattern::new(pred, head)),
        )
    }

    /// Enumerates the ground instantiations `(α → β)θ` over the registered
    /// atoms. If `trigger` is given, only instantiations where at least one
    /// body pattern matches the trigger atom are produced — the GUA Step 6
    /// restriction to atoms touched by the update. Head atoms are interned
    /// on demand (they may be new, per Step 7); instantiated equalities are
    /// folded to truth values by unique names; instances whose head folds
    /// to `T` are dropped as vacuous.
    pub fn instantiate(
        &self,
        registry: &CompletionRegistry,
        atoms: &mut AtomTable,
        trigger: Option<AtomId>,
    ) -> Vec<Wff> {
        let mut out: Vec<Wff> = Vec::new();
        let mut seen: FxHashSet<Vec<Option<ConstId>>> = FxHashSet::default();
        let mut env: Vec<Option<ConstId>> = vec![None; self.num_vars as usize];

        match trigger {
            None => {
                self.match_from(
                    0,
                    usize::MAX,
                    registry,
                    atoms,
                    &mut env,
                    &mut seen,
                    &mut out,
                );
            }
            Some(t) => {
                let ground = atoms.resolve(t).clone();
                // Try pinning the trigger at each body position in turn.
                for pin in 0..self.body.len() {
                    if ground.pred != self.body[pin].pred {
                        continue;
                    }
                    let mut trail = Vec::new();
                    if unify(&self.body[pin], &ground, &mut env, &mut trail) {
                        self.match_from(0, pin, registry, atoms, &mut env, &mut seen, &mut out);
                    }
                    undo(&mut env, trail);
                }
                // Also trigger through the head: an update that changes an
                // atom matching a head pattern can invalidate instances
                // whose body atoms are all old (the paper's example of
                // deleting Q(a) while P(a) remains, under P ⊆ Q).
                let mut head_patterns = Vec::new();
                collect_head_patterns(&self.head, &mut head_patterns);
                for pattern in head_patterns {
                    if ground.pred != pattern.pred {
                        continue;
                    }
                    let mut trail = Vec::new();
                    if unify(&pattern, &ground, &mut env, &mut trail) {
                        // No body position pinned; body matched over the
                        // registry under the head-derived bindings.
                        self.match_from(
                            0,
                            usize::MAX,
                            registry,
                            atoms,
                            &mut env,
                            &mut seen,
                            &mut out,
                        );
                    }
                    undo(&mut env, trail);
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn match_from(
        &self,
        pos: usize,
        pinned: usize,
        registry: &CompletionRegistry,
        atoms: &mut AtomTable,
        env: &mut Vec<Option<ConstId>>,
        seen: &mut FxHashSet<Vec<Option<ConstId>>>,
        out: &mut Vec<Wff>,
    ) {
        if pos == self.body.len() {
            if seen.insert(env.clone()) {
                if let Some(wff) = self.emit(env, atoms) {
                    out.push(wff);
                }
            }
            return;
        }
        if pos == pinned {
            // Already bound by the trigger.
            self.match_from(pos + 1, pinned, registry, atoms, env, seen, out);
            return;
        }
        let pattern = &self.body[pos];
        let candidates: Vec<AtomId> = registry.atoms_of(pattern.pred).collect();
        for cand in candidates {
            let ground = atoms.resolve(cand).clone();
            let mut trail = Vec::new();
            if unify(pattern, &ground, env, &mut trail) {
                self.match_from(pos + 1, pinned, registry, atoms, env, seen, out);
            }
            undo(env, trail);
        }
    }

    /// Builds the ground wff for a complete environment. Returns `None` for
    /// vacuous instances (head folds to `T`).
    fn emit(&self, env: &[Option<ConstId>], atoms: &mut AtomTable) -> Option<Wff> {
        let head = self.instantiate_head(&self.head, env, atoms);
        let head = head.fold_constants();
        if head == Wff::t() {
            return None;
        }
        let body: Vec<Wff> = self
            .body
            .iter()
            .map(|g| {
                let ground = instantiate_atom(g, env);
                Wff::Atom(atoms.intern(ground))
            })
            .collect();
        Some(Wff::implies(Wff::and(body), head))
    }

    fn instantiate_head(
        &self,
        h: &HeadFormula,
        env: &[Option<ConstId>],
        atoms: &mut AtomTable,
    ) -> Wff {
        match h {
            HeadFormula::Truth(b) => Wff::Truth(*b),
            HeadFormula::Atom(a) => {
                let ground = instantiate_atom(a, env);
                Wff::Atom(atoms.intern(ground))
            }
            HeadFormula::Eq(s, t) => {
                let cs = resolve_term(*s, env);
                let ct = resolve_term(*t, env);
                // Unique-name axioms: distinct constants are unequal.
                Wff::Truth(cs == ct)
            }
            HeadFormula::Not(x) => self.instantiate_head(x, env, atoms).not(),
            HeadFormula::And(xs) => Wff::and(
                xs.iter()
                    .map(|x| self.instantiate_head(x, env, atoms))
                    .collect(),
            ),
            HeadFormula::Or(xs) => Wff::or(
                xs.iter()
                    .map(|x| self.instantiate_head(x, env, atoms))
                    .collect(),
            ),
        }
    }
}

impl Dependency {
    /// Whether every instantiation of this dependency holds in a total
    /// world (a bitset of true atoms over `atoms`). Used by the
    /// possible-worlds baseline to implement "rule 3" of the augmented
    /// update semantics (§3.5): produced models must satisfy the
    /// dependency axioms.
    pub fn holds_in_world(&self, world: &winslett_logic::BitSet, atoms: &AtomTable) -> bool {
        // Group the world's true atoms by predicate.
        let mut by_pred: FxHashMap<PredId, Vec<GroundAtom>> = FxHashMap::default();
        for i in world.ones() {
            if i < atoms.len() {
                let ga = atoms.resolve(AtomId(i as u32));
                by_pred.entry(ga.pred).or_default().push(ga.clone());
            }
        }
        let mut env: Vec<Option<ConstId>> = vec![None; self.num_vars as usize];
        self.holds_from(0, &by_pred, world, atoms, &mut env)
    }

    fn holds_from(
        &self,
        pos: usize,
        by_pred: &FxHashMap<PredId, Vec<GroundAtom>>,
        world: &winslett_logic::BitSet,
        atoms: &AtomTable,
        env: &mut Vec<Option<ConstId>>,
    ) -> bool {
        if pos == self.body.len() {
            return self.head_true_in_world(&self.head, env, world, atoms);
        }
        let pattern = &self.body[pos];
        let Some(candidates) = by_pred.get(&pattern.pred) else {
            return true; // body unsatisfiable: instance vacuously holds
        };
        for ground in candidates {
            let mut trail = Vec::new();
            if unify(pattern, ground, env, &mut trail) {
                let ok = self.holds_from(pos + 1, by_pred, world, atoms, env);
                undo(env, trail);
                if !ok {
                    return false;
                }
            } else {
                undo(env, trail);
            }
        }
        true
    }

    fn head_true_in_world(
        &self,
        h: &HeadFormula,
        env: &[Option<ConstId>],
        world: &winslett_logic::BitSet,
        atoms: &AtomTable,
    ) -> bool {
        match h {
            HeadFormula::Truth(b) => *b,
            HeadFormula::Atom(a) => {
                let ground = instantiate_atom(a, env);
                // Atoms that were never interned cannot be true.
                atoms
                    .get(&ground)
                    .map(|id| world.get(id.index()))
                    .unwrap_or(false)
            }
            HeadFormula::Eq(s, t) => resolve_term(*s, env) == resolve_term(*t, env),
            HeadFormula::Not(x) => !self.head_true_in_world(x, env, world, atoms),
            HeadFormula::And(xs) => xs
                .iter()
                .all(|x| self.head_true_in_world(x, env, world, atoms)),
            HeadFormula::Or(xs) => xs
                .iter()
                .any(|x| self.head_true_in_world(x, env, world, atoms)),
        }
    }
}

fn collect_head_patterns(h: &HeadFormula, out: &mut Vec<AtomPattern>) {
    match h {
        HeadFormula::Truth(_) | HeadFormula::Eq(_, _) => {}
        HeadFormula::Atom(a) => out.push(a.clone()),
        HeadFormula::Not(x) => collect_head_patterns(x, out),
        HeadFormula::And(xs) | HeadFormula::Or(xs) => {
            for x in xs {
                collect_head_patterns(x, out);
            }
        }
    }
}

fn resolve_term(t: Term, env: &[Option<ConstId>]) -> ConstId {
    match t {
        Term::Cst(c) => c,
        Term::Var(v) => env[v as usize].expect("complete environment"),
    }
}

fn instantiate_atom(p: &AtomPattern, env: &[Option<ConstId>]) -> GroundAtom {
    let args: Vec<ConstId> = p.args.iter().map(|&t| resolve_term(t, env)).collect();
    GroundAtom::new(p.pred, &args)
}

/// Unifies a pattern against a ground atom, extending `env`; bindings made
/// here are recorded on `trail` for backtracking.
fn unify(
    pattern: &AtomPattern,
    ground: &GroundAtom,
    env: &mut [Option<ConstId>],
    trail: &mut Vec<u16>,
) -> bool {
    if pattern.pred != ground.pred || pattern.args.len() != ground.args.len() {
        return false;
    }
    for (t, &c) in pattern.args.iter().zip(ground.args.iter()) {
        match t {
            Term::Cst(k) => {
                if *k != c {
                    return false;
                }
            }
            Term::Var(v) => match env[*v as usize] {
                Some(bound) => {
                    if bound != c {
                        return false;
                    }
                }
                None => {
                    env[*v as usize] = Some(c);
                    trail.push(*v);
                }
            },
        }
    }
    true
}

fn undo(env: &mut [Option<ConstId>], trail: Vec<u16>) {
    for v in trail {
        env[v as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::{PredicateKind, Vocabulary};

    struct Fixture {
        vocab: Vocabulary,
        atoms: AtomTable,
        registry: CompletionRegistry,
        p: PredId,
        q: PredId,
    }

    fn fixture() -> Fixture {
        let mut vocab = Vocabulary::new();
        let p = vocab
            .declare_predicate("P", 2, PredicateKind::Relation)
            .unwrap();
        let q = vocab
            .declare_predicate("Q", 1, PredicateKind::Relation)
            .unwrap();
        Fixture {
            vocab,
            atoms: AtomTable::new(),
            registry: CompletionRegistry::new(),
            p,
            q,
        }
    }

    impl Fixture {
        fn add_p(&mut self, a: &str, b: &str) -> AtomId {
            let ca = self.vocab.constant(a);
            let cb = self.vocab.constant(b);
            let id = self.atoms.intern_app(self.p, &[ca, cb]);
            self.registry.register(self.p, id, &[ca, cb]);
            id
        }

        fn add_q(&mut self, a: &str) -> AtomId {
            let ca = self.vocab.constant(a);
            let id = self.atoms.intern_app(self.q, &[ca]);
            self.registry.register(self.q, id, &[ca]);
            id
        }
    }

    #[test]
    fn validation_rejects_head_only_vars() {
        let f = fixture();
        let dep = Dependency::new(
            "bad",
            2,
            vec![AtomPattern::new(f.q, vec![Term::Var(0)])],
            HeadFormula::Atom(AtomPattern::new(f.q, vec![Term::Var(1)])),
        );
        assert!(matches!(dep, Err(TheoryError::MalformedDependency { .. })));
    }

    #[test]
    fn validation_rejects_empty_body() {
        let dep = Dependency::new("bad", 0, vec![], HeadFormula::Truth(true));
        assert!(matches!(dep, Err(TheoryError::MalformedDependency { .. })));
    }

    #[test]
    fn validation_rejects_out_of_range_vars() {
        let f = fixture();
        let dep = Dependency::new(
            "bad",
            1,
            vec![AtomPattern::new(f.q, vec![Term::Var(3)])],
            HeadFormula::Truth(true),
        );
        assert!(matches!(dep, Err(TheoryError::MalformedDependency { .. })));
    }

    #[test]
    fn inclusion_dependency_instantiates_per_tuple() {
        // ∀x (Q(x) → Q'(x)) analogue: P(x,y) → Q(x).
        let mut f = fixture();
        f.add_p("a", "b");
        f.add_p("c", "d");
        let dep = Dependency::inclusion("inc", f.p, 2, f.q, &[0]).unwrap();
        let insts = dep.instantiate(&f.registry, &mut f.atoms, None);
        assert_eq!(insts.len(), 2);
        for w in &insts {
            assert!(matches!(w, Wff::Implies(_, _)));
        }
    }

    #[test]
    fn fd_instantiates_conflicting_pairs_only() {
        // FD: first column determines second. Tuples (a,b), (a,c), (x,y).
        let mut f = fixture();
        f.add_p("a", "b");
        f.add_p("a", "c");
        f.add_p("x", "y");
        let dep = Dependency::functional("fd", f.p, 2, &[0]).unwrap();
        let insts = dep.instantiate(&f.registry, &mut f.atoms, None);
        // Matching pairs on key `a`: (ab,ac) and (ac,ab) give head F
        // (b ≠ c); identical pairs (ab,ab) etc. give head T and are
        // dropped. Cross-key pairs don't unify. So exactly 2 instances.
        assert_eq!(insts.len(), 2);
        for w in &insts {
            // Head must have folded to F: the instance is ¬(body) in effect.
            match w {
                Wff::Implies(_, head) => assert_eq!(**head, Wff::f()),
                other => panic!("unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn fd_trigger_restricts_to_joining_tuples() {
        let mut f = fixture();
        let t_ab = f.add_p("a", "b");
        f.add_p("a", "c");
        f.add_p("x", "y");
        let dep = Dependency::functional("fd", f.p, 2, &[0]).unwrap();
        let insts = dep.instantiate(&f.registry, &mut f.atoms, Some(t_ab));
        // Trigger (a,b) joins with (a,c) in either body position: 2
        // instances.
        assert_eq!(insts.len(), 2);
        // A trigger with a unique key joins with nothing but itself.
        let t_xy = f
            .atoms
            .get(&GroundAtom::new(
                f.p,
                &[
                    f.vocab.find_constant("x").unwrap(),
                    f.vocab.find_constant("y").unwrap(),
                ],
            ))
            .unwrap();
        let insts = dep.instantiate(&f.registry, &mut f.atoms, Some(t_xy));
        assert!(insts.is_empty());
    }

    #[test]
    fn inclusion_head_atom_interned_on_demand() {
        let mut f = fixture();
        f.add_p("a", "b");
        let dep = Dependency::inclusion("inc", f.p, 2, f.q, &[0]).unwrap();
        let before = f.atoms.len();
        let insts = dep.instantiate(&f.registry, &mut f.atoms, None);
        assert_eq!(insts.len(), 1);
        assert!(f.atoms.len() > before, "Q(a) should have been interned");
    }

    #[test]
    fn multivalued_dependency_shape() {
        // P(x,y): X = {0}, Y = {1} — degenerate MVD equivalent to
        // P(x,y) ∧ P(x,y') → P(x,y), vacuous head for y-swap... use arity 3.
        let mut vocab = Vocabulary::new();
        let r = vocab
            .declare_predicate("R", 3, PredicateKind::Relation)
            .unwrap();
        let mut atoms = AtomTable::new();
        let mut registry = CompletionRegistry::new();
        let mut add = |vocab: &mut Vocabulary, args: [&str; 3]| {
            let cs: Vec<ConstId> = args.iter().map(|s| vocab.constant(s)).collect();
            let id = atoms.intern_app(r, &cs);
            registry.register(r, id, &cs);
            id
        };
        add(&mut vocab, ["a", "b", "c"]);
        add(&mut vocab, ["a", "d", "e"]);
        let dep = Dependency::multivalued("mvd", r, 3, &[0], &[1]).unwrap();
        let insts = dep.instantiate(&registry, &mut atoms, None);
        // Pairs: (t1,t2) → R(a,b,e); (t2,t1) → R(a,d,c); (t1,t1)/(t2,t2)
        // are vacuous? No — (t1,t1) yields R(a,b,c), already implied by the
        // body but the head doesn't fold to T since it's an atom. Instances
        // where head == a body atom are logically vacuous but syntactically
        // emitted; we just check that the interesting ones are present.
        assert!(insts.len() >= 2);
    }

    #[test]
    fn head_triggered_instantiation() {
        // The paper's §3.5 example: under ∀x (P(x) → Q(x)), "if Q(a) is
        // deleted from some alternative worlds while P(a) is still in the
        // theory, then the new wff P(a) → Q(a) should be added". The
        // trigger Q(a) unifies with the head, not the body.
        let mut vocab = Vocabulary::new();
        let p = vocab
            .declare_predicate("P", 1, PredicateKind::Relation)
            .unwrap();
        let q = vocab
            .declare_predicate("Q", 1, PredicateKind::Relation)
            .unwrap();
        let mut atoms = AtomTable::new();
        let mut registry = CompletionRegistry::new();
        let ca = vocab.constant("a");
        let pa = atoms.intern_app(p, &[ca]);
        registry.register(p, pa, &[ca]);
        let qa = atoms.intern_app(q, &[ca]);
        registry.register(q, qa, &[ca]);
        let dep = Dependency::inclusion("inc", p, 1, q, &[0]).unwrap();
        let insts = dep.instantiate(&registry, &mut atoms, Some(qa));
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0], Wff::implies(Wff::Atom(pa), Wff::Atom(qa)));
    }

    #[test]
    fn holds_in_world_detects_fd_violation() {
        use winslett_logic::BitSet;
        let mut f = fixture();
        let ab = f.add_p("a", "b");
        let ac = f.add_p("a", "c");
        let dep = Dependency::functional("fd", f.p, 2, &[0]).unwrap();
        // World with both (a,b) and (a,c): FD violated.
        let bad: BitSet = [ab.index(), ac.index()].into_iter().collect();
        assert!(!dep.holds_in_world(&bad, &f.atoms));
        // World with just (a,b): fine.
        let good: BitSet = [ab.index()].into_iter().collect();
        assert!(dep.holds_in_world(&good, &f.atoms));
        // Empty world: vacuously fine.
        assert!(dep.holds_in_world(&BitSet::new(), &f.atoms));
    }

    #[test]
    fn holds_in_world_checks_inclusion() {
        use winslett_logic::BitSet;
        let mut f = fixture();
        let ab = f.add_p("a", "b");
        let qa = f.add_q("a");
        let dep = Dependency::inclusion("inc", f.p, 2, f.q, &[0]).unwrap();
        let bad: BitSet = [ab.index()].into_iter().collect();
        assert!(!dep.holds_in_world(&bad, &f.atoms));
        let good: BitSet = [ab.index(), qa.index()].into_iter().collect();
        assert!(dep.holds_in_world(&good, &f.atoms));
    }

    #[test]
    fn trigger_of_wrong_predicate_matches_nothing() {
        let mut f = fixture();
        f.add_p("a", "b");
        let qa = f.add_q("a");
        let dep = Dependency::functional("fd", f.p, 2, &[0]).unwrap();
        let insts = dep.instantiate(&f.registry, &mut f.atoms, Some(qa));
        assert!(insts.is_empty());
    }
}
