//! The completion-axiom registry.
//!
//! An extended relational theory's completion axiom for predicate `P`
//! enumerates exactly the tuples `P(c⃗)` that "appear elsewhere in T" (§2,
//! item 2); every other ground atom of `P` is false in all models. Since
//! the axioms "may be derived mechanically from the rest of T", we do not
//! store them as formulas: the registry *is* the completion axioms — a
//! per-predicate ordered index of registered atoms, giving the `O(log R)`
//! lookup/insert of the §3.6 cost model (`R` = "the greatest number of
//! distinct occurrences in T of any predicate").

use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use winslett_logic::{AtomId, BitSet, ConstId, PredId};

/// Per-predicate registered-atom indices plus a global registered set and
/// the §3.6 "single separate index" from constants to the registered atoms
/// mentioning them.
#[derive(Clone, Default, Debug)]
pub struct CompletionRegistry {
    by_pred: FxHashMap<PredId, BTreeSet<AtomId>>,
    by_const: FxHashMap<ConstId, BTreeSet<AtomId>>,
    registered: BitSet,
    count: usize,
    /// Bumped on every successful registration; feeds
    /// [`Theory::generation`](crate::Theory).
    version: u64,
}

impl CompletionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `atom` (of predicate `pred`, with arguments `args`) as a
    /// completion-axiom disjunct. Returns `true` if the atom was new. This
    /// is GUA Step 1 / Step 2′ / Step 7's "add f to the completion axiom
    /// for its predicate".
    pub fn register(&mut self, pred: PredId, atom: AtomId, args: &[ConstId]) -> bool {
        if self.registered.get(atom.index()) {
            return false;
        }
        self.registered.set(atom.index(), true);
        self.by_pred.entry(pred).or_default().insert(atom);
        for &c in args {
            self.by_const.entry(c).or_default().insert(atom);
        }
        self.count += 1;
        self.version += 1;
        true
    }

    /// Monotone mutation counter: strictly increases on every new
    /// registration.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registered atoms that mention constant `c` — the constant index used
    /// by GUA Step 5, case (2).
    pub fn atoms_with_constant(&self, c: ConstId) -> impl Iterator<Item = AtomId> + '_ {
        self.by_const
            .get(&c)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Whether `atom` is a disjunct of some completion axiom.
    pub fn is_registered(&self, atom: AtomId) -> bool {
        self.registered.get(atom.index())
    }

    /// The registered atoms of `pred`, in atom-id order.
    pub fn atoms_of(&self, pred: PredId) -> impl Iterator<Item = AtomId> + '_ {
        self.by_pred
            .get(&pred)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Number of registered atoms of `pred`.
    pub fn count_of(&self, pred: PredId) -> usize {
        self.by_pred.get(&pred).map_or(0, BTreeSet::len)
    }

    /// The paper's `R`: the largest per-predicate registered-atom count.
    pub fn max_predicate_size(&self) -> usize {
        self.by_pred.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Total number of registered atoms across all predicates.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The registered set as a bitset over atom ids.
    pub fn registered_set(&self) -> &BitSet {
        &self.registered
    }

    /// Iterates over all registered atoms grouped by predicate.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, AtomId)> + '_ {
        self.by_pred
            .iter()
            .flat_map(|(&p, set)| set.iter().map(move |&a| (p, a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut r = CompletionRegistry::new();
        assert!(r.register(PredId(0), AtomId(3), &[]));
        assert!(!r.register(PredId(0), AtomId(3), &[]));
        assert_eq!(r.len(), 1);
        assert!(r.is_registered(AtomId(3)));
        assert!(!r.is_registered(AtomId(4)));
    }

    #[test]
    fn per_predicate_indices() {
        let mut r = CompletionRegistry::new();
        r.register(PredId(0), AtomId(5), &[]);
        r.register(PredId(0), AtomId(2), &[]);
        r.register(PredId(1), AtomId(9), &[]);
        assert_eq!(
            r.atoms_of(PredId(0)).collect::<Vec<_>>(),
            vec![AtomId(2), AtomId(5)]
        );
        assert_eq!(r.count_of(PredId(0)), 2);
        assert_eq!(r.count_of(PredId(1)), 1);
        assert_eq!(r.count_of(PredId(7)), 0);
        assert_eq!(r.max_predicate_size(), 2);
    }

    #[test]
    fn registered_set_is_bitset() {
        let mut r = CompletionRegistry::new();
        r.register(PredId(0), AtomId(1), &[]);
        r.register(PredId(1), AtomId(4), &[]);
        assert_eq!(r.registered_set().ones().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn empty_registry() {
        let r = CompletionRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.max_predicate_size(), 0);
        assert_eq!(r.atoms_of(PredId(0)).count(), 0);
    }
}
