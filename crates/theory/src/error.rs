//! Error types for extended relational theories.

use std::fmt;

/// Errors raised while constructing or updating an extended relational
/// theory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TheoryError {
    /// A predicate was used that the schema does not declare.
    UnknownPredicate {
        /// Name of the predicate.
        name: String,
    },
    /// A predicate was applied with the wrong arity.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A type axiom referenced a predicate that is not a declared attribute.
    NotAnAttribute {
        /// The offending predicate name.
        name: String,
    },
    /// A type axiom was declared for a predicate whose arity differs from
    /// the number of attribute positions supplied.
    TypeAxiomArity {
        /// Relation name.
        relation: String,
        /// Relation arity.
        expected: usize,
        /// Number of attributes supplied.
        got: usize,
    },
    /// A user-facing operation (query or update) referenced a predicate
    /// constant. Per §3.3: "they may not appear in any query posed to the
    /// database".
    PredicateConstantVisible {
        /// Name of the predicate constant.
        name: String,
    },
    /// The theory has no models (its non-axiomatic section is
    /// inconsistent), where an operation required consistency.
    Inconsistent,
    /// A dependency template is malformed (e.g. a head variable that does
    /// not occur in the body, violating §3.5's template form).
    MalformedDependency {
        /// Description of the defect.
        message: String,
    },
    /// The §3.5 legality invariant failed: removing type and dependency
    /// axioms changed the models of the theory.
    AxiomsNotRedundant {
        /// Description of the violated axiom instance.
        axiom: String,
    },
    /// The formula store ran out of dense `u32` identifier space (slots or
    /// formula handles). Formerly a panic; surfaced as a typed error so a
    /// long-lived server can refuse the write instead of aborting.
    StoreCapacity {
        /// Which table overflowed: `"slots"` or `"formulas"`.
        what: &'static str,
        /// The identifier limit that was hit.
        limit: u64,
    },
    /// An error bubbled up from the logic kernel.
    Logic(winslett_logic::LogicError),
}

impl fmt::Display for TheoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoryError::UnknownPredicate { name } => write!(f, "unknown predicate `{name}`"),
            TheoryError::ArityMismatch {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "predicate `{predicate}` has arity {expected} but was applied to {got} arguments"
            ),
            TheoryError::NotAnAttribute { name } => {
                write!(f, "`{name}` is not a declared attribute predicate")
            }
            TheoryError::TypeAxiomArity {
                relation,
                expected,
                got,
            } => write!(
                f,
                "type axiom for `{relation}` supplies {got} attributes but the relation has arity {expected}"
            ),
            TheoryError::PredicateConstantVisible { name } => write!(
                f,
                "predicate constant `{name}` may not appear in queries or updates"
            ),
            TheoryError::Inconsistent => write!(f, "the theory has no models"),
            TheoryError::MalformedDependency { message } => {
                write!(f, "malformed dependency axiom: {message}")
            }
            TheoryError::AxiomsNotRedundant { axiom } => write!(
                f,
                "type/dependency axioms are not redundant: models violate `{axiom}`"
            ),
            TheoryError::StoreCapacity { what, limit } => write!(
                f,
                "formula store capacity exceeded: {what} table is full (limit {limit})"
            ),
            TheoryError::Logic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TheoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TheoryError::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<winslett_logic::LogicError> for TheoryError {
    fn from(e: winslett_logic::LogicError) -> Self {
        TheoryError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TheoryError::PredicateConstantVisible {
            name: "__p0".into(),
        };
        assert!(e.to_string().contains("__p0"));
        let e = TheoryError::Inconsistent;
        assert!(e.to_string().contains("no models"));
    }

    #[test]
    fn logic_error_conversion() {
        let le = winslett_logic::LogicError::TooManyModels { limit: 3 };
        let te: TheoryError = le.clone().into();
        assert_eq!(te, TheoryError::Logic(le));
    }
}
