//! Error type for the worlds engine.

use std::fmt;

/// Errors from world materialization or per-world update application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorldsError {
    /// An error from the theory layer (e.g. too many models).
    Theory(winslett_theory::TheoryError),
    /// An error from LDML (e.g. an oversized ω).
    Ldml(winslett_ldml::LdmlError),
    /// The pre-flight analyzer rejected the update (see
    /// [`crate::Preflight::Reject`]).
    Rejected {
        /// Stable diagnostic code, e.g. `"E003"`.
        code: String,
        /// The analyzer's message.
        message: String,
    },
    /// A world mentions an atom outside the theory's atom table — the
    /// engine's worlds and the theory it is being checked against were
    /// built over different universes (e.g. a stale engine against a theory
    /// that has since minted new atoms). Rule 3 cannot be decided for such
    /// a world, so it is an error rather than a vacuous pass.
    UniverseMismatch {
        /// The offending atom index in the world.
        atom_index: usize,
        /// Size of the theory's atom table.
        universe_size: usize,
    },
    /// A type axiom's attribute list and an atom's argument list disagree
    /// in arity, so rule 3 cannot pair attributes with arguments.
    ArityMismatch {
        /// Name of the relation whose type axiom is malformed w.r.t. the atom.
        relation: String,
        /// Number of attributes in the type axiom.
        attrs: usize,
        /// Number of arguments in the atom.
        args: usize,
    },
}

impl fmt::Display for WorldsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldsError::Theory(e) => write!(f, "{e}"),
            WorldsError::Ldml(e) => write!(f, "{e}"),
            WorldsError::Rejected { code, message } => {
                write!(
                    f,
                    "update rejected by pre-flight analysis [{code}]: {message}"
                )
            }
            WorldsError::UniverseMismatch {
                atom_index,
                universe_size,
            } => write!(
                f,
                "world mentions atom #{atom_index} but the theory's atom table has only \
                 {universe_size} atoms — engine and theory use different universes"
            ),
            WorldsError::ArityMismatch {
                relation,
                attrs,
                args,
            } => write!(
                f,
                "type axiom for `{relation}` lists {attrs} attributes but the atom has \
                 {args} arguments"
            ),
        }
    }
}

impl std::error::Error for WorldsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorldsError::Theory(e) => Some(e),
            WorldsError::Ldml(e) => Some(e),
            WorldsError::Rejected { .. }
            | WorldsError::UniverseMismatch { .. }
            | WorldsError::ArityMismatch { .. } => None,
        }
    }
}

impl From<winslett_theory::TheoryError> for WorldsError {
    fn from(e: winslett_theory::TheoryError) -> Self {
        WorldsError::Theory(e)
    }
}

impl From<winslett_ldml::LdmlError> for WorldsError {
    fn from(e: winslett_ldml::LdmlError) -> Self {
        WorldsError::Ldml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: WorldsError = winslett_theory::TheoryError::Inconsistent.into();
        assert!(e.to_string().contains("no models"));
        let e: WorldsError = winslett_ldml::LdmlError::TargetNotAtomic.into();
        assert!(e.to_string().contains("atomic"));
    }
}
