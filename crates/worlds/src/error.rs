//! Error type for the worlds engine.

use std::fmt;

/// Errors from world materialization or per-world update application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorldsError {
    /// An error from the theory layer (e.g. too many models).
    Theory(winslett_theory::TheoryError),
    /// An error from LDML (e.g. an oversized ω).
    Ldml(winslett_ldml::LdmlError),
    /// The pre-flight analyzer rejected the update (see
    /// [`crate::Preflight::Reject`]).
    Rejected {
        /// Stable diagnostic code, e.g. `"E003"`.
        code: String,
        /// The analyzer's message.
        message: String,
    },
}

impl fmt::Display for WorldsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldsError::Theory(e) => write!(f, "{e}"),
            WorldsError::Ldml(e) => write!(f, "{e}"),
            WorldsError::Rejected { code, message } => {
                write!(
                    f,
                    "update rejected by pre-flight analysis [{code}]: {message}"
                )
            }
        }
    }
}

impl std::error::Error for WorldsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorldsError::Theory(e) => Some(e),
            WorldsError::Ldml(e) => Some(e),
            WorldsError::Rejected { .. } => None,
        }
    }
}

impl From<winslett_theory::TheoryError> for WorldsError {
    fn from(e: winslett_theory::TheoryError) -> Self {
        WorldsError::Theory(e)
    }
}

impl From<winslett_ldml::LdmlError> for WorldsError {
    fn from(e: winslett_ldml::LdmlError) -> Self {
        WorldsError::Ldml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: WorldsError = winslett_theory::TheoryError::Inconsistent.into();
        assert!(e.to_string().contains("no models"));
        let e: WorldsError = winslett_ldml::LdmlError::TargetNotAtomic.into();
        assert!(e.to_string().contains("atomic"));
    }
}
