//! The Possible Models Approach (PMA) — the alternative update semantics
//! the paper's §3.4 foreshadows.
//!
//! "In a future publication, we will examine other possible choices for
//! update semantics" — that publication is Winslett's *Reasoning about
//! Action using a Possible Models Approach* (AAAI 1988). Where the PODS
//! 1986 semantics lets the atoms of ω take **every** satisfying valuation
//! (the update "overrides all previous information about these ground
//! atomic formulas"), the PMA keeps only the result models **minimally
//! distant** from the original:
//!
//! > `S` contains exactly the models `M*` such that ω holds in `M*`, `M*`
//! > agrees with `M` outside ω's atoms, and no other such model differs
//! > from `M` on a strict subset of the atoms `M*` differs on.
//!
//! The classic discriminating case: inserting `a ∨ b` into a world where
//! `a` already holds. PODS-1986 semantics forgets what it knew and
//! produces three worlds ({a}, {b}, {a,b}); the PMA notices ω is already
//! satisfied and keeps the world unchanged. Experiment E9 measures this
//! divergence; `winslett-gua` implements only the 1986 semantics (the
//! PMA's minimization is not expressible by altering Step 4's formula (1)
//! alone — it needs a circumscription, which is why the 1988 paper is a
//! separate paper).

use crate::engine::WorldsEngine;
use crate::error::WorldsError;
use winslett_ldml::{canonicalize, InsertForm, LdmlError, Update};
use winslett_logic::{AtomId, BitSet};
use winslett_theory::Theory;

/// Applies `INSERT ω WHERE φ` to one model under PMA (minimal-change)
/// semantics.
pub fn apply_insert_pma(form: &InsertForm, model: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    let phi_true = form.phi.eval(&mut |a: &AtomId| model.get(a.index()));
    if !phi_true {
        return Ok(vec![model.clone()]);
    }
    let atoms: Vec<AtomId> = form.omega.atom_set().into_iter().collect();
    // Collect candidate (mask, diff) pairs. `satisfying_masks` enforces the
    // 24-atom cap and reports wff/universe mismatches as errors.
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    for mask in winslett_ldml::satisfying_masks(&form.omega, &atoms)? {
        let mut diff = 0u32;
        for (i, a) in atoms.iter().enumerate() {
            if ((mask >> i) & 1 == 1) != model.get(a.index()) {
                diff |= 1 << i;
            }
        }
        candidates.push((mask, diff));
    }
    // Keep ⊆-minimal diffs.
    let minimal: Vec<u32> = candidates
        .iter()
        .filter(|(_, d)| {
            !candidates
                .iter()
                .any(|(_, d2)| *d2 != *d && (d2 & d) == *d2)
        })
        .map(|(m, _)| *m)
        .collect();
    let mut out = Vec::with_capacity(minimal.len());
    for mask in minimal {
        let mut m = model.clone();
        for (i, a) in atoms.iter().enumerate() {
            m.set(a.index(), (mask >> i) & 1 == 1);
        }
        out.push(m);
    }
    Ok(out)
}

/// Applies any LDML update under PMA semantics (via its INSERT form).
pub fn apply_update_pma(update: &Update, model: &BitSet) -> Result<Vec<BitSet>, LdmlError> {
    apply_insert_pma(&update.to_insert(), model)
}

impl WorldsEngine {
    /// Applies `update` to every world under **PMA** (minimal-change)
    /// semantics, enforcing rule 3, then pools — the comparison engine for
    /// experiment E9.
    pub fn apply_pma(&mut self, update: &Update, theory: &Theory) -> Result<(), WorldsError> {
        let form = update.to_insert();
        let mut pooled: Vec<BitSet> = Vec::new();
        for w in self.worlds() {
            let produced = apply_insert_pma(&form, w)?;
            for m in produced {
                if Self::satisfies_axioms(theory, &m)? {
                    pooled.push(m);
                }
            }
        }
        self.worlds = canonicalize(pooled);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::{Formula, Wff};

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    fn model(bits: &[usize]) -> BitSet {
        bits.iter().copied().collect()
    }

    #[test]
    fn classic_divergence_insert_a_or_b() {
        // World {a}: ω = a ∨ b already holds → PMA keeps the world as-is;
        // the 1986 semantics branches to 3 models.
        let form = InsertForm {
            omega: Formula::Or(vec![a(0), a(1)]),
            phi: Wff::t(),
        };
        let m = model(&[0]);
        let pma = canonicalize(apply_insert_pma(&form, &m).unwrap());
        assert_eq!(pma, vec![model(&[0])]);
        let w1986 = canonicalize(winslett_ldml::apply_insert(&form, &m).unwrap());
        assert_eq!(w1986.len(), 3);
    }

    #[test]
    fn pma_branches_when_change_is_needed() {
        // World {}: ω = a ∨ b unsatisfied; minimal changes are {a} and {b}
        // (not {a,b}, which differs on a superset).
        let form = InsertForm {
            omega: Formula::Or(vec![a(0), a(1)]),
            phi: Wff::t(),
        };
        let pma = canonicalize(apply_insert_pma(&form, &model(&[])).unwrap());
        assert_eq!(pma, vec![model(&[0]), model(&[1])]);
    }

    #[test]
    fn pma_respects_selection_clause() {
        let form = InsertForm {
            omega: a(0),
            phi: a(1),
        };
        let m = model(&[]); // φ false
        assert_eq!(apply_insert_pma(&form, &m).unwrap(), vec![m]);
    }

    #[test]
    fn pma_agrees_with_1986_on_definite_omega() {
        // With a uniquely satisfiable ω the two semantics coincide.
        let mut state = 0xABCD_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let lits: Vec<Wff> = (0..3)
                .map(|i| if next() % 2 == 0 { a(i) } else { a(i).not() })
                .collect();
            let form = InsertForm {
                omega: Formula::And(lits),
                phi: Wff::t(),
            };
            let m: BitSet = (0..4usize).filter(|_| next() % 2 == 0).collect();
            let pma = canonicalize(apply_insert_pma(&form, &m).unwrap());
            let std = canonicalize(winslett_ldml::apply_insert(&form, &m).unwrap());
            assert_eq!(pma, std);
        }
    }

    #[test]
    fn pma_unsatisfiable_omega_kills_model() {
        let form = InsertForm {
            omega: Wff::f(),
            phi: Wff::t(),
        };
        assert!(apply_insert_pma(&form, &model(&[0])).unwrap().is_empty());
    }

    #[test]
    fn pma_result_is_subset_of_1986_result() {
        // PMA minimization only ever *removes* models from the 1986 set.
        let mut state = 0x1357_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let w = random_wff(&mut next, 3);
            let form = InsertForm {
                omega: w,
                phi: Wff::t(),
            };
            let m: BitSet = (0..4usize).filter(|_| next() % 2 == 0).collect();
            let pma = canonicalize(apply_insert_pma(&form, &m).unwrap());
            let std = canonicalize(winslett_ldml::apply_insert(&form, &m).unwrap());
            for p in &pma {
                assert!(std.contains(p), "PMA produced a non-1986 model");
            }
            // And PMA is nonempty whenever 1986 is.
            assert_eq!(pma.is_empty(), std.is_empty());
        }
    }

    fn random_wff(next: &mut impl FnMut() -> u64, depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(3) {
            return match next() % 5 {
                0 => Wff::t(),
                1 => Wff::f(),
                _ => a((next() % 4) as u32),
            };
        }
        match next() % 4 {
            0 => random_wff(next, depth - 1).not(),
            1 => Formula::And(vec![
                random_wff(next, depth - 1),
                random_wff(next, depth - 1),
            ]),
            2 => Formula::Or(vec![
                random_wff(next, depth - 1),
                random_wff(next, depth - 1),
            ]),
            _ => Wff::implies(random_wff(next, depth - 1), random_wff(next, depth - 1)),
        }
    }

    #[test]
    fn engine_level_pma_update() {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let aa = t.atom(r, &[ca]);
        let ab = t.atom(r, &[cb]);
        t.assert_atom(aa);
        t.assert_not_atom(ab);
        let mut std_engine =
            WorldsEngine::from_theory(&t, winslett_logic::ModelLimit::default()).unwrap();
        let mut pma_engine = std_engine.clone();
        let u = Update::insert(Formula::Or(vec![Wff::Atom(aa), Wff::Atom(ab)]), Wff::t());
        std_engine.apply(&u, &t).unwrap();
        pma_engine.apply_pma(&u, &t).unwrap();
        assert_eq!(std_engine.len(), 3);
        assert_eq!(pma_engine.len(), 1); // ω already held: no change
    }
}
