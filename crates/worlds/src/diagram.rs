//! The commutative diagram of §3.2, as an executable check.
//!
//! "We require that the diagram below be commutative: both paths from
//! upper-left-hand corner to lower-right-hand corner must produce the same
//! result":
//!
//! ```text
//!   theory T ───────(update algorithm)──────▶ theory T′
//!      │                                          │
//!  (alternative worlds)                  (alternative worlds)
//!      ▼                                          ▼
//!   worlds(T) ──(per-world §3.2 semantics)──▶ worlds(T′)  (must be equal)
//! ```
//!
//! [`check_commutes`] runs both paths and compares. This is Theorem 1
//! (correctness + completeness of GUA) as a property that the test suite
//! and experiment E1 exercise over randomized theories and updates.

use crate::engine::WorldsEngine;
use crate::error::WorldsError;
use winslett_ldml::{canonicalize, Update};
use winslett_logic::{BitSet, ModelLimit};
use winslett_theory::Theory;

/// Result of a diagram check.
#[derive(Clone, Debug)]
pub struct DiagramReport {
    /// Whether both paths produced identical world sets.
    pub commutes: bool,
    /// Worlds from the lower path (per-world semantics — the definition).
    pub expected: Vec<BitSet>,
    /// Worlds from the upper path (the update algorithm's output theory).
    pub actual: Vec<BitSet>,
}

impl DiagramReport {
    /// Human-readable diff of the two world sets, using `theory` for names.
    pub fn describe(&self, theory: &Theory) -> String {
        if self.commutes {
            return format!("diagram commutes ({} worlds)", self.expected.len());
        }
        let fmt = |ws: &[BitSet]| -> String {
            ws.iter()
                .map(|w| format!("{{{}}}", theory.format_world(w).join(", ")))
                .collect::<Vec<_>>()
                .join(" ; ")
        };
        format!(
            "diagram DOES NOT commute:\n  expected (per-world semantics): {}\n  actual (algorithm): {}",
            fmt(&self.expected),
            fmt(&self.actual)
        )
    }
}

/// Runs both paths of the diagram for a sequence of updates.
///
/// * `before` — the theory prior to any update (the baseline path starts
///   here);
/// * `updates` — the updates, applied in order;
/// * `after` — the theory produced by the update algorithm under test.
///
/// `before` and `after` must share an atom table (i.e. `before` is a clone
/// of the theory taken before updating it in place), so world bitsets are
/// comparable.
pub fn check_commutes(
    before: &Theory,
    updates: &[Update],
    after: &Theory,
    limit: ModelLimit,
) -> Result<DiagramReport, WorldsError> {
    let mut engine = WorldsEngine::from_theory(before, limit)?;
    // Rule 3 consults the type/dependency axioms, which are fixed across
    // updates; `after` has the richer atom table for attribute lookups.
    engine.apply_all(updates, after)?;
    let expected = canonicalize(engine.worlds().to_vec());
    let actual = canonicalize(after.alternative_worlds(limit)?);
    Ok(DiagramReport {
        commutes: expected == actual,
        expected,
        actual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Wff;

    #[test]
    fn identical_theories_commute_under_no_updates() {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let c = t.constant("x");
        let a = t.atom(r, &[c]);
        t.assert_wff(&Wff::Atom(a));
        let report = check_commutes(&t, &[], &t, ModelLimit::default()).unwrap();
        assert!(report.commutes);
        assert_eq!(report.expected.len(), 1);
    }

    #[test]
    fn detects_a_wrong_update_algorithm() {
        // A deliberately wrong "algorithm": INSERT ¬a implemented by just
        // adding ¬a to the theory — inconsistent with the old wff `a`, so
        // the after-theory has no worlds while the semantics says one.
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let c = t.constant("x");
        let a = t.atom(r, &[c]);
        t.assert_wff(&Wff::Atom(a));
        let before = t.clone();
        t.assert_wff(&Wff::Atom(a).not()); // the naive, wrong move
        let u = Update::insert(Wff::Atom(a).not(), Wff::t());
        let report = check_commutes(&before, &[u], &t, ModelLimit::default()).unwrap();
        assert!(!report.commutes);
        assert_eq!(report.expected.len(), 1); // semantics: one world, a false
        assert_eq!(report.actual.len(), 0); // naive theory: inconsistent
        assert!(report.describe(&t).contains("DOES NOT"));
    }
}
