//! The possible-worlds baseline engine — the paper's "parallel computation
//! method" (§3.2).
//!
//! "The correct answers to queries and updates are those obtained by
//! storing a separate database for each alternative world and running query
//! processing in parallel on each separate database, pooling the query
//! results in a final step."
//!
//! [`WorldsEngine`] does exactly that: it materializes every alternative
//! world of a theory and applies each LDML update world-by-world using the
//! §3.2 model-level definitions, enforcing rule 3 (§3.5) — produced worlds
//! must satisfy the type and dependency axioms. It is the semantic gold
//! standard that GUA is verified against (experiment E1), and the
//! exponential-cost comparison system of experiment E7.

use crate::error::WorldsError;
use winslett_ldml::{apply_update, canonicalize, Update};
use winslett_logic::{BitSet, GroundAtom, ModelLimit};
use winslett_theory::Theory;

/// A materialized set of alternative worlds.
///
/// ```
/// use winslett_ldml::Update;
/// use winslett_logic::{Formula, ModelLimit, Wff};
/// use winslett_theory::Theory;
/// use winslett_worlds::WorldsEngine;
///
/// let mut t = Theory::new();
/// let r = t.declare_relation("R", 1)?;
/// let (ca, cb) = (t.constant("a"), t.constant("b"));
/// let (a, b) = (t.atom(r, &[ca]), t.atom(r, &[cb]));
/// t.assert_not_atom(a);
/// t.assert_not_atom(b);
///
/// let mut worlds = WorldsEngine::from_theory(&t, ModelLimit::default())?;
/// assert_eq!(worlds.len(), 1);
/// // A branching insert, applied to every world per §3.2.
/// worlds.apply(
///     &Update::insert(Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]), Wff::t()),
///     &t,
/// )?;
/// assert_eq!(worlds.len(), 3);
/// assert!(worlds.entails(&Wff::or2(Wff::Atom(a), Wff::Atom(b))));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct WorldsEngine {
    worlds: Vec<BitSet>,
}

impl WorldsEngine {
    /// Materializes the alternative worlds of `theory`.
    pub fn from_theory(theory: &Theory, limit: ModelLimit) -> Result<Self, WorldsError> {
        let worlds = theory.alternative_worlds(limit)?;
        Ok(WorldsEngine { worlds })
    }

    /// Builds an engine from explicit worlds (used in tests and workloads).
    pub fn from_worlds(worlds: Vec<BitSet>) -> Self {
        WorldsEngine {
            worlds: canonicalize(worlds),
        }
    }

    /// The current worlds, canonical (sorted, deduplicated).
    pub fn worlds(&self) -> &[BitSet] {
        &self.worlds
    }

    /// Number of distinct alternative worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether no world remains (the database is inconsistent).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Whether `world` satisfies the type and dependency axioms of
    /// `theory` — rule 3 of the §3.5 update semantics.
    pub fn satisfies_axioms(theory: &Theory, world: &BitSet) -> bool {
        // Type axioms: every true tuple's attribute atoms must be true.
        for i in world.ones() {
            if i >= theory.atoms.len() {
                continue;
            }
            let ga = theory
                .atoms
                .resolve(winslett_logic::AtomId(i as u32))
                .clone();
            if let Some(attrs) = theory.schema.type_axiom(ga.pred) {
                for (&attr, &c) in attrs.iter().zip(ga.args.iter()) {
                    let ok = theory
                        .atoms
                        .get(&GroundAtom::new(attr, &[c]))
                        .map(|id| world.get(id.index()))
                        .unwrap_or(false);
                    if !ok {
                        return false;
                    }
                }
            }
        }
        // Dependency axioms.
        theory
            .deps
            .iter()
            .all(|dep| dep.holds_in_world(world, &theory.atoms))
    }

    /// Applies `update` to every world independently, enforcing rule 3,
    /// then pools and canonicalizes — the definitionally correct update.
    pub fn apply(&mut self, update: &Update, theory: &Theory) -> Result<(), WorldsError> {
        let mut pooled: Vec<BitSet> = Vec::new();
        for w in &self.worlds {
            let produced = apply_update(update, w)?;
            for m in produced {
                if Self::satisfies_axioms(theory, &m) {
                    pooled.push(m);
                }
            }
        }
        self.worlds = canonicalize(pooled);
        Ok(())
    }

    /// Applies a sequence of updates.
    pub fn apply_all(&mut self, updates: &[Update], theory: &Theory) -> Result<(), WorldsError> {
        for u in updates {
            self.apply(u, theory)?;
        }
        Ok(())
    }

    /// Applies a **set** of ground updates *simultaneously* to every world
    /// (the §4 reduction target for updates with variables), enforcing
    /// rule 3, then pools and canonicalizes.
    pub fn apply_simultaneous(
        &mut self,
        updates: &[Update],
        theory: &Theory,
    ) -> Result<(), WorldsError> {
        let forms: Vec<winslett_ldml::InsertForm> = updates.iter().map(Update::to_insert).collect();
        let mut pooled: Vec<BitSet> = Vec::new();
        for w in &self.worlds {
            let produced = winslett_ldml::apply_simultaneous(&forms, w)?;
            for m in produced {
                if Self::satisfies_axioms(theory, &m) {
                    pooled.push(m);
                }
            }
        }
        self.worlds = canonicalize(pooled);
        Ok(())
    }

    /// Certain truth of a wff: true in every world.
    pub fn entails(&self, wff: &winslett_logic::Wff) -> bool {
        self.worlds
            .iter()
            .all(|w| wff.eval(&mut |a: &winslett_logic::AtomId| w.get(a.index())))
    }

    /// Possible truth of a wff: true in some world.
    pub fn consistent_with(&self, wff: &winslett_logic::Wff) -> bool {
        self.worlds
            .iter()
            .any(|w| wff.eval(&mut |a: &winslett_logic::AtomId| w.get(a.index())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::{AtomId, Wff};

    /// The §3.3 running example: atoms a, b; worlds {a} and {a, b}.
    fn paper_setup() -> (Theory, AtomId, AtomId, WorldsEngine) {
        let mut t = Theory::new();
        let r = t.declare_relation("Tup", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_wff(&Wff::Atom(a));
        t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
        let e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        (t, a, b, e)
    }

    #[test]
    fn materializes_paper_worlds() {
        let (_, _, _, e) = paper_setup();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn nonbranching_modify_example() {
        // §3.3: MODIFY a TO BE a′ WHERE b ∧ a ⇒ worlds {b, a′} and {a}.
        let (mut t, a, b, mut e) = paper_setup();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let ca2 = t.constant("a'");
        let a2 = t.atom(r, &[ca2]);
        let u = Update::modify(a, Wff::Atom(a2), Wff::Atom(b));
        e.apply(&u, &t).unwrap();
        assert_eq!(e.len(), 2);
        let rendered: Vec<Vec<String>> = e.worlds().iter().map(|w| t.format_world(w)).collect();
        assert!(rendered.contains(&vec!["Tup(a)".to_string()]));
        assert!(rendered.contains(&vec!["Tup(a')".to_string(), "Tup(b)".to_string()]));
    }

    #[test]
    fn branching_insert_example() {
        // §3.3 branching example: MODIFY a TO BE (c ∨ a) WHERE b ∧ a over
        // worlds {a,b} and {a} yields 4 worlds:
        // {a}, {b,c}, {b,a}, {b,c,a}.
        let (mut t, a, b, mut e) = paper_setup();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let cc = t.constant("c");
        let c = t.atom(r, &[cc]);
        let u = Update::modify(a, Wff::Or(vec![Wff::Atom(c), Wff::Atom(a)]), Wff::Atom(b));
        e.apply(&u, &t).unwrap();
        assert_eq!(e.len(), 4);
        let rendered: Vec<Vec<String>> = e.worlds().iter().map(|w| t.format_world(w)).collect();
        for expect in [
            vec!["Tup(a)".to_string()],
            vec!["Tup(b)".to_string(), "Tup(c)".to_string()],
            vec!["Tup(a)".to_string(), "Tup(b)".to_string()],
            vec![
                "Tup(a)".to_string(),
                "Tup(b)".to_string(),
                "Tup(c)".to_string(),
            ],
        ] {
            assert!(rendered.contains(&expect), "missing world {expect:?}");
        }
    }

    #[test]
    fn assert_prunes_worlds() {
        let (_, _, b, mut e) = paper_setup();
        let t = paper_setup().0;
        let u = Update::assert(Wff::Atom(b));
        e.apply(&u, &t).unwrap();
        assert_eq!(e.len(), 1);
        assert!(e.entails(&Wff::Atom(b)));
    }

    #[test]
    fn assert_can_empty_the_database() {
        let (t, a, _, mut e) = paper_setup();
        e.apply(&Update::assert(Wff::Atom(a).not()), &t).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn entails_and_consistent_with() {
        let (_, a, b, e) = paper_setup();
        assert!(e.entails(&Wff::Atom(a)));
        assert!(!e.entails(&Wff::Atom(b)));
        assert!(e.consistent_with(&Wff::Atom(b)));
        assert!(e.consistent_with(&Wff::Atom(b).not()));
        assert!(!e.consistent_with(&Wff::Atom(a).not()));
    }

    #[test]
    fn type_axioms_filter_produced_worlds() {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let instock = t.declare_typed_relation("InStock1", &[part]).unwrap();
        let c32 = t.constant("32");
        let atom = t.atom(instock, &[c32]);
        let pa = t.atom(part, &[c32]);
        // Start with an empty, consistent database (both atoms false).
        t.assert_not_atom(atom);
        t.assert_not_atom(pa);
        let mut e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        assert_eq!(e.len(), 1);
        // Inserting InStock1(32) without PartNo(32) violates the type
        // axiom: every produced world is filtered out (rule 3).
        e.apply(&Update::insert(Wff::Atom(atom), Wff::t()), &t)
            .unwrap();
        assert!(e.is_empty());
        // Inserting both together survives.
        let mut e2 = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        e2.apply(
            &Update::insert(Wff::and2(Wff::Atom(atom), Wff::Atom(pa)), Wff::t()),
            &t,
        )
        .unwrap();
        assert_eq!(e2.len(), 1);
    }

    #[test]
    fn dependency_axioms_filter_produced_worlds() {
        use winslett_theory::Dependency;
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).unwrap();
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
        let ca = t.constant("a");
        let cb = t.constant("b");
        let cc = t.constant("c");
        let ab = t.atom(p, &[ca, cb]);
        let ac = t.atom(p, &[ca, cc]);
        t.assert_atom(ab);
        t.assert_not_atom(ac);
        let mut e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        assert_eq!(e.len(), 1);
        // Inserting P(a,c) while P(a,b) holds violates the FD.
        e.apply(&Update::insert(Wff::Atom(ac), Wff::t()), &t)
            .unwrap();
        assert!(e.is_empty());
        // Inserting P(a,c) while *deleting* P(a,b) is fine.
        let mut e2 = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        e2.apply(
            &Update::insert(Wff::and2(Wff::Atom(ac), Wff::Atom(ab).not()), Wff::t()),
            &t,
        )
        .unwrap();
        assert_eq!(e2.len(), 1);
    }
}
