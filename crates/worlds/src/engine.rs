//! The possible-worlds baseline engine — the paper's "parallel computation
//! method" (§3.2).
//!
//! "The correct answers to queries and updates are those obtained by
//! storing a separate database for each alternative world and running query
//! processing in parallel on each separate database, pooling the query
//! results in a final step."
//!
//! [`WorldsEngine`] does exactly that: it materializes every alternative
//! world of a theory and applies each LDML update world-by-world using the
//! §3.2 model-level definitions, enforcing rule 3 (§3.5) — produced worlds
//! must satisfy the type and dependency axioms. It is the semantic gold
//! standard that GUA is verified against (experiment E1), and the
//! exponential-cost comparison system of experiment E7.
//!
//! The engine takes the paper's phrase literally: updates are compiled once
//! ([`CompiledInsert`]) and fanned out across OS threads, each worker
//! applying the compiled update and the rule-3 filter to its slice of the
//! world vector. A final merge pools the results into the canonical
//! (sorted, deduplicated) world set. The result is byte-identical for every
//! thread count — see `tests/commutative_diagram.rs` — so the commutative-
//! diagram guarantee survives parallelization. `docs/worlds.md` describes
//! the architecture.

use crate::error::WorldsError;
use rustc_hash::{FxHashMap, FxHashSet};
use std::num::NonZeroUsize;
use std::time::Instant;
use winslett_ldml::{
    apply_simultaneous_cached, CompiledInsert, InsertForm, SimultaneousCache, Update,
};
use winslett_logic::{AtomId, BitSet, GroundAtom, ModelLimit, Wff};
use winslett_theory::Theory;

/// In automatic mode, do not split the world vector into chunks smaller
/// than this: below it, thread spawn overhead outweighs the per-world work.
/// A [`WorldsEngine::with_threads`] override bypasses the heuristic.
const MIN_WORLDS_PER_THREAD: usize = 128;

/// Counters the engine maintains across `apply*` calls, for the bench
/// harness (`BENCH_worlds.json`) and for tests. All counts are cumulative
/// since construction or the last [`WorldsEngine::reset_stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of `apply` / `apply_simultaneous` calls.
    pub applies: u64,
    /// Total worlds fed into those applies.
    pub worlds_in: u64,
    /// Total worlds remaining after rule 3 and dedup.
    pub worlds_out: u64,
    /// Total candidate models produced by the §3.2 semantics, pre-filter.
    pub models_produced: u64,
    /// Candidate models discarded by rule 3 (type/dependency axioms).
    pub rule3_filtered: u64,
    /// Compilation work skipped because a cached compilation was reused —
    /// repeated updates in [`WorldsEngine::apply_all`] and repeated
    /// triggered-subset sweeps in [`WorldsEngine::apply_simultaneous`].
    pub compile_reuse_hits: u64,
    /// Worker threads used by the most recent apply.
    pub last_threads: u64,
    /// Wall time of the most recent apply, in nanoseconds.
    pub last_apply_nanos: u64,
    /// Cumulative wall time of all applies, in nanoseconds.
    pub total_apply_nanos: u64,
}

/// Per-worker output of one parallel fan-out.
#[derive(Default)]
struct ChunkOut {
    produced: Vec<BitSet>,
    models_produced: u64,
    rule3_filtered: u64,
    reuse_hits: u64,
}

/// A materialized set of alternative worlds.
///
/// ```
/// use winslett_ldml::Update;
/// use winslett_logic::{Formula, ModelLimit, Wff};
/// use winslett_theory::Theory;
/// use winslett_worlds::WorldsEngine;
///
/// let mut t = Theory::new();
/// let r = t.declare_relation("R", 1)?;
/// let (ca, cb) = (t.constant("a"), t.constant("b"));
/// let (a, b) = (t.atom(r, &[ca]), t.atom(r, &[cb]));
/// t.assert_not_atom(a);
/// t.assert_not_atom(b);
///
/// let mut worlds = WorldsEngine::from_theory(&t, ModelLimit::default())?;
/// assert_eq!(worlds.len(), 1);
/// // A branching insert, applied to every world per §3.2.
/// worlds.apply(
///     &Update::insert(Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]), Wff::t()),
///     &t,
/// )?;
/// assert_eq!(worlds.len(), 3);
/// assert!(worlds.entails(&Wff::or2(Wff::Atom(a), Wff::Atom(b))));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct WorldsEngine {
    pub(crate) worlds: Vec<BitSet>,
    threads: Option<NonZeroUsize>,
    stats: EngineStats,
}

impl WorldsEngine {
    /// Materializes the alternative worlds of `theory`.
    pub fn from_theory(theory: &Theory, limit: ModelLimit) -> Result<Self, WorldsError> {
        let worlds = theory.alternative_worlds(limit)?;
        Ok(WorldsEngine {
            worlds,
            threads: None,
            stats: EngineStats::default(),
        })
    }

    /// Builds an engine from explicit worlds (used in tests and workloads).
    pub fn from_worlds(worlds: Vec<BitSet>) -> Self {
        WorldsEngine {
            worlds: Self::merge_canonical(vec![worlds]),
            threads: None,
            stats: EngineStats::default(),
        }
    }

    /// Pins the number of worker threads for every subsequent operation.
    ///
    /// `0` restores the default: [`std::thread::available_parallelism`],
    /// scaled down for small world sets so tiny engines never pay thread
    /// spawn overhead. A nonzero pin is exact — tests use `with_threads(1)`
    /// and `with_threads(4)` to prove the result is thread-count
    /// independent.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// The counters accumulated so far. See [`EngineStats`].
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Zeroes all counters.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// The number of worker threads an operation over `work_items` worlds
    /// will use right now.
    pub fn effective_threads(&self, work_items: usize) -> usize {
        match self.threads {
            Some(n) => n.get(),
            None => {
                let hw = std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1);
                hw.min(work_items.div_ceil(MIN_WORLDS_PER_THREAD)).max(1)
            }
        }
    }

    /// The current worlds, canonical (sorted, deduplicated; the order is
    /// lexicographic on set-bit indices).
    pub fn worlds(&self) -> &[BitSet] {
        &self.worlds
    }

    /// Number of distinct alternative worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether no world remains (the database is inconsistent).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Whether `world` satisfies the type and dependency axioms of
    /// `theory` — rule 3 of the §3.5 update semantics.
    ///
    /// Errors rather than guessing when the world and the theory disagree
    /// about the atom universe: a world bit beyond the theory's atom table
    /// is [`WorldsError::UniverseMismatch`] (a stale engine checked against
    /// a theory that has since minted new atoms must not pass rule 3
    /// vacuously), and a type axiom whose attribute list does not match the
    /// atom's argument count is [`WorldsError::ArityMismatch`] (it must not
    /// be zip-truncated).
    pub fn satisfies_axioms(theory: &Theory, world: &BitSet) -> Result<bool, WorldsError> {
        // Type axioms: every true tuple's attribute atoms must be true.
        for i in world.ones() {
            if i >= theory.atoms.len() {
                return Err(WorldsError::UniverseMismatch {
                    atom_index: i,
                    universe_size: theory.atoms.len(),
                });
            }
            let ga = theory.atoms.resolve(AtomId(i as u32)).clone();
            if let Some(attrs) = theory.schema.type_axiom(ga.pred) {
                if attrs.len() != ga.args.len() {
                    return Err(WorldsError::ArityMismatch {
                        relation: theory.vocab.predicate(ga.pred).name.clone(),
                        attrs: attrs.len(),
                        args: ga.args.len(),
                    });
                }
                for (&attr, &c) in attrs.iter().zip(ga.args.iter()) {
                    let ok = theory
                        .atoms
                        .get(&GroundAtom::new(attr, &[c]))
                        .map(|id| world.get(id.index()))
                        .unwrap_or(false);
                    if !ok {
                        return Ok(false);
                    }
                }
            }
        }
        // Dependency axioms.
        Ok(theory
            .deps
            .iter()
            .all(|dep| dep.holds_in_world(world, &theory.atoms)))
    }

    /// Splits the world vector across `threads` scoped workers and collects
    /// each worker's output in chunk order. With one thread (or ≤ 1 world)
    /// the worker runs inline on the calling thread — the sequential path
    /// and the parallel path execute the same code.
    fn fan_out<F>(&self, threads: usize, worker: F) -> Result<Vec<ChunkOut>, WorldsError>
    where
        F: Fn(&[BitSet]) -> Result<ChunkOut, WorldsError> + Sync,
    {
        if threads <= 1 || self.worlds.len() <= 1 {
            return Ok(vec![worker(&self.worlds)?]);
        }
        let chunk = self.worlds.len().div_ceil(threads);
        let worker = &worker;
        let results: Vec<Result<ChunkOut, WorldsError>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .worlds
                .chunks(chunk)
                .map(|c| s.spawn(move || worker(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worlds worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }

    /// Pools per-worker chunks into the canonical world set: hash-based
    /// dedup (duplicates never reach the comparison sort), then one sort by
    /// set-bit order. Produces exactly `winslett_ldml::canonicalize` of the
    /// concatenation, without paying the comparator on duplicates.
    fn merge_canonical(chunks: Vec<Vec<BitSet>>) -> Vec<BitSet> {
        let cap = chunks.iter().map(Vec::len).sum();
        let mut seen: FxHashSet<BitSet> =
            FxHashSet::with_capacity_and_hasher(cap, Default::default());
        for c in chunks {
            seen.extend(c);
        }
        let mut pooled: Vec<BitSet> = seen.into_iter().collect();
        pooled.sort_by(|a, b| a.ones().cmp(b.ones()));
        pooled
    }

    /// Merges worker outputs into `self.worlds` and folds their counters
    /// into the stats block.
    fn finish_apply(&mut self, chunks: Vec<ChunkOut>, threads: usize, start: Instant) {
        let worlds_in = self.worlds.len() as u64;
        let mut produced = Vec::with_capacity(chunks.len());
        for c in chunks {
            self.stats.models_produced += c.models_produced;
            self.stats.rule3_filtered += c.rule3_filtered;
            self.stats.compile_reuse_hits += c.reuse_hits;
            produced.push(c.produced);
        }
        self.worlds = Self::merge_canonical(produced);
        let nanos = start.elapsed().as_nanos() as u64;
        self.stats.applies += 1;
        self.stats.worlds_in += worlds_in;
        self.stats.worlds_out += self.worlds.len() as u64;
        self.stats.last_threads = threads as u64;
        self.stats.last_apply_nanos = nanos;
        self.stats.total_apply_nanos += nanos;
    }

    /// Applies `update` to every world independently, enforcing rule 3,
    /// then pools and canonicalizes — the definitionally correct update.
    ///
    /// The update is compiled once ([`CompiledInsert`]) and the world
    /// vector is fanned out across worker threads; see the module docs.
    pub fn apply(&mut self, update: &Update, theory: &Theory) -> Result<(), WorldsError> {
        let compiled = CompiledInsert::compile(update).map_err(WorldsError::Ldml)?;
        self.apply_compiled(&compiled, theory)
    }

    /// Applies an already-compiled update — the hoisted hot path. Callers
    /// replaying one update against many engines (or many times) compile
    /// once and use this directly.
    pub fn apply_compiled(
        &mut self,
        compiled: &CompiledInsert,
        theory: &Theory,
    ) -> Result<(), WorldsError> {
        let start = Instant::now();
        let threads = self.effective_threads(self.worlds.len());
        let chunks = self.fan_out(threads, |worlds| {
            let mut out = ChunkOut::default();
            for w in worlds {
                let produced = compiled.apply(w);
                out.models_produced += produced.len() as u64;
                for m in produced {
                    if Self::satisfies_axioms(theory, &m)? {
                        out.produced.push(m);
                    } else {
                        out.rule3_filtered += 1;
                    }
                }
            }
            Ok(out)
        })?;
        self.finish_apply(chunks, threads, start);
        Ok(())
    }

    /// Applies a sequence of updates, reusing compilations for repeated
    /// updates (reuse is visible as [`EngineStats::compile_reuse_hits`]).
    pub fn apply_all(&mut self, updates: &[Update], theory: &Theory) -> Result<(), WorldsError> {
        let mut compiled: FxHashMap<&Update, CompiledInsert> = FxHashMap::default();
        for u in updates {
            match compiled.get(u) {
                Some(c) => {
                    self.stats.compile_reuse_hits += 1;
                    self.apply_compiled(c, theory)?;
                }
                None => {
                    let c = CompiledInsert::compile(u).map_err(WorldsError::Ldml)?;
                    self.apply_compiled(&c, theory)?;
                    compiled.insert(u, c);
                }
            }
        }
        Ok(())
    }

    /// Applies a **set** of ground updates *simultaneously* to every world
    /// (the §4 reduction target for updates with variables), enforcing
    /// rule 3, then pools and canonicalizes.
    ///
    /// The O(2^g) valuation sweep depends only on which subset of the
    /// updates triggered, so each worker memoizes sweeps per subset
    /// ([`SimultaneousCache`]); hits count toward
    /// [`EngineStats::compile_reuse_hits`].
    pub fn apply_simultaneous(
        &mut self,
        updates: &[Update],
        theory: &Theory,
    ) -> Result<(), WorldsError> {
        let forms: Vec<InsertForm> = updates.iter().map(Update::to_insert).collect();
        let start = Instant::now();
        let threads = self.effective_threads(self.worlds.len());
        let chunks = self.fan_out(threads, |worlds| {
            let mut out = ChunkOut::default();
            let mut cache = SimultaneousCache::default();
            for w in worlds {
                let produced = apply_simultaneous_cached(&forms, w, &mut cache)?;
                out.models_produced += produced.len() as u64;
                for m in produced {
                    if Self::satisfies_axioms(theory, &m)? {
                        out.produced.push(m);
                    } else {
                        out.rule3_filtered += 1;
                    }
                }
            }
            out.reuse_hits = cache.hits;
            Ok(out)
        })?;
        self.finish_apply(chunks, threads, start);
        Ok(())
    }

    /// Runs `predicate` over every world, in parallel, and reports whether
    /// all (`conjunctive = true`) or any (`conjunctive = false`) hold.
    fn par_query<F>(&self, conjunctive: bool, predicate: F) -> bool
    where
        F: Fn(&BitSet) -> bool + Sync,
    {
        let threads = self.effective_threads(self.worlds.len());
        if threads <= 1 || self.worlds.len() <= 1 {
            return if conjunctive {
                self.worlds.iter().all(&predicate)
            } else {
                self.worlds.iter().any(&predicate)
            };
        }
        let chunk = self.worlds.len().div_ceil(threads);
        let predicate = &predicate;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .worlds
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move || {
                        if conjunctive {
                            c.iter().all(predicate)
                        } else {
                            c.iter().any(predicate)
                        }
                    })
                })
                .collect();
            let mut verdict = conjunctive;
            for h in handles {
                let v = h.join().expect("worlds worker panicked");
                if conjunctive {
                    verdict &= v;
                } else {
                    verdict |= v;
                }
            }
            verdict
        })
    }

    /// Certain truth of a wff: true in every world.
    pub fn entails(&self, wff: &Wff) -> bool {
        self.par_query(true, |w| wff.eval(&mut |a: &AtomId| w.get(a.index())))
    }

    /// Possible truth of a wff: true in some world.
    pub fn consistent_with(&self, wff: &Wff) -> bool {
        self.par_query(false, |w| wff.eval(&mut |a: &AtomId| w.get(a.index())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::{AtomId, Wff};

    /// The §3.3 running example: atoms a, b; worlds {a} and {a, b}.
    fn paper_setup() -> (Theory, AtomId, AtomId, WorldsEngine) {
        let mut t = Theory::new();
        let r = t.declare_relation("Tup", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_wff(&Wff::Atom(a));
        t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
        let e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        (t, a, b, e)
    }

    #[test]
    fn materializes_paper_worlds() {
        let (_, _, _, e) = paper_setup();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn nonbranching_modify_example() {
        // §3.3: MODIFY a TO BE a′ WHERE b ∧ a ⇒ worlds {b, a′} and {a}.
        let (mut t, a, b, mut e) = paper_setup();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let ca2 = t.constant("a'");
        let a2 = t.atom(r, &[ca2]);
        let u = Update::modify(a, Wff::Atom(a2), Wff::Atom(b));
        e.apply(&u, &t).unwrap();
        assert_eq!(e.len(), 2);
        let rendered: Vec<Vec<String>> = e.worlds().iter().map(|w| t.format_world(w)).collect();
        assert!(rendered.contains(&vec!["Tup(a)".to_string()]));
        assert!(rendered.contains(&vec!["Tup(a')".to_string(), "Tup(b)".to_string()]));
    }

    #[test]
    fn branching_insert_example() {
        // §3.3 branching example: MODIFY a TO BE (c ∨ a) WHERE b ∧ a over
        // worlds {a,b} and {a} yields 4 worlds:
        // {a}, {b,c}, {b,a}, {b,c,a}.
        let (mut t, a, b, mut e) = paper_setup();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let cc = t.constant("c");
        let c = t.atom(r, &[cc]);
        let u = Update::modify(a, Wff::Or(vec![Wff::Atom(c), Wff::Atom(a)]), Wff::Atom(b));
        e.apply(&u, &t).unwrap();
        assert_eq!(e.len(), 4);
        let rendered: Vec<Vec<String>> = e.worlds().iter().map(|w| t.format_world(w)).collect();
        for expect in [
            vec!["Tup(a)".to_string()],
            vec!["Tup(b)".to_string(), "Tup(c)".to_string()],
            vec!["Tup(a)".to_string(), "Tup(b)".to_string()],
            vec![
                "Tup(a)".to_string(),
                "Tup(b)".to_string(),
                "Tup(c)".to_string(),
            ],
        ] {
            assert!(rendered.contains(&expect), "missing world {expect:?}");
        }
    }

    #[test]
    fn assert_prunes_worlds() {
        let (_, _, b, mut e) = paper_setup();
        let t = paper_setup().0;
        let u = Update::assert(Wff::Atom(b));
        e.apply(&u, &t).unwrap();
        assert_eq!(e.len(), 1);
        assert!(e.entails(&Wff::Atom(b)));
    }

    #[test]
    fn assert_can_empty_the_database() {
        let (t, a, _, mut e) = paper_setup();
        e.apply(&Update::assert(Wff::Atom(a).not()), &t).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn entails_and_consistent_with() {
        let (_, a, b, e) = paper_setup();
        assert!(e.entails(&Wff::Atom(a)));
        assert!(!e.entails(&Wff::Atom(b)));
        assert!(e.consistent_with(&Wff::Atom(b)));
        assert!(e.consistent_with(&Wff::Atom(b).not()));
        assert!(!e.consistent_with(&Wff::Atom(a).not()));
    }

    #[test]
    fn type_axioms_filter_produced_worlds() {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let instock = t.declare_typed_relation("InStock1", &[part]).unwrap();
        let c32 = t.constant("32");
        let atom = t.atom(instock, &[c32]);
        let pa = t.atom(part, &[c32]);
        // Start with an empty, consistent database (both atoms false).
        t.assert_not_atom(atom);
        t.assert_not_atom(pa);
        let mut e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        assert_eq!(e.len(), 1);
        // Inserting InStock1(32) without PartNo(32) violates the type
        // axiom: every produced world is filtered out (rule 3).
        e.apply(&Update::insert(Wff::Atom(atom), Wff::t()), &t)
            .unwrap();
        assert!(e.is_empty());
        // Inserting both together survives.
        let mut e2 = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        e2.apply(
            &Update::insert(Wff::and2(Wff::Atom(atom), Wff::Atom(pa)), Wff::t()),
            &t,
        )
        .unwrap();
        assert_eq!(e2.len(), 1);
    }

    #[test]
    fn dependency_axioms_filter_produced_worlds() {
        use winslett_theory::Dependency;
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).unwrap();
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
        let ca = t.constant("a");
        let cb = t.constant("b");
        let cc = t.constant("c");
        let ab = t.atom(p, &[ca, cb]);
        let ac = t.atom(p, &[ca, cc]);
        t.assert_atom(ab);
        t.assert_not_atom(ac);
        let mut e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        assert_eq!(e.len(), 1);
        // Inserting P(a,c) while P(a,b) holds violates the FD.
        e.apply(&Update::insert(Wff::Atom(ac), Wff::t()), &t)
            .unwrap();
        assert!(e.is_empty());
        // Inserting P(a,c) while *deleting* P(a,b) is fine.
        let mut e2 = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        e2.apply(
            &Update::insert(Wff::and2(Wff::Atom(ac), Wff::Atom(ab).not()), Wff::t()),
            &t,
        )
        .unwrap();
        assert_eq!(e2.len(), 1);
    }

    #[test]
    fn stale_engine_universe_mismatch_is_an_error_not_a_vacuous_pass() {
        // A world with a set bit beyond the theory's atom table: the old
        // code `continue`d past it, silently passing rule 3. It must be a
        // UniverseMismatch error.
        let (t, _, _, _) = paper_setup();
        let stale_world: BitSet = [0usize, 100].into_iter().collect();
        let r = WorldsEngine::satisfies_axioms(&t, &stale_world);
        assert!(matches!(
            r,
            Err(WorldsError::UniverseMismatch {
                atom_index: 100,
                ..
            })
        ));
        // The same error propagates out of the apply path.
        let mut e = WorldsEngine::from_worlds(vec![stale_world]);
        let err = e
            .apply(&Update::insert(Wff::Atom(AtomId(0)), Wff::t()), &t)
            .unwrap_err();
        assert!(matches!(err, WorldsError::UniverseMismatch { .. }));
    }

    #[test]
    fn type_axiom_arity_mismatch_is_an_error_not_a_zip_truncation() {
        // Intern an atom whose argument count disagrees with its relation's
        // type axiom (bypassing the checked constructors). The old code
        // zip-truncated and checked only the shorter prefix.
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let instock = t.declare_typed_relation("InStock1", &[part]).unwrap();
        let c1 = t.constant("1");
        let c2 = t.constant("2");
        let good = t.atom(instock, &[c1]);
        t.assert_not_atom(good);
        let crooked = t.atoms.intern(GroundAtom::new(instock, &[c1, c2]));
        let mut world = BitSet::zeros(t.atoms.len());
        world.set(crooked.index(), true);
        let r = WorldsEngine::satisfies_axioms(&t, &world);
        assert!(matches!(
            r,
            Err(WorldsError::ArityMismatch {
                attrs: 1,
                args: 2,
                ..
            })
        ));
    }

    #[test]
    fn pinned_thread_counts_produce_identical_worlds() {
        // Deterministic mini version of the proptest in
        // tests/commutative_diagram.rs: every pinned thread count yields
        // byte-identical canonical world vectors.
        let (mut t, a, b, e) = paper_setup();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let cc = t.constant("c");
        let c = t.atom(r, &[cc]);
        let updates = vec![
            Update::insert(Wff::or2(Wff::Atom(c), Wff::Atom(b)), Wff::t()),
            Update::modify(a, Wff::or2(Wff::Atom(a), Wff::Atom(c)), Wff::t()),
            Update::assert(Wff::or2(Wff::Atom(b), Wff::Atom(c))),
        ];
        let mut runs: Vec<Vec<BitSet>> = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            let mut engine = e.clone().with_threads(threads);
            engine.apply_all(&updates, &t).unwrap();
            runs.push(engine.worlds().to_vec());
        }
        for r in &runs[1..] {
            assert_eq!(&runs[0], r);
        }
    }

    #[test]
    fn stats_count_worlds_models_and_reuse() {
        let (t, a, b, e) = paper_setup();
        let mut e = e.with_threads(2);
        let u = Update::insert(Wff::or2(Wff::Atom(a), Wff::Atom(b)), Wff::t());
        // Same update twice: the second apply reuses the compilation.
        e.apply_all(&[u.clone(), u], &t).unwrap();
        let s = e.stats();
        assert_eq!(s.applies, 2);
        assert_eq!(s.compile_reuse_hits, 1);
        assert_eq!(s.worlds_in, 2 + 3); // 2 worlds in, 3 after first apply
        assert_eq!(s.worlds_out, 3 + 3);
        // Each apply produced 3 models per world (a ∨ b has 3 valuations).
        assert_eq!(s.models_produced, 3 * 2 + 3 * 3);
        assert_eq!(s.rule3_filtered, 0);
        assert_eq!(s.last_threads, 2);
        assert!(s.total_apply_nanos >= s.last_apply_nanos);
        e.reset_stats();
        assert_eq!(e.stats(), &EngineStats::default());
    }

    #[test]
    fn simultaneous_reuse_hits_are_counted() {
        // 4 worlds, one update triggered everywhere: 3 of the 4 sweeps are
        // cache hits (single worker).
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let mut atoms = Vec::new();
        for i in 0..2 {
            let c = t.constant(&format!("c{i}"));
            let id = t.atom(r, &[c]);
            t.register_atom(id);
            atoms.push(id);
        }
        t.assert_wff(&Wff::t());
        let mut e = WorldsEngine::from_theory(&t, ModelLimit::default())
            .unwrap()
            .with_threads(1);
        assert_eq!(e.len(), 4);
        e.apply_simultaneous(&[Update::insert(Wff::Atom(atoms[0]), Wff::t())], &t)
            .unwrap();
        assert_eq!(e.stats().compile_reuse_hits, 3);
    }
}
