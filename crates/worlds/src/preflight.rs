//! A pre-execution gate in front of [`WorldsEngine`]: run the
//! `winslett-analyze` static passes on each update *before* applying it.
//!
//! The baseline engine silently realizes every destructive consequence of
//! the §3.2/§3.5 semantics — an update whose produced worlds all violate
//! the type or dependency axioms simply empties the database. The gate
//! catches those statements up front: [`Preflight::Warn`] applies the
//! update anyway but hands the findings back, [`Preflight::Reject`] refuses
//! to apply any update with an `E0xx` finding.

use crate::engine::WorldsEngine;
use crate::error::WorldsError;
use winslett_analyze::{analyze_program, Diagnostic, Severity};
use winslett_ldml::Update;
use winslett_theory::Theory;

/// How strictly the gate treats the analyzer's findings.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Preflight {
    /// No analysis: behave exactly like [`WorldsEngine::apply`].
    #[default]
    Off,
    /// Analyze and report, but always apply the update.
    Warn,
    /// Refuse to apply an update with any `Error`-severity finding
    /// (warnings are reported but do not block).
    Reject,
}

impl WorldsEngine {
    /// Applies `update` behind the `mode` pre-flight gate, returning the
    /// analyzer's findings for the statement.
    ///
    /// Under [`Preflight::Reject`], an `E0xx` finding aborts with
    /// [`WorldsError::Rejected`] and the engine's worlds are left
    /// untouched.
    ///
    /// ```
    /// use winslett_ldml::Update;
    /// use winslett_logic::{ModelLimit, Wff};
    /// use winslett_theory::Theory;
    /// use winslett_worlds::{Preflight, WorldsEngine};
    ///
    /// let mut t = Theory::new();
    /// let part = t.declare_attribute("PartNo")?;
    /// let instock = t.declare_typed_relation("InStock", &[part])?;
    /// let c32 = t.constant("32");
    /// let atom = t.atom(instock, &[c32]);
    /// let pa = t.atom(part, &[c32]);
    /// t.assert_not_atom(atom);
    /// t.assert_not_atom(pa);
    ///
    /// let mut e = WorldsEngine::from_theory(&t, ModelLimit::default())?;
    /// // Inserting InStock(32) without PartNo(32) would annihilate the
    /// // database; the gate refuses instead.
    /// let u = Update::insert(Wff::Atom(atom), Wff::t());
    /// assert!(e.apply_checked(&u, &t, Preflight::Reject).is_err());
    /// assert_eq!(e.len(), 1); // untouched
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn apply_checked(
        &mut self,
        update: &Update,
        theory: &Theory,
        mode: Preflight,
    ) -> Result<Vec<Diagnostic>, WorldsError> {
        let diagnostics = match mode {
            Preflight::Off => Vec::new(),
            Preflight::Warn | Preflight::Reject => {
                analyze_program(theory, std::slice::from_ref(update))
            }
        };
        if mode == Preflight::Reject {
            if let Some(d) = diagnostics.iter().find(|d| d.severity == Severity::Error) {
                return Err(WorldsError::Rejected {
                    code: d.code.as_str().to_string(),
                    message: d.message.clone(),
                });
            }
        }
        self.apply(update, theory)?;
        Ok(diagnostics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_analyze::Code;
    use winslett_logic::{ModelLimit, Wff};

    fn typed_setup() -> (Theory, Update, WorldsEngine) {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let instock = t.declare_typed_relation("InStock", &[part]).unwrap();
        let c32 = t.constant("32");
        let atom = t.atom(instock, &[c32]);
        let pa = t.atom(part, &[c32]);
        t.assert_not_atom(atom);
        t.assert_not_atom(pa);
        let e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        let bad = Update::insert(Wff::Atom(atom), Wff::t());
        (t, bad, e)
    }

    #[test]
    fn off_mode_behaves_like_apply() {
        let (t, bad, mut e) = typed_setup();
        let diags = e.apply_checked(&bad, &t, Preflight::Off).unwrap();
        assert!(diags.is_empty());
        assert!(e.is_empty()); // the annihilation went through
    }

    #[test]
    fn warn_mode_reports_but_applies() {
        let (t, bad, mut e) = typed_setup();
        let diags = e.apply_checked(&bad, &t, Preflight::Warn).unwrap();
        assert!(diags.iter().any(|d| d.code == Code::E003));
        assert!(e.is_empty());
    }

    #[test]
    fn reject_mode_blocks_errors_and_keeps_worlds() {
        let (t, bad, mut e) = typed_setup();
        let err = e.apply_checked(&bad, &t, Preflight::Reject).unwrap_err();
        match err {
            WorldsError::Rejected { code, message } => {
                assert_eq!(code, "E003");
                assert!(message.contains("type axiom"));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn reject_mode_lets_warnings_through() {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let a = t.atom(r, &[ca]);
        t.assert_atom(a);
        let mut e = WorldsEngine::from_theory(&t, ModelLimit::default()).unwrap();
        // Already-true INSERT: W003, a warning — applied anyway.
        let u = Update::insert(Wff::Atom(a), Wff::Atom(a));
        let diags = e.apply_checked(&u, &t, Preflight::Reject).unwrap();
        assert!(diags.iter().any(|d| d.code == Code::W003));
        assert_eq!(e.len(), 1);
    }
}
