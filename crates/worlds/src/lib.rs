//! # winslett-worlds
//!
//! Alternative worlds and the possible-worlds baseline of Winslett (PODS
//! 1986, §3.2): the "parallel computation method" that *defines* correct
//! query and update processing for databases with incomplete information.
//!
//! * [`WorldsEngine`] — materializes every alternative world of a theory
//!   and applies LDML updates world-by-world (with §3.5 rule 3 filtering by
//!   type and dependency axioms). Exponential, but definitionally correct.
//! * [`check_commutes`] — the §3.2 commutative diagram as an executable
//!   property: the update algorithm under test (GUA) must produce a theory
//!   whose worlds equal the baseline's pooled worlds (Theorem 1/5).

//! * [`Preflight`] — an optional pre-execution gate that runs the
//!   `winslett-analyze` static passes on each update before it is applied,
//!   either warning or rejecting outright.

pub mod diagram;
pub mod engine;
pub mod error;
pub mod pma;
pub mod preflight;

pub use diagram::{check_commutes, DiagramReport};
pub use engine::{EngineStats, WorldsEngine};
pub use error::WorldsError;
pub use pma::{apply_insert_pma, apply_update_pma};
pub use preflight::Preflight;
