//! Robustness: no parser in the workspace may panic on arbitrary input —
//! malformed text must come back as a typed error.

use proptest::prelude::*;
use winslett::db::LogicalDatabase;
use winslett::ldml::parse_update;
use winslett::logic::{parse_wff, AtomTable, ParseContext, Vocabulary};

fn seeded_db() -> LogicalDatabase {
    let mut db = LogicalDatabase::new();
    db.declare_relation("Orders", 3).unwrap();
    db.declare_relation("InStock", 2).unwrap();
    db.load_fact("Orders", &["700", "32", "9"]).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The wff parser never panics, on any string.
    #[test]
    fn wff_parser_never_panics(input in ".{0,64}") {
        let mut vocab = Vocabulary::new();
        let mut atoms = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
        let _ = parse_wff(&input, &mut ctx);
    }

    /// The LDML statement parser never panics.
    #[test]
    fn ldml_parser_never_panics(input in ".{0,80}") {
        let mut vocab = Vocabulary::new();
        let mut atoms = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
        let _ = parse_update(&input, &mut ctx);
    }

    /// Mutated near-valid LDML statements never panic the full pipeline.
    #[test]
    fn mutated_statements_never_panic(
        noise in ".{0,12}",
        pos in 0usize..60,
    ) {
        let base = "MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)";
        let cut = pos.min(base.len());
        // Splice noise into the middle at a char boundary.
        let mut boundary = cut;
        while !base.is_char_boundary(boundary) {
            boundary -= 1;
        }
        let mutated = format!("{}{}{}", &base[..boundary], noise, &base[boundary..]);
        let mut db = seeded_db();
        let _ = db.execute(&mutated);
        let _ = db.execute_variable(&mutated);
        // The database survives whatever happened.
        let _ = db.world_names();
    }

    /// The query parser never panics.
    #[test]
    fn query_parser_never_panics(input in ".{0,64}") {
        let db = seeded_db();
        let _ = db.query(&input);
    }
}

/// A gallery of specifically nasty inputs.
#[test]
fn nasty_inputs_return_errors() {
    let mut db = seeded_db();
    for src in [
        "",
        " ",
        "(",
        ")",
        "((((((((((",
        "INSERT",
        "INSERT WHERE",
        "INSERT WHERE WHERE",
        "MODIFY TO BE WHERE",
        "DELETE WHERE T",
        "INSERT Orders(700,32,9 WHERE T",
        "INSERT Orders(,,) WHERE T",
        "INSERT Orders(700,32,9) WHERE",
        "INSERT & WHERE T",
        "ASSERT !!!!!",
        "ASSERT ¬∧∨→↔",
        "INSERT Orders(700,32,9) WHERE T trailing",
        "?- ",
        "INSERT T WHERE T WHERE T",
    ] {
        assert!(db.execute(src).is_err(), "`{src}` should be rejected");
    }
    // Unicode connectives in valid positions still work.
    assert!(db.execute("ASSERT ¬InStock(99,99) ∧ T").is_ok());
    assert!(db.is_consistent());
}
