//! Serializability of multi-statement transactions, plus crash
//! atomicity of the transactional WAL.
//!
//! **Serializability** (the Theorem 3/4 claim behind footprint locking):
//! random interleaved transactions from concurrent writer threads must
//! leave the database in the state produced by replaying the *committed*
//! transactions' statements, grouped by transaction, in commit-LSN
//! order, through the §4 `replay_updates` strawman — a deliberately
//! different code path from the server's GUA writer. Transactions that
//! rolled back, timed out, or never committed contribute nothing. This
//! holds because the lock table serializes conflicting footprints while
//! Theorem 4 makes the concurrently-interleaved disjoint ones commute.
//!
//! **Crash atomicity**: a WAL carrying a committed transaction and an
//! unfinished one is truncated at *every* byte boundary; recovery must
//! always succeed, must land on a legal prefix state, must expose the
//! committed transaction's effects atomically (all statements or none,
//! depending on whether its commit marker survived), and must never
//! expose the unfinished transaction's effects — it gets a compensating
//! abort instead.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;
use winslett::db::wal::FailpointStorage;
use winslett::db::{
    replay_updates, DbError, DbOptions, DurableDatabase, LogicalDatabase, MemStorage, Storage,
    SyncPolicy, WalOptions,
};
use winslett_serve::{Client, ClientError, ErrorKindWire, Server, ServerOptions};

/// The statement pool: consistent-by-construction LDML over a tiny
/// universe (same pool as the linearizability suite), so any committed
/// combination is satisfiable and the SAT work stays trivial.
const POOL: &[&str] = &[
    "INSERT R(1) WHERE T",
    "INSERT R(2) | R(3) WHERE T",
    "DELETE R(1) WHERE T",
    "MODIFY R(2) TO BE R(4) WHERE T",
    "INSERT S(1) WHERE R(1)",
    "DELETE S(1) WHERE T",
    "INSERT R(3) WHERE S(1)",
];

/// One scripted transaction: which pool statements, and whether the
/// writer asks to commit (it may still abort on a lock timeout).
type TxnScript = (Vec<usize>, bool);

fn boot(threaded: bool) -> (JoinHandle<Result<MemStorage, DbError>>, SocketAddr) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(4),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 32,
            idle_timeout: Duration::from_secs(10),
            threaded,
            // Short enough that adversarial interleavings (mutual waits)
            // resolve quickly; timed-out transactions simply abort.
            lock_timeout: Duration::from_millis(500),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    (std::thread::spawn(move || server.run()), addr)
}

fn world_set(db: &LogicalDatabase) -> BTreeSet<Vec<String>> {
    db.world_names().expect("worlds").into_iter().collect()
}

/// Replays committed transactions (sorted by commit LSN) through the §4
/// path and returns the resulting world set.
fn replayed_commits(committed: &[(u64, Vec<usize>)]) -> BTreeSet<Vec<String>> {
    let mut order: Vec<&(u64, Vec<usize>)> = committed.iter().collect();
    order.sort_by_key(|(lsn, _)| *lsn);
    let mut parse_db = LogicalDatabase::new();
    parse_db.declare_relation("R", 1).expect("declare R");
    parse_db.declare_relation("S", 1).expect("declare S");
    let updates: Vec<_> = order
        .iter()
        .flat_map(|(_, stmts)| stmts.iter())
        .map(|&idx| parse_db.parse_update(POOL[idx]).expect("parse committed"))
        .collect();
    let theory = replay_updates(parse_db.theory(), &updates).expect("replay committed");
    world_set(&LogicalDatabase::from_theory(theory, DbOptions::default()))
}

/// Runs one writer's transaction scripts; returns `(commit_lsn,
/// statements)` for every transaction the server acknowledged committed.
fn run_writer(addr: SocketAddr, scripts: Vec<TxnScript>) -> Vec<(u64, Vec<usize>)> {
    let mut client = Client::connect(addr).expect("connect writer");
    let mut committed = Vec::new();
    for (stmts, want_commit) in scripts {
        client.begin().expect("begin");
        let mut alive = true;
        for &idx in &stmts {
            match client.execute(POOL[idx]) {
                Ok(_) => {}
                // A lock-wait deadline fired: the server rolled the
                // transaction back; it committed nothing.
                Err(ClientError::Server(e)) if e.kind == ErrorKindWire::TxnTimeout => {
                    alive = false;
                    break;
                }
                Err(e) => panic!("txn statement {:?}: {e}", POOL[idx]),
            }
        }
        if !alive {
            continue;
        }
        if want_commit {
            let reply = client.commit().expect("commit");
            committed.push((reply.lsn, stmts));
        } else {
            client.rollback().expect("rollback");
        }
    }
    committed
}

/// The serializability check: interleave the scripts from concurrent
/// connections, then compare the reopened post-shutdown database against
/// the §4 replay of exactly the committed transactions in commit order.
fn run_scenario(writer_scripts: Vec<Vec<TxnScript>>, threaded: bool) {
    let (running, addr) = boot(threaded);
    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");
    setup.declare_relation("S", 1).expect("declare S");

    let barrier = Arc::new(Barrier::new(writer_scripts.len()));
    let handles: Vec<_> = writer_scripts
        .into_iter()
        .map(|scripts| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                run_writer(addr, scripts)
            })
        })
        .collect();
    let mut committed = Vec::new();
    for handle in handles {
        committed.extend(handle.join().expect("writer thread"));
    }

    let stats = setup.stats().expect("stats");
    assert_eq!(stats.txn_active, 0, "stray open transaction: {stats:?}");
    assert_eq!(stats.txn_committed, committed.len() as u64);
    setup.shutdown().expect("shutdown");
    let storage = running.join().expect("server thread").expect("run");

    let (recovered, report) =
        DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
            .expect("reopen");
    assert_eq!(
        report.rolled_back, 0,
        "all txns were resolved before shutdown"
    );
    let expect = replayed_commits(&committed);
    let got = world_set(recovered.db());
    assert_eq!(
        got, expect,
        "recovered state is not the serial commit-order replay of the \
         committed transactions: {committed:?}"
    );
}

#[test]
fn interleaved_txns_serialize_in_commit_order() {
    // A deterministic adversarial scenario: heavy overlap on R(1)/S(1)
    // footprints plus a rollback and an uncontended transaction.
    run_scenario(
        vec![
            vec![(vec![0, 4], true), (vec![2], true)],
            vec![(vec![1, 3], true), (vec![0, 6], false)],
            vec![(vec![5], true), (vec![4, 2], true)],
        ],
        false,
    );
}

#[test]
fn interleaved_txns_serialize_in_commit_order_threaded() {
    run_scenario(
        vec![
            vec![(vec![0, 4], true), (vec![1], false)],
            vec![(vec![3, 5], true), (vec![2, 6], true)],
        ],
        true,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random concurrent transaction mixes on the reactor core.
    #[test]
    fn random_interleaved_txns_serialize(
        scripts in prop::collection::vec(
            prop::collection::vec(
                (prop::collection::vec(0..POOL.len(), 1..4), 0u8..4).prop_map(
                    |(stmts, c)| (stmts, c > 0) // commit ~75% of the time
                ),
                1..4,
            ),
            2..4,
        ),
    ) {
        run_scenario(scripts, false);
    }
}

// ----- crash atomicity of the transactional WAL ------------------------------

/// One scripted operation; transactions are named by slot index.
#[derive(Clone, Copy, Debug)]
enum TOp {
    Declare(&'static str, usize),
    Load(&'static str, &'static [&'static str]),
    Exec(&'static str),
    Begin(usize),
    TxnExec(usize, &'static str),
    Commit(usize),
}

fn apply_top<S: Storage>(
    ddb: &mut DurableDatabase<S>,
    slots: &mut [Option<u64>],
    op: &TOp,
) -> Result<(), DbError> {
    match op {
        TOp::Declare(name, arity) => ddb.declare_relation(name, *arity).map(|_| ()),
        TOp::Load(pred, args) => ddb.load_fact(pred, args).map(|_| ()),
        TOp::Exec(src) => ddb.execute(src).map(|_| ()),
        TOp::Begin(slot) => {
            slots[*slot] = Some(ddb.txn_begin()?);
            Ok(())
        }
        TOp::TxnExec(slot, src) => {
            let txn = slots[*slot].expect("begin precedes txn exec");
            ddb.txn_execute(txn, src).map(|_| ())
        }
        TOp::Commit(slot) => {
            let txn = slots[*slot].take().expect("begin precedes commit");
            ddb.txn_commit(txn).map(|_| ())
        }
    }
}

/// Setup, a plain write, a committed two-statement transaction, then a
/// transaction that is *never* finished — the WAL ends with its begin
/// and one op, no marker.
const CRASH_SCRIPT: &[TOp] = &[
    TOp::Declare("R", 1),
    TOp::Declare("S", 1),
    TOp::Load("R", &["9"]),
    TOp::Exec("INSERT S(5) WHERE T"),
    TOp::Begin(0),
    TOp::TxnExec(0, "INSERT R(1) WHERE T"),
    TOp::TxnExec(0, "INSERT S(1) WHERE R(1)"),
    TOp::Commit(0),
    TOp::Begin(1),
    TOp::TxnExec(1, "INSERT R(2) WHERE T"),
];

fn crash_wal_options() -> WalOptions {
    WalOptions {
        policy: SyncPolicy::EveryRecord,
        compact_growth_factor: None,
        compact_min_nodes: 0,
    }
}

/// Crash-free probe: the world set after each op (the legal recovery
/// outcomes — note open-transaction ops leave the durable state
/// unchanged, so the committed transaction appears atomically at its
/// `Commit` step and the unfinished one never appears at all), plus the
/// total bytes written.
fn probe() -> (Vec<BTreeSet<Vec<String>>>, u64) {
    let storage = FailpointStorage::unlimited();
    let handle = storage.clone();
    let (mut ddb, _) = DurableDatabase::open(storage, DbOptions::default(), crash_wal_options())
        .expect("probe open");
    let mut slots = [None, None];
    let mut states = vec![world_set(ddb.db())];
    for op in CRASH_SCRIPT {
        apply_top(&mut ddb, &mut slots, op).expect("probe op");
        states.push(world_set(ddb.db()));
    }
    ddb.sync().expect("probe sync");
    (states, handle.bytes_written())
}

fn run_with_kill(kill: u64) -> MemStorage {
    let storage = FailpointStorage::new(kill);
    let handle = storage.clone();
    if let Ok((mut ddb, _)) =
        DurableDatabase::open(storage, DbOptions::default(), crash_wal_options())
    {
        let mut slots = [None, None];
        for op in CRASH_SCRIPT {
            if apply_top(&mut ddb, &mut slots, op).is_err() {
                break;
            }
        }
        let _ = ddb.sync();
    }
    handle.survivor()
}

#[test]
fn exhaustive_kill_points_with_unfinished_txn_recover_atomically() {
    let (legal, total) = probe();
    assert!(total > 0);
    for kill in 0..=total {
        let survivor = run_with_kill(kill);
        let (recovered, report) =
            DurableDatabase::open(survivor, DbOptions::default(), crash_wal_options())
                .unwrap_or_else(|e| panic!("kill at byte {kill}: recovery failed: {e}"));
        let worlds = world_set(recovered.db());
        assert!(
            legal.contains(&worlds),
            "kill at byte {kill}: recovered a third state.\n report: {report:?}\n worlds: {worlds:?}"
        );
        // Unfinished-transaction effects must never be visible: R(2)
        // exists in no legal state, but assert it directly for clarity.
        for world in &worlds {
            assert!(
                !world.iter().any(|f| f == "R(2)"),
                "kill at byte {kill}: unfinished txn leaked R(2): {worlds:?}"
            );
        }
    }

    // The clean-shutdown survivor: the committed transaction's full
    // effects, the unfinished one compensated with exactly one abort.
    let survivor = run_with_kill(total);
    let (mut recovered, report) =
        DurableDatabase::open(survivor, DbOptions::default(), crash_wal_options())
            .expect("reopen full");
    assert_eq!(report.rolled_back, 1, "the unfinished txn gets one abort");
    assert_eq!(&world_set(recovered.db()), legal.last().expect("states"));
    assert!(recovered.db_mut().is_certain("R(1)").expect("R(1)"));
    assert!(recovered.db_mut().is_certain("S(1)").expect("S(1)"));

    // And the compensating abort makes recovery idempotent: reopening
    // the recovered image again rolls back nothing further.
    let storage = recovered.into_storage();
    let (again, report2) =
        DurableDatabase::open(storage, DbOptions::default(), crash_wal_options())
            .expect("reopen twice");
    assert_eq!(report2.rolled_back, 0, "abort compensation is durable");
    assert_eq!(&world_set(again.db()), legal.last().expect("states"));
}
