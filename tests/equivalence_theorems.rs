//! Experiment E2 as a property: the Theorem 2/3/4 equivalence deciders
//! agree with brute-force per-model semantics on arbitrary update pairs.

use proptest::prelude::*;
use winslett::ldml::{equivalent_brute, equivalent_updates, theorem2_sufficient, theorem3, Update};
use winslett::logic::{AtomId, Formula, Wff};

const NUM_ATOMS: usize = 4;

fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i))),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i)).not()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::implies(a, b)),
        ]
    })
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (wff_strategy(), wff_strategy()).prop_map(|(o, p)| Update::insert(o, p)),
        (0..NUM_ATOMS as u32, wff_strategy()).prop_map(|(t, p)| Update::delete(AtomId(t), p)),
        (0..NUM_ATOMS as u32, wff_strategy(), wff_strategy()).prop_map(|(t, o, p)| Update::modify(
            AtomId(t),
            o,
            p
        )),
        wff_strategy().prop_map(Update::assert),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 4 (which subsumes Theorem 3) agrees with brute force.
    #[test]
    fn decider_matches_brute_force(b1 in update_strategy(), b2 in update_strategy()) {
        let decided = equivalent_updates(&b1, &b2, NUM_ATOMS).unwrap().equivalent;
        let brute = equivalent_brute(&b1, &b2, NUM_ATOMS).unwrap();
        prop_assert_eq!(decided, brute, "b1 = {:?}, b2 = {:?}", b1, b2);
    }

    /// Equivalence is reflexive and symmetric (as decided).
    #[test]
    fn decider_is_reflexive_and_symmetric(b1 in update_strategy(), b2 in update_strategy()) {
        prop_assert!(equivalent_updates(&b1, &b1, NUM_ATOMS).unwrap().equivalent);
        let ab = equivalent_updates(&b1, &b2, NUM_ATOMS).unwrap().equivalent;
        let ba = equivalent_updates(&b2, &b1, NUM_ATOMS).unwrap().equivalent;
        prop_assert_eq!(ab, ba);
    }

    /// Theorem 2 is sound: whenever its sufficient conditions hold, the
    /// updates really are equivalent.
    #[test]
    fn theorem2_is_sound(o1 in wff_strategy(), o2 in wff_strategy(), phi in wff_strategy()) {
        let b1 = Update::insert(o1, phi.clone());
        let b2 = Update::insert(o2, phi);
        if theorem2_sufficient(&b1, &b2, NUM_ATOMS) {
            prop_assert!(equivalent_brute(&b1, &b2, NUM_ATOMS).unwrap());
        }
    }

    /// Theorem 3 (shared φ) agrees with brute force on INSERT pairs.
    #[test]
    fn theorem3_matches_brute_force(
        o1 in wff_strategy(),
        o2 in wff_strategy(),
        phi in wff_strategy(),
    ) {
        let verdict = theorem3(&o1, &o2, &phi, NUM_ATOMS).unwrap();
        let b1 = Update::insert(o1, phi.clone());
        let b2 = Update::insert(o2, phi);
        let brute = equivalent_brute(&b1, &b2, NUM_ATOMS).unwrap();
        prop_assert_eq!(verdict.equivalent, brute, "reason: {}", verdict.reason);
    }

    /// The §3.2 reductions are themselves equivalences: each operator is
    /// equivalent (as an update) to its INSERT form.
    #[test]
    fn reductions_are_equivalences(b in update_strategy()) {
        let form = b.to_insert();
        let as_insert = Update::Insert { omega: form.omega, phi: form.phi };
        prop_assert!(equivalent_brute(&b, &as_insert, NUM_ATOMS).unwrap());
    }
}

/// Theorem 6: the equivalence verdict is the same whether or not the
/// theories carry type and dependency axioms. Concretely: if the decider
/// (which is axiom-agnostic) says EQUIVALENT, then applying the two updates
/// to a *typed* theory with dependencies must yield identical worlds.
#[test]
fn theorem6_equivalence_survives_axioms() {
    use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
    use winslett::logic::ModelLimit;
    use winslett::theory::{Dependency, Theory};

    // A typed schema with a dependency: R(x) over attribute A, R ⊆ Q.
    let build = || {
        let mut t = Theory::new();
        let attr = t.declare_attribute("A").unwrap();
        let r = t.declare_typed_relation("R", &[attr]).unwrap();
        let q = t.declare_relation("Q", 1).unwrap();
        t.add_dependency(Dependency::inclusion("inc", r, 1, q, &[0]).unwrap());
        let mut atoms = Vec::new();
        for name in ["x", "y"] {
            let c = t.constant(name);
            let ra = t.atom(r, &[c]);
            let qa = t.atom(q, &[c]);
            let aa = t.atom(attr, &[c]);
            atoms.extend([ra, qa, aa]);
        }
        // Legal start state: R(x), Q(x), A(x) hold; the y-family doesn't.
        t.assert_atom(atoms[0]);
        t.assert_atom(atoms[1]);
        t.assert_atom(atoms[2]);
        for &a in &atoms[3..] {
            t.assert_not_atom(a);
        }
        assert!(t.check_axioms_redundant().is_ok());
        (t, atoms)
    };

    let (probe_theory, atoms) = build();
    let n = probe_theory.num_atoms();

    let mut rng = 0x7E06_u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut equivalent_pairs = 0;
    for _ in 0..200 {
        let mk = |next: &mut dyn FnMut() -> u64| {
            let a = atoms[(next() % atoms.len() as u64) as usize];
            let b = atoms[(next() % atoms.len() as u64) as usize];
            match next() % 3 {
                0 => Update::insert(Wff::Atom(a), Wff::Atom(b)),
                1 => Update::delete(a, Wff::Atom(b)),
                _ => Update::assert(Wff::Atom(a)),
            }
        };
        let b1 = mk(&mut next);
        let b2 = mk(&mut next);
        if !equivalent_updates(&b1, &b2, n).unwrap().equivalent {
            continue;
        }
        equivalent_pairs += 1;
        // Equivalent without axioms ⇒ identical worlds on the typed theory.
        let run = |u: &Update| {
            let (t, _) = build();
            let mut e = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::Fast));
            e.apply(u).unwrap();
            e.theory.alternative_worlds(ModelLimit::default()).unwrap()
        };
        assert_eq!(run(&b1), run(&b2), "b1 = {b1:?}, b2 = {b2:?}");
    }
    assert!(
        equivalent_pairs > 0,
        "generator produced no equivalent pairs"
    );
}

/// The paper's statement that DELETE ≡ MODIFY t TO BE ¬t (same φ).
#[test]
fn delete_equals_modify_to_not_t_for_all_targets() {
    for t in 0..NUM_ATOMS as u32 {
        for phi in [Wff::t(), Wff::Atom(AtomId((t + 1) % NUM_ATOMS as u32))] {
            let b1 = Update::delete(AtomId(t), phi.clone());
            let b2 = Update::modify(AtomId(t), Wff::Atom(AtomId(t)).not(), phi);
            assert!(equivalent_brute(&b1, &b2, NUM_ATOMS).unwrap());
            assert!(equivalent_updates(&b1, &b2, NUM_ATOMS).unwrap().equivalent);
        }
    }
}
