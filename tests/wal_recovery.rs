//! Fault-injection tests for the WAL: the atomicity invariant.
//!
//! A [`FailpointStorage`] kills writes at a chosen byte. For a fixed
//! multi-update script we crash at **every** byte boundary the script ever
//! writes, recover from the surviving image, and check — via
//! [`WorldsEngine`] — that the recovered theory's alternative-world set
//! equals the world set after some *prefix* of the acknowledged
//! operations: pre-update or post-update for each update, never a third
//! state. A proptest repeats the check over randomized scripts and kill
//! points, including with aggressive auto-compaction so crashes land
//! inside checkpoints too.

use proptest::prelude::*;
use std::collections::BTreeSet;
use winslett::db::wal::{
    DurableDatabase, FailpointStorage, MemStorage, Storage, SyncPolicy, WalOptions,
};
use winslett::db::{DbOptions, LogicalDatabase};
use winslett::logic::ModelLimit;
use winslett::worlds::WorldsEngine;

/// One scripted operation against a durable database.
#[derive(Clone, Copy, Debug)]
enum Op {
    DeclareRelation(&'static str, usize),
    LoadFact(&'static str, &'static [&'static str]),
    Exec(&'static str),
    Checkpoint,
}

fn apply_op<S: Storage>(
    ddb: &mut DurableDatabase<S>,
    op: &Op,
) -> Result<(), winslett::db::DbError> {
    match op {
        Op::DeclareRelation(name, arity) => ddb.declare_relation(name, *arity).map(|_| ()),
        Op::LoadFact(pred, args) => ddb.load_fact(pred, args).map(|_| ()),
        Op::Exec(src) => ddb.execute(src).map(|_| ()),
        Op::Checkpoint => ddb.checkpoint(),
    }
}

/// The alternative-world set, materialized through the worlds engine and
/// rendered name-based (atom ids differ across restores).
fn world_set(db: &LogicalDatabase) -> BTreeSet<Vec<String>> {
    let engine = WorldsEngine::from_theory(db.theory(), ModelLimit::default())
        .expect("world materialization");
    engine
        .worlds()
        .iter()
        .map(|w| db.theory().format_world(w))
        .collect()
}

/// Crash-free probe run: returns every prefix state's world set (the set
/// of *legal* recovery outcomes) and the total bytes the script writes.
fn probe(script: &[Op], wal_options: WalOptions) -> (Vec<BTreeSet<Vec<String>>>, u64) {
    let storage = FailpointStorage::unlimited();
    let handle = storage.clone();
    let (mut ddb, _) =
        DurableDatabase::open(storage, DbOptions::default(), wal_options).expect("probe open");
    let mut states = vec![world_set(ddb.db())];
    for op in script {
        apply_op(&mut ddb, op).expect("probe op");
        states.push(world_set(ddb.db()));
    }
    ddb.sync().expect("probe sync");
    (states, handle.bytes_written())
}

/// Runs the script against storage that crashes after `kill` bytes and
/// returns the surviving on-disk image.
fn run_with_kill(script: &[Op], kill: u64, wal_options: WalOptions) -> MemStorage {
    let storage = FailpointStorage::new(kill);
    let handle = storage.clone();
    if let Ok((mut ddb, _)) = DurableDatabase::open(storage, DbOptions::default(), wal_options) {
        for op in script {
            if apply_op(&mut ddb, op).is_err() {
                break;
            }
        }
        let _ = ddb.sync();
    }
    handle.survivor()
}

/// The invariant: recovery from the survivor of a crash at `kill` bytes
/// must land on some prefix state — never a third state — and the
/// recovered database must keep working.
fn assert_atomic_at(
    script: &[Op],
    kill: u64,
    wal_options: WalOptions,
    legal: &[BTreeSet<Vec<String>>],
) {
    let survivor = run_with_kill(script, kill, wal_options);
    let (recovered, report) = DurableDatabase::open(survivor, DbOptions::default(), wal_options)
        .unwrap_or_else(|e| panic!("kill at byte {kill}: recovery failed: {e}"));
    let recovered_worlds = world_set(recovered.db());
    assert!(
        legal.contains(&recovered_worlds),
        "kill at byte {kill}: recovered a third state.\n report: {report:?}\n worlds: {recovered_worlds:?}\n legal: {legal:?}"
    );
}

/// The fixed multi-update script of the exhaustive sweep: schema, facts,
/// then updates of all four LDML operators, including a branching insert.
const SCRIPT: &[Op] = &[
    Op::DeclareRelation("Orders", 3),
    Op::DeclareRelation("InStock", 2),
    Op::LoadFact("Orders", &["700", "32", "9"]),
    Op::LoadFact("InStock", &["32", "1"]),
    Op::Exec("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T"),
    Op::Exec("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)"),
    Op::Exec("ASSERT !Orders(100,32,7)"),
    Op::Exec("DELETE InStock(32,1) WHERE T"),
];

fn nocompact() -> WalOptions {
    WalOptions {
        policy: SyncPolicy::EveryRecord,
        compact_growth_factor: None,
        compact_min_nodes: 0,
    }
}

fn compact_aggressively() -> WalOptions {
    WalOptions {
        policy: SyncPolicy::GroupCommit(3),
        compact_growth_factor: Some(1.05),
        compact_min_nodes: 1,
    }
}

#[test]
fn exhaustive_kill_points_recover_to_a_prefix_state() {
    let (legal, total) = probe(SCRIPT, nocompact());
    assert!(total > 0);
    // Every byte boundary the script ever writes, kill point 0 (nothing
    // survives) through total (clean shutdown) inclusive.
    for kill in 0..=total {
        assert_atomic_at(SCRIPT, kill, nocompact(), &legal);
    }
}

#[test]
fn kill_points_inside_checkpoints_recover_to_a_prefix_state() {
    // Aggressive auto-compaction interleaves snapshot replaces and WAL
    // resets with the appends; crashes land in every checkpoint window.
    // Coarser stride (plus both endpoints) keeps the debug-build runtime
    // reasonable; the windows are hundreds of bytes wide, so stride 7
    // still lands several kills inside each.
    let wal_options = compact_aggressively();
    let (legal, total) = probe(SCRIPT, wal_options);
    let mut kills: Vec<u64> = (0..=total).step_by(7).collect();
    kills.push(total);
    for kill in kills {
        assert_atomic_at(SCRIPT, kill, wal_options, &legal);
    }
}

#[test]
fn explicit_checkpoint_mid_script_is_crash_safe() {
    let script: Vec<Op> = {
        let mut v = SCRIPT[..6].to_vec();
        v.push(Op::Checkpoint);
        v.extend_from_slice(&SCRIPT[6..]);
        v
    };
    let (legal, total) = probe(&script, nocompact());
    let mut kills: Vec<u64> = (0..=total).step_by(5).collect();
    kills.push(total);
    for kill in kills {
        assert_atomic_at(&script, kill, nocompact(), &legal);
    }
}

/// Pool of independent operations for randomized scripts (each is valid
/// whatever subset precedes it, so every prefix is a legal state).
const OP_POOL: &[Op] = &[
    Op::Exec("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T"),
    Op::Exec("INSERT InStock(33,5) WHERE T"),
    Op::Exec("DELETE Orders(700,32,9) WHERE T"),
    Op::Exec("MODIFY InStock(32,1) TO BE InStock(32,0) WHERE T"),
    Op::Exec("ASSERT Orders(700,32,9) | !Orders(700,32,9)"),
    Op::Exec("INSERT Orders(200,40,2) WHERE InStock(32,1)"),
    Op::Checkpoint,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The atomicity invariant over random scripts, kill points, sync
    /// policies, and compaction settings.
    #[test]
    fn any_crash_recovers_to_a_prefix_state(
        ops in prop::collection::vec(0..OP_POOL.len(), 1..6),
        kill_permille in 0u64..=1000,
        grouped in any::<bool>(),
        compact in any::<bool>(),
    ) {
        let mut script: Vec<Op> = SCRIPT[..4].to_vec(); // schema + facts
        script.extend(ops.iter().map(|&i| OP_POOL[i]));
        let wal_options = WalOptions {
            policy: if grouped { SyncPolicy::GroupCommit(4) } else { SyncPolicy::EveryRecord },
            compact_growth_factor: if compact { Some(1.1) } else { None },
            compact_min_nodes: 1,
        };
        let (legal, total) = probe(&script, wal_options);
        let kill = total * kill_permille / 1000;
        assert_atomic_at(&script, kill, wal_options, &legal);
    }
}
