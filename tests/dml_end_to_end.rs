//! End-to-end scenarios through the `LogicalDatabase` façade: textual DML,
//! incomplete information, queries, nulls, dependencies, and the replay
//! baseline — the workflows a downstream adopter would run.

use winslett::db::{DbOptions, LogicalDatabase, NullCatalog, NullableArg, ReplayDatabase};
use winslett::gua::SimplifyLevel;
use winslett::ldml::Update;
use winslett::logic::Wff;
use winslett::theory::Dependency;

fn order_db() -> LogicalDatabase {
    let mut db = LogicalDatabase::new();
    db.declare_relation("Orders", 3).unwrap();
    db.declare_relation("InStock", 2).unwrap();
    db.load_fact("Orders", &["700", "32", "9"]).unwrap();
    db.load_fact("Orders", &["701", "33", "2"]).unwrap();
    db.load_fact("InStock", &["32", "1"]).unwrap();
    db
}

#[test]
fn order_lifecycle() {
    let mut db = order_db();

    // A new order arrives, quantity uncertain between 10 and 100.
    db.execute("INSERT Orders(800,32,10) | Orders(800,32,100) WHERE T")
        .unwrap();
    assert!(db.is_possible("Orders(800,32,10)").unwrap());
    assert!(!db.is_certain("Orders(800,32,10)").unwrap());

    // Order 700 is amended where stock allows.
    db.execute("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)")
        .unwrap();
    assert!(db.is_certain("Orders(700,32,1)").unwrap());

    // The uncertainty resolves: it was 100 (and not 10).
    db.execute("ASSERT Orders(800,32,100) & !Orders(800,32,10)")
        .unwrap();
    assert!(db.is_certain("Orders(800,32,100)").unwrap());

    // All orders for part 32, now certain.
    let ans = db.query("Orders(?o, 32, ?q)").unwrap();
    assert_eq!(
        ans.certain,
        vec![
            vec!["700".to_string(), "1".to_string()],
            vec!["800".to_string(), "100".to_string()],
        ]
    );

    // Integrity-style constraint: no order without stock for its part.
    db.execute("INSERT F WHERE Orders(701,33,2) & !InStock(33,2)")
        .unwrap();
    // There's no InStock(33,2): every world had Orders(701,33,2), so the
    // database collapses to inconsistency — detected, not silent.
    assert!(!db.is_consistent());
}

#[test]
fn disjunctive_info_narrowing() {
    let mut db = order_db();
    // "one or more of a set of tuples holds true, without knowing which"
    db.load_wff("Orders(900,40,1) | Orders(900,41,1) | Orders(900,42,1)")
        .unwrap();
    let possible = db.query("Orders(900, ?p, 1)").unwrap().possible.len();
    assert_eq!(possible, 3);
    db.execute("ASSERT !Orders(900,41,1)").unwrap();
    let ans = db.query("Orders(900, ?p, 1)").unwrap();
    assert_eq!(ans.possible.len(), 2);
    assert!(ans.certain.is_empty());
    db.execute("ASSERT !Orders(900,42,1)").unwrap();
    let ans = db.query("Orders(900, ?p, 1)").unwrap();
    assert_eq!(ans.certain, vec![vec!["40".to_string()]]);
}

#[test]
fn null_value_workflow() {
    let mut db = order_db();
    let mut nulls = NullCatalog::new();
    nulls.declare("qty", &["5", "6", "7"]).unwrap();
    let update = nulls
        .expand_insert(
            db.theory_mut(),
            "Orders",
            &[
                NullableArg::parse("801"),
                NullableArg::parse("34"),
                NullableArg::parse("@qty"),
            ],
            Wff::t(),
        )
        .unwrap();
    db.update(&update).unwrap();
    let ans = db.query("Orders(801, 34, ?q)").unwrap();
    assert_eq!(ans.possible.len(), 3);
    assert!(ans.certain.is_empty());
    // Exactly-one semantics: the order certainly exists with *some* qty.
    assert!(db
        .is_certain("Orders(801,34,5) | Orders(801,34,6) | Orders(801,34,7)")
        .unwrap());
    assert!(!db
        .is_possible("Orders(801,34,5) & Orders(801,34,6)")
        .unwrap());
    // The null resolves.
    db.execute("ASSERT Orders(801,34,6)").unwrap();
    assert_eq!(
        db.query("Orders(801, 34, ?q)").unwrap().certain,
        vec![vec!["6".to_string()]]
    );
}

#[test]
fn functional_dependency_enforcement() {
    let mut db = LogicalDatabase::new();
    let p = db.declare_relation("Price", 2).unwrap();
    db.add_dependency(Dependency::functional("price-fd", p, 2, &[0]).unwrap());
    db.load_fact("Price", &["widget", "10"]).unwrap();
    // Inserting a conflicting price without removing the old one wipes
    // every world (rule 3 semantics; the paper's "weed out impossible
    // alternative worlds").
    let mut conflicted = db.clone();
    conflicted
        .execute("INSERT Price(widget,12) WHERE T")
        .unwrap();
    assert!(!conflicted.is_consistent());
    // The correct amendment replaces the tuple atomically.
    db.execute("INSERT Price(widget,12) & !Price(widget,10) WHERE T")
        .unwrap();
    assert!(db.is_consistent());
    assert!(db.is_certain("Price(widget,12)").unwrap());
    assert!(db.is_certain("!Price(widget,10)").unwrap());
}

#[test]
fn replay_database_agrees_with_eager() {
    let mut db = LogicalDatabase::with_options(DbOptions {
        simplify: SimplifyLevel::Full,
        ..DbOptions::default()
    });
    db.declare_relation("R", 1).unwrap();
    db.load_fact("R", &["a"]).unwrap();
    let initial = db.theory().clone();
    let mut replay = ReplayDatabase::new(initial);

    let scripts = [
        "INSERT R(b) | R(c) WHERE T",
        "DELETE R(a) WHERE T",
        "ASSERT R(b) | R(a)",
        "INSERT R(a) WHERE R(b)",
    ];
    for s in scripts {
        db.execute(s).unwrap();
        replay
            .update_synced(db.log().last().unwrap().clone(), db.theory())
            .unwrap();
    }
    for probe in ["R(a)", "R(b)", "R(c)", "R(a) & R(b)", "R(c) | R(b)"] {
        let wff = db.parse_wff_strict(probe).unwrap();
        assert_eq!(
            db.is_certain(probe).unwrap(),
            replay.is_certain(&wff).unwrap(),
            "certainty mismatch on {probe}"
        );
        assert_eq!(
            db.is_possible(probe).unwrap(),
            replay.is_possible(&wff).unwrap(),
            "possibility mismatch on {probe}"
        );
    }
    // The replayed theory (no simplification) is far larger than the
    // eagerly simplified one — the very gap E8 measures.
    let eager_nodes = db.stats().store_nodes;
    let replay_nodes = replay.materialized_stats().unwrap().store_nodes;
    assert!(
        replay_nodes > eager_nodes,
        "replay {replay_nodes} vs eager {eager_nodes}"
    );
}

#[test]
fn inconsistent_database_answers_are_degenerate() {
    let mut db = order_db();
    db.execute("ASSERT F").unwrap();
    assert!(!db.is_consistent());
    // Everything is certain, nothing is possible — the logic convention.
    assert!(db.is_certain("Orders(700,32,9)").unwrap());
    assert!(db.is_certain("!Orders(700,32,9)").unwrap());
    assert!(!db.is_possible("Orders(700,32,9)").unwrap());
    assert!(db.query("Orders(?o, ?p, ?q)").unwrap().possible.is_empty());
}

#[test]
fn update_errors_leave_log_clean() {
    let mut db = order_db();
    assert!(db.execute("INSERT Nope(1) WHERE T").is_err());
    assert!(db.execute("INSERT Orders(1,2) WHERE T").is_err()); // arity
    assert!(db.execute("FROBNICATE x WHERE T").is_err());
    assert_eq!(db.log().len(), 0);
    assert!(db.is_consistent());
}

#[test]
fn world_names_render_sorted() {
    let mut db = LogicalDatabase::new();
    db.declare_relation("R", 1).unwrap();
    db.load_wff("R(x) | R(y)").unwrap();
    let worlds = db.world_names().unwrap();
    assert_eq!(worlds.len(), 3);
    for w in &worlds {
        let mut sorted = w.clone();
        sorted.sort();
        assert_eq!(*w, sorted);
    }
}

#[test]
fn variable_updates_expand_and_apply_simultaneously() {
    let mut db = order_db();
    db.load_fact("Orders", &["702", "32", "4"]).unwrap();

    // Variable DELETE: remove all orders for part 32 at once.
    let (n, _) = db
        .execute_variable("DELETE Orders(?o, 32, ?q) WHERE T")
        .unwrap();
    assert_eq!(n, 2); // orders 700 and 702
    assert!(db.is_certain("!Orders(700,32,9)").unwrap());
    assert!(db.is_certain("!Orders(702,32,4)").unwrap());
    assert!(db.is_certain("Orders(701,33,2)").unwrap()); // untouched

    // Variable INSERT ranging over WHERE: flag every remaining order's
    // part as in stock at level 0. Bindings range over *registered* atoms
    // (3 instances — the deleted orders are still in the completion
    // axioms), but each instance's grounded φ guards applicability, so
    // only part 33 actually gets the flag.
    let (n, _) = db
        .execute_variable("INSERT InStock(?p, 0) WHERE Orders(?o, ?p, ?q)")
        .unwrap();
    assert_eq!(n, 3);
    assert!(db.is_certain("InStock(33,0)").unwrap());
    assert!(db.is_certain("!InStock(32,0)").unwrap());

    // Simultaneity matters: a swap-like MODIFY pair. Set up two tuples and
    // swap their quantities through a variable MODIFY — sequential
    // application would clobber.
    let mut db = LogicalDatabase::new();
    db.declare_relation("Q", 2).unwrap();
    db.load_fact("Q", &["a", "1"]).unwrap();
    db.load_fact("Q", &["b", "2"]).unwrap();
    let (n, _) = db
        .execute_variable("MODIFY Q(?x, 1) TO BE Q(?x, one) WHERE T")
        .unwrap();
    assert_eq!(n, 1);
    assert!(db.is_certain("Q(a,one)").unwrap());
    assert!(db.is_certain("!Q(a,1)").unwrap());
    assert!(db.is_certain("Q(b,2)").unwrap());
}

#[test]
fn variable_update_with_no_matches_is_noop() {
    let mut db = order_db();
    let before = db.world_names().unwrap();
    let (n, _) = db
        .execute_variable("DELETE Orders(?o, 99, ?q) WHERE T")
        .unwrap();
    assert_eq!(n, 0);
    assert_eq!(db.world_names().unwrap(), before);
}

#[test]
fn ast_level_updates_match_textual() {
    let mut db1 = order_db();
    let mut db2 = order_db();
    db1.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
    let t = db2
        .theory_mut()
        .atom_by_name("Orders", &["700", "32", "9"])
        .unwrap();
    db2.update(&Update::delete(t, Wff::t())).unwrap();
    assert_eq!(db1.world_names().unwrap(), db2.world_names().unwrap());
}
