//! Cross-crate integration: saving/loading a database mid-lifecycle, and
//! the relational-database bridge (Reiter construction + certain/possible
//! projections) composed with updates.

use winslett::db::{
    certain_database, from_world, load_theory, possible_database, save_theory, LogicalDatabase,
    RelationalDatabase,
};
use winslett::gua::GuaEngine;
use winslett::logic::ModelLimit;

#[test]
fn full_lifecycle_save_load_resume() {
    // Build a database, make it genuinely incomplete, save it, load it,
    // keep updating it, and check the continuation matches an unsaved run.
    let build = || {
        let mut db = LogicalDatabase::new();
        db.declare_relation("Orders", 3).unwrap();
        db.declare_relation("InStock", 2).unwrap();
        db.load_fact("Orders", &["700", "32", "9"]).unwrap();
        db.load_fact("InStock", &["32", "1"]).unwrap();
        db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        db
    };

    let db = build();
    let json = save_theory(db.theory()).unwrap();
    let restored = load_theory(&json).unwrap();

    // Same worlds after restore.
    let mut a = db.world_names().unwrap();
    let restored_db = LogicalDatabase::from_theory(restored, db.options());
    let mut b = restored_db.world_names().unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);

    // Continue on both paths; results must agree.
    let mut live = build();
    live.execute("ASSERT Orders(100,32,7)").unwrap();
    let mut resumed = restored_db;
    resumed.execute("ASSERT Orders(100,32,7)").unwrap();
    assert_eq!(live.world_names().unwrap(), resumed.world_names().unwrap());
}

#[test]
fn relational_bridge_roundtrip_through_updates() {
    // Ordinary database → theory (Reiter) → updates → certain/possible
    // projections → plain databases again.
    let mut rdb = RelationalDatabase::new();
    rdb.insert("Emp", &["alice", "eng"]);
    rdb.insert("Emp", &["bob", "sales"]);
    rdb.insert("Dept", &["eng"]);
    rdb.insert("Dept", &["sales"]);

    let theory = rdb.to_theory().unwrap();
    let mut engine = GuaEngine::with_defaults(theory);
    // bob's department becomes uncertain.
    engine
        .execute("INSERT (Emp(bob,sales) & !Emp(bob,support)) | (Emp(bob,support) & !Emp(bob,sales)) WHERE T")
        .unwrap();

    let certain = certain_database(&engine.theory, ModelLimit::default()).unwrap();
    let possible = possible_database(&engine.theory, ModelLimit::default()).unwrap();

    // alice's row is certain; bob's rows are possible only.
    assert!(certain.relations["Emp"].contains(&vec!["alice".to_string(), "eng".to_string()]));
    assert!(!certain.relations["Emp"].iter().any(|t| t[0] == "bob"));
    assert_eq!(
        possible.relations["Emp"]
            .iter()
            .filter(|t| t[0] == "bob")
            .count(),
        2
    );
    // Departments untouched.
    assert_eq!(certain.relations["Dept"].len(), 2);

    // Every alternative world renders as a database "between" the bounds.
    let worlds = engine
        .theory
        .alternative_worlds(ModelLimit::default())
        .unwrap();
    assert_eq!(worlds.len(), 2);
    for w in &worlds {
        let world_db = from_world(&engine.theory, w);
        for (rel, tuples) in &certain.relations {
            for t in tuples {
                assert!(
                    world_db.relations[rel].contains(t),
                    "certain tuple {t:?} missing from a world"
                );
            }
        }
        for (rel, tuples) in &world_db.relations {
            for t in tuples {
                assert!(
                    possible.relations[rel].contains(t),
                    "world tuple {t:?} outside the possible bound"
                );
            }
        }
    }
}

#[test]
fn save_load_preserves_dependencies_and_schema() {
    use winslett::theory::Dependency;
    let mut db = LogicalDatabase::new();
    let part = db.declare_attribute("PartNo").unwrap();
    let quan = db.declare_attribute("Quan").unwrap();
    let instock = db.declare_typed_relation("InStock", &[part, quan]).unwrap();
    db.add_dependency(Dependency::functional("fd", instock, 2, &[0]).unwrap());
    db.execute("INSERT InStock(32,5) WHERE T").unwrap();

    let json = save_theory(db.theory()).unwrap();
    let restored = load_theory(&json).unwrap();
    assert_eq!(restored.deps.len(), 1);
    assert!(restored.schema.has_type_axioms());

    // The restored theory still enforces the FD through rule 3 semantics.
    let mut engine = GuaEngine::with_defaults(restored);
    engine
        .execute("INSERT InStock(32,9) & PartNo(32) & Quan(9) WHERE T")
        .unwrap();
    assert!(!engine.theory.is_consistent());
}
