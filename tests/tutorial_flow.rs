//! Keeps `docs/TUTORIAL.md` honest: this test replays the tutorial's flow
//! end to end. If an API in the tutorial changes, this breaks first.

use winslett::db::{
    load_theory, save_theory, LogicalDatabase, NullCatalog, NullableArg, RelationalDatabase,
};
use winslett::logic::Wff;

#[test]
fn tutorial_flow() -> Result<(), Box<dyn std::error::Error>> {
    // §2: schema and facts.
    let mut db = LogicalDatabase::new();
    db.declare_relation("Stored", 2)?;
    db.declare_relation("Counted", 2)?;
    db.load_fact("Stored", &["widget", "bin1"])?;
    db.load_fact("Counted", &["widget", "40"])?;
    assert_eq!(db.world_names()?.len(), 1);

    // §3: three ways in for incompleteness.
    db.load_wff("Stored(gadget,bin2) | Stored(gadget,bin3)")?;
    db.execute("INSERT Counted(widget,40) | Counted(widget,38) WHERE T")?;
    let mut nulls = NullCatalog::new();
    nulls.declare("qty", &["5", "6", "7"])?;
    let u = nulls.expand_insert(
        db.theory_mut(),
        "Counted",
        &[NullableArg::parse("sprocket"), NullableArg::parse("@qty")],
        Wff::t(),
    )?;
    db.update(&u)?;
    assert!(db.world_names()?.len() > 1);
    let e = db.explain("Counted(widget,38)")?;
    assert_eq!(e.verdict, winslett::db::Verdict::Uncertain);
    assert!(e.witness.is_some() && e.counterexample.is_some());

    // §4: updating through uncertainty.
    db.execute("INSERT Counted(gadget,9) WHERE Stored(gadget,bin3)")?;
    db.execute("MODIFY Counted(widget,40) TO BE Counted(widget,41) WHERE T")?;
    db.execute("ASSERT Stored(gadget,bin3)")?;
    assert!(db.is_certain("Stored(gadget,bin3)")?);
    assert!(db.is_certain("Counted(gadget,9)")?);

    // §5: variables + transactions.
    db.execute_variable("MODIFY Stored(?p, bin1) TO BE Stored(?p, bin9) WHERE T")?;
    assert!(db.is_certain("Stored(widget,bin9)")?);
    db.execute_variable("DELETE Counted(?p, ?q) WHERE Stored(?p, bin9)")?;
    assert!(db.is_certain("!Counted(widget,41)")?);

    use winslett::theory::Dependency;
    let stored = db.theory().vocab.find_predicate("Stored").unwrap();
    db.add_dependency(Dependency::functional("one-bin", stored, 2, &[0])?);
    // This would put the widget in two bins at once: refused, rolled back.
    assert!(db
        .execute_atomic("INSERT Stored(widget,bin2) WHERE T")
        .is_err());
    assert!(db.is_certain("Stored(widget,bin9)")?);
    db.transaction(&[
        "DELETE Stored(widget,bin9) WHERE T",
        "INSERT Stored(widget,bin2) WHERE T",
    ])?;
    assert!(db.is_certain("Stored(widget,bin2)")?);

    // §6: queries.
    assert!(db.is_certain("Stored(widget,bin2)")?);
    let ans = db.query("Stored(?p, ?b) & !Counted(?p, 0)")?;
    assert!(!ans.possible.is_empty());
    let (rows, total) = db.query_with_support("Counted(sprocket, ?q)")?;
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.support < total)); // the null is unresolved
    let lower = db.certain_facts()?;
    let upper = db.possible_facts()?;
    assert!(lower.len() <= upper.len());

    // §7: persistence and interop.
    let json = save_theory(db.theory())?;
    let restored = load_theory(&json)?;
    let restored_db = LogicalDatabase::from_theory(restored, db.options());
    assert_eq!(db.world_names()?, restored_db.world_names()?);

    let mut rdb = RelationalDatabase::new();
    rdb.insert("Emp", &["alice", "eng"]);
    let theory = rdb.to_theory()?;
    assert!(theory.is_consistent());
    Ok(())
}
