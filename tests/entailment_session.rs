//! Oracle tests for the incremental entailment session: across random
//! theories, random mutation sequences, and random ground probe wffs, the
//! session-backed `Theory::entails` / `Theory::consistent_with` /
//! `Theory::is_consistent` must agree with one-shot fresh-solver SAT calls
//! over the same model constraints. A separate regression check exercises
//! the generation-counter invalidation through real GUA updates.

use proptest::prelude::*;
use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::Update;
use winslett::logic::{cnf, AtomId, Formula, Wff};
use winslett::theory::Theory;

const NUM_ATOMS: usize = 4;

fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i))),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i)).not()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::implies(a, b)),
        ]
    })
}

/// One theory mutation, chosen to cover every sub-counter of
/// `Theory::generation`: the formula store, the completion registry, the
/// atom table, and the constant vocabulary.
#[derive(Clone, Debug)]
enum Mutation {
    /// Assert a wff into the non-axiomatic section.
    AssertWff(Wff),
    /// Remove the oldest still-live formula this test inserted.
    RemoveOldest,
    /// Intern + register a brand-new atom, pinned true or false or left
    /// unknown.
    FreshAtom(Option<bool>),
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        wff_strategy().prop_map(Mutation::AssertWff),
        Just(Mutation::RemoveOldest),
        prop_oneof![Just(None), Just(Some(true)), Just(Some(false))].prop_map(Mutation::FreshAtom),
    ]
}

/// Builds a theory over atoms `0..NUM_ATOMS`, all registered, none pinned.
fn base_theory() -> Theory {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    for i in 0..NUM_ATOMS {
        let c = t.constant(&format!("c{i}"));
        let id = t.atom(r, &[c]);
        assert_eq!(id, AtomId(i as u32));
        t.register_atom(id);
    }
    t
}

/// Checks the three session-backed entry points against one-shot solvers
/// built from the same constraints.
fn assert_matches_oracle(t: &Theory, probes: &[Wff]) -> Result<(), TestCaseError> {
    let refs = t.model_constraints();
    let ref_slices: Vec<&Wff> = refs.iter().collect();
    let n = t.num_atoms();
    prop_assert_eq!(t.is_consistent(), cnf::satisfiable(&ref_slices, n));
    for w in probes {
        prop_assert_eq!(
            t.entails(w),
            cnf::entails(&ref_slices, w, n),
            "entails diverges on {:?}",
            w
        );
        let mut with_w = ref_slices.clone();
        with_w.push(w);
        prop_assert_eq!(
            t.consistent_with(w),
            cnf::satisfiable(&with_w, n),
            "consistent_with diverges on {:?}",
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The session answers exactly like fresh solvers at every point of a
    /// random mutation sequence — the cached session is either reused
    /// (generation unchanged) or correctly rebuilt (generation bumped),
    /// never stale.
    #[test]
    fn session_matches_fresh_solvers_across_mutations(
        initial in prop::collection::vec(wff_strategy(), 0..3),
        script in prop::collection::vec(
            (mutation_strategy(), prop::collection::vec(wff_strategy(), 1..3)),
            1..5,
        ),
        probes in prop::collection::vec(wff_strategy(), 1..4),
    ) {
        let mut t = base_theory();
        let mut inserted = Vec::new();
        for w in &initial {
            inserted.push(t.assert_wff(w));
        }
        assert_matches_oracle(&t, &probes)?;
        let mut fresh = 0u32;
        for (m, step_probes) in &script {
            match m {
                Mutation::AssertWff(w) => {
                    inserted.push(t.assert_wff(w));
                }
                Mutation::RemoveOldest => {
                    if !inserted.is_empty() {
                        t.store.remove(inserted.remove(0));
                    }
                }
                Mutation::FreshAtom(pin) => {
                    let r = t.vocab.find_predicate("R").unwrap();
                    let c = t.constant(&format!("f{fresh}"));
                    fresh += 1;
                    let a = t.atom(r, &[c]);
                    t.register_atom(a);
                    match pin {
                        Some(true) => {
                            t.assert_atom(a);
                        }
                        Some(false) => {
                            t.assert_not_atom(a);
                        }
                        None => {}
                    }
                }
            }
            assert_matches_oracle(&t, step_probes)?;
        }
        assert_matches_oracle(&t, &probes)?;
    }
}

/// The cached session survives interleaved GUA updates: every update
/// rewrites the store (and may intern atoms), so each query batch after an
/// update must see a rebuilt session, never a stale one.
#[test]
fn session_survives_interleaved_gua_updates() {
    let t = base_theory();
    let probes: Vec<Wff> = (0..NUM_ATOMS as u32)
        .map(|i| Wff::Atom(AtomId(i)))
        .collect();
    let updates = [
        Update::insert(Wff::Atom(AtomId(0)), Wff::t()),
        Update::insert(
            Wff::or2(Wff::Atom(AtomId(1)), Wff::Atom(AtomId(2))),
            Wff::Atom(AtomId(0)),
        ),
        Update::delete(AtomId(0), Wff::t()),
        Update::assert(Wff::or2(Wff::Atom(AtomId(2)), Wff::Atom(AtomId(3)))),
    ];
    let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::Fast));
    let check = |t: &Theory| {
        let refs = t.model_constraints();
        let ref_slices: Vec<&Wff> = refs.iter().collect();
        let n = t.num_atoms();
        assert_eq!(t.is_consistent(), cnf::satisfiable(&ref_slices, n));
        for w in &probes {
            assert_eq!(t.entails(w), cnf::entails(&ref_slices, w, n), "{w:?}");
            let mut with_w = ref_slices.clone();
            with_w.push(w);
            assert_eq!(t.consistent_with(w), cnf::satisfiable(&with_w, n), "{w:?}");
        }
    };
    check(&engine.theory);
    for u in &updates {
        engine.apply(u).expect("update applies");
        check(&engine.theory);
    }
    let stats = engine.theory.stats();
    assert!(
        stats.session_rebuilds >= 2,
        "interleaved updates must force session rebuilds, got {}",
        stats.session_rebuilds
    );
    assert!(
        stats.session_invalidations >= 1,
        "at least one cached session must have been invalidated, got {}",
        stats.session_invalidations
    );
}
