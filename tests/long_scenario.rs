//! A long scripted lifecycle — dozens of updates of every kind over a
//! realistic schema, with the possible-worlds baseline shadowing the GUA
//! engine at every step and agreeing on the worlds throughout. This is the
//! "soak test" a downstream adopter would want: not one update in
//! isolation, but a workload's worth of composed behaviour.

use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::canonicalize;
use winslett::logic::ModelLimit;
use winslett::theory::{Dependency, Theory};
use winslett::worlds::WorldsEngine;

struct Shadowed {
    engine: GuaEngine,
    baseline: WorldsEngine,
    steps: usize,
}

impl Shadowed {
    fn new(theory: Theory, level: SimplifyLevel) -> Self {
        let baseline = WorldsEngine::from_theory(&theory, ModelLimit::default()).unwrap();
        Shadowed {
            engine: GuaEngine::new(theory, GuaOptions::simplify_always(level)),
            baseline,
            steps: 0,
        }
    }

    fn run(&mut self, src: &str) {
        self.steps += 1;
        let update = self
            .engine
            .parse(src)
            .unwrap_or_else(|e| panic!("step {}: `{src}` failed to parse: {e}", self.steps));
        self.engine
            .apply(&update)
            .unwrap_or_else(|e| panic!("step {}: `{src}` failed: {e}", self.steps));
        self.baseline
            .apply(&update, &self.engine.theory)
            .unwrap_or_else(|e| panic!("step {}: baseline failed: {e}", self.steps));
        self.check(src);
    }

    fn check(&self, src: &str) {
        let ours = canonicalize(
            self.engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap(),
        );
        let theirs = canonicalize(self.baseline.worlds().to_vec());
        assert_eq!(
            ours, theirs,
            "step {} (`{src}`): GUA and baseline disagree",
            self.steps
        );
    }

    fn worlds(&self) -> usize {
        self.baseline.len()
    }
}

fn warehouse() -> Theory {
    let mut t = Theory::new();
    let stored = t.declare_relation("Stored", 2).unwrap(); // part, bin
    t.declare_relation("Counted", 2).unwrap(); // part, qty
    t.declare_relation("Ordered", 2).unwrap(); // part, qty
    t.add_dependency(Dependency::functional("one-bin", stored, 2, &[0]).unwrap());
    t
}

#[test]
fn warehouse_lifecycle_fast_simplify() {
    let mut s = Shadowed::new(warehouse(), SimplifyLevel::Fast);

    // Phase 1: certain stock arrives.
    s.run("INSERT Stored(widget,bin1) WHERE T");
    s.run("INSERT Stored(gadget,bin2) WHERE T");
    s.run("INSERT Counted(widget,40) WHERE T");
    s.run("INSERT Counted(gadget,12) WHERE T");
    assert_eq!(s.worlds(), 1);

    // Phase 2: uncertainty creeps in.
    s.run("INSERT (Stored(sprocket,bin1) & !Stored(sprocket,bin3)) | (Stored(sprocket,bin3) & !Stored(sprocket,bin1)) WHERE T");
    assert_eq!(s.worlds(), 2);
    s.run("INSERT Counted(widget,40) | Counted(widget,38) WHERE T");
    assert_eq!(s.worlds(), 6); // {40},{38},{40,38} × 2 bins
    s.run("INSERT Ordered(widget,100) WHERE Counted(widget,38)");

    // Phase 3: conditional maintenance referencing other tuples.
    s.run("INSERT Counted(sprocket,7) WHERE Stored(sprocket,bin1)");
    s.run("INSERT Counted(sprocket,9) WHERE Stored(sprocket,bin3)");
    s.run("MODIFY Counted(gadget,12) TO BE Counted(gadget,13) WHERE Stored(gadget,bin2)");

    // Phase 4: resolution.
    s.run("ASSERT Stored(sprocket,bin3)");
    s.run("ASSERT Counted(widget,40) & !Counted(widget,38)");
    assert_eq!(s.worlds(), 1);

    // Phase 5: moves under the FD (atomic bin changes).
    s.run("INSERT Stored(widget,bin4) & !Stored(widget,bin1) WHERE T");
    s.run("DELETE Stored(gadget,bin2) WHERE T");
    s.run("INSERT Stored(gadget,bin5) WHERE T");
    assert_eq!(s.worlds(), 1);

    // Phase 6: churn — forget and re-learn repeatedly.
    for i in 0..8 {
        s.run("INSERT Counted(widget,40) | Counted(widget,41) WHERE T");
        if i % 2 == 0 {
            s.run("ASSERT Counted(widget,40) & !Counted(widget,41)");
        } else {
            s.run("ASSERT Counted(widget,41) & !Counted(widget,40)");
        }
    }
    assert_eq!(s.worlds(), 1);

    // The engine's theory stayed compact through ~30 updates.
    let stats = s.engine.theory.stats();
    assert!(stats.store_nodes < 400, "store grew too large: {}", stats);

    // Final sanity: the certain facts are what the story says.
    assert!(s.engine.theory.is_consistent());
    let mut final_db = winslett::db::LogicalDatabase::from_theory(
        s.engine.theory.clone(),
        winslett::db::DbOptions::default(),
    );
    assert!(final_db.is_certain("Stored(widget,bin4)").unwrap());
    assert!(final_db.is_certain("Stored(gadget,bin5)").unwrap());
    assert!(final_db.is_certain("Stored(sprocket,bin3)").unwrap());
    assert!(final_db.is_certain("Counted(sprocket,9)").unwrap());
    assert!(final_db.is_certain("Counted(gadget,13)").unwrap());
    assert!(final_db.is_certain("Counted(widget,41)").unwrap());
}

#[test]
fn warehouse_lifecycle_full_simplify_matches_none() {
    // The same script at SimplifyLevel::Full and ::None must agree with
    // each other world-for-world at the end.
    let script = [
        "INSERT Stored(widget,bin1) WHERE T",
        "INSERT Counted(widget,40) | Counted(widget,38) WHERE T",
        "INSERT Ordered(widget,100) WHERE Counted(widget,38)",
        "MODIFY Stored(widget,bin1) TO BE Stored(widget,bin2) WHERE T",
        "ASSERT Counted(widget,38) & !Counted(widget,40)",
        "DELETE Ordered(widget,100) WHERE T",
    ];
    let run = |level: SimplifyLevel| {
        let mut engine = GuaEngine::new(warehouse(), GuaOptions::simplify_always(level));
        for src in script {
            engine.execute(src).unwrap();
        }
        canonicalize(
            engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap(),
        )
    };
    let full = run(SimplifyLevel::Full);
    let none = run(SimplifyLevel::None);
    assert_eq!(full, none);
    assert_eq!(full.len(), 1);
}

#[test]
fn interleaved_variable_and_ground_updates() {
    use winslett::db::LogicalDatabase;
    let mut db = LogicalDatabase::new();
    db.declare_relation("Stored", 2).unwrap();
    db.declare_relation("Counted", 2).unwrap();
    for (p, b) in [("w1", "bin1"), ("w2", "bin1"), ("w3", "bin2")] {
        db.load_fact("Stored", &[p, b]).unwrap();
    }
    // Zero-count every part in bin1 (variable), then move bin1 to bin9
    // (variable modify), then spot-fix one count (ground).
    let (n, _) = db
        .execute_variable("INSERT Counted(?p, 0) WHERE Stored(?p, bin1)")
        .unwrap();
    assert_eq!(n, 2); // only w1 and w2 sit in bin1
    let (n, _) = db
        .execute_variable("MODIFY Stored(?p, bin1) TO BE Stored(?p, bin9) WHERE T")
        .unwrap();
    assert_eq!(n, 2);
    db.execute("MODIFY Counted(w1,0) TO BE Counted(w1,5) WHERE T")
        .unwrap();

    assert!(db
        .is_certain("Stored(w1,bin9) & Stored(w2,bin9) & Stored(w3,bin2)")
        .unwrap());
    assert!(db
        .is_certain("!Stored(w1,bin1) & !Stored(w2,bin1)")
        .unwrap());
    assert!(db.is_certain("Counted(w1,5) & Counted(w2,0)").unwrap());
    assert!(db.is_certain("!Counted(w3,0)").unwrap()); // bin2 wasn't counted
    assert_eq!(db.world_names().unwrap().len(), 1);
}
