//! Wire-level multi-statement transactions, end to end.
//!
//! `Begin` / `Commit` / `Rollback` group Execute/Declare/Load requests on
//! one connection into an atomic, isolated unit: effects are invisible to
//! every other connection until the commit marker lands, and a rollback
//! (or any abort path) leaves no trace. Transactions with disjoint
//! §2 update footprints (Theorem 4: commutative) run concurrently;
//! conflicting ones block on the lock table and give up with a typed
//! `TxnTimeout` at the deadlock-avoidance deadline. Every scenario runs
//! against both I/O cores — the epoll reactor and the classic blocking
//! thread-per-connection loop — which route transactions through
//! different concurrency machinery (parked writer retries vs blocking
//! condvar waits).

use std::time::Duration;
use winslett_core::{DbOptions, DurableDatabase, MemStorage, SyncPolicy, WalOptions};
use winslett_serve::{Client, ClientError, ErrorKindWire, Server, ServerHandle, ServerOptions};

fn boot(
    threaded: bool,
    lock_timeout: Duration,
) -> (
    std::thread::JoinHandle<Result<MemStorage, winslett_core::DbError>>,
    ServerHandle,
    std::net::SocketAddr,
) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(4),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 16,
            idle_timeout: Duration::from_secs(10),
            compaction: None,
            threaded,
            lock_timeout,
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    (std::thread::spawn(move || server.run()), handle, addr)
}

fn kind_of(err: ClientError) -> ErrorKindWire {
    match err {
        ClientError::Server(e) => e.kind,
        other => panic!("expected a typed server error, got {other:?}"),
    }
}

/// A probe for "this fact never escaped": either the fact is not even
/// possible, or its constants never entered the vocabulary at all (a
/// strict-parse refusal — the strongest form of invisibility).
fn assert_never_seen(client: &mut Client, wff: &str) {
    match client.check(wff) {
        Ok(t) => assert!(!t.possible, "{wff} leaked: {t:?}"),
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKindWire::Parse, "{wff}: {e}"),
        Err(e) => panic!("check {wff}: {e}"),
    }
}

// ----- atomicity and isolation ----------------------------------------------

fn atomic_commit_and_rollback(threaded: bool) {
    let (running, _handle, addr) = boot(threaded, Duration::from_secs(2));
    let mut txn_conn = Client::connect(addr).expect("connect");
    let mut observer = Client::connect(addr).expect("connect observer");
    txn_conn.declare_relation("R", 1).expect("declare R");
    txn_conn.declare_relation("S", 1).expect("declare S");

    // Committed transaction: two statements, the second reading the
    // first's workspace effects (read-your-writes at statement level),
    // invisible to the observer until the commit, then visible atomically.
    let begun = txn_conn.begin().expect("begin");
    assert!(begun.txn > 0, "txn id is the begin record's LSN");
    txn_conn.execute("INSERT R(1) WHERE T").expect("txn insert");
    txn_conn
        .execute("INSERT S(1) WHERE R(1)")
        .expect("txn insert over own effects");
    assert_never_seen(&mut observer, "R(1)");
    assert_never_seen(&mut observer, "S(1)");
    let committed = txn_conn.commit().expect("commit");
    assert_eq!(committed.txn, begun.txn);
    assert_eq!(committed.statements, 2);
    assert!(committed.lsn > begun.txn, "commit marker lands past begin");
    for wff in ["R(1)", "S(1)"] {
        let t = observer.check(wff).expect("post-commit check");
        assert!(t.certain, "{wff} must be certain after the commit");
    }

    // Rolled-back transaction: nothing escapes, ever.
    let begun = txn_conn.begin().expect("begin 2");
    txn_conn.execute("INSERT R(2) WHERE T").expect("txn insert");
    let rolled = txn_conn.rollback().expect("rollback");
    assert_eq!(rolled.txn, begun.txn);
    assert_never_seen(&mut observer, "R(2)");
    assert_never_seen(&mut txn_conn, "R(2)");

    // Transaction-state protocol errors are typed, not hangs.
    assert_eq!(
        kind_of(txn_conn.commit().unwrap_err()),
        ErrorKindWire::BadRequest
    );
    assert_eq!(
        kind_of(txn_conn.rollback().unwrap_err()),
        ErrorKindWire::BadRequest
    );
    txn_conn.begin().expect("begin 3");
    assert_eq!(
        kind_of(txn_conn.begin().unwrap_err()),
        ErrorKindWire::BadRequest
    );
    txn_conn.rollback().expect("rollback 3");

    let stats = observer.stats().expect("stats");
    assert_eq!(stats.txn_begun, 3);
    assert_eq!(stats.txn_committed, 1);
    assert_eq!(stats.txn_aborted, 2);
    assert_eq!(stats.txn_active, 0);

    // Durability: the committed transaction survives a restart; the
    // rolled-back one left no trace in the recovered state.
    observer.shutdown().expect("shutdown");
    drop(txn_conn);
    let storage = running.join().expect("server thread").expect("run");
    let (mut db, report) =
        DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
            .expect("reopen");
    assert_eq!(report.rolled_back, 0, "no unfinished txns at shutdown");
    assert!(db.db_mut().is_certain("R(1)").expect("recovered R(1)"));
    assert!(db.db_mut().is_certain("S(1)").expect("recovered S(1)"));
    // An Err means its constant never entered the vocabulary: even better.
    if let Ok(p) = db.db_mut().is_possible("R(2)") {
        assert!(!p, "rolled-back R(2) resurfaced after recovery");
    }
}

#[test]
fn txn_atomic_commit_and_rollback_reactor() {
    atomic_commit_and_rollback(false);
}

#[test]
fn txn_atomic_commit_and_rollback_threaded() {
    atomic_commit_and_rollback(true);
}

// ----- concurrency control ---------------------------------------------------

fn conflicting_txns_time_out(threaded: bool) {
    let (running, _handle, addr) = boot(threaded, Duration::from_millis(150));
    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    let mut plain = Client::connect(addr).expect("connect plain");
    a.declare_relation("R", 1).expect("declare R");
    a.declare_relation("S", 1).expect("declare S");

    a.begin().expect("a begin");
    a.execute("INSERT R(1) WHERE T").expect("a insert");

    // A plain (non-transactional) write on the locked atom is refused
    // immediately with the typed conflict — it never queues behind the
    // open transaction.
    assert_eq!(
        kind_of(plain.execute("INSERT R(1) WHERE T").unwrap_err()),
        ErrorKindWire::TxnConflict
    );
    // A disjoint-footprint plain write proceeds concurrently.
    plain
        .execute("INSERT S(3) WHERE T")
        .expect("disjoint plain");

    // A second transaction on the same footprint waits, then gives up at
    // the deadlock-avoidance deadline — and the timeout rolled it back.
    b.begin().expect("b begin");
    assert_eq!(
        kind_of(b.execute("INSERT R(1) WHERE T").unwrap_err()),
        ErrorKindWire::TxnTimeout
    );
    assert_eq!(kind_of(b.commit().unwrap_err()), ErrorKindWire::BadRequest);

    // The holder is unaffected and commits.
    let committed = a.commit().expect("a commit");
    assert_eq!(committed.statements, 1);
    assert!(a.check("R(1)").expect("check").certain);

    // Once the lock is gone, the same statements sail through.
    b.begin().expect("b begin again");
    b.execute("INSERT R(1) WHERE T").expect("now unlocked");
    b.commit().expect("b commit");

    let stats = plain.stats().expect("stats");
    assert!(stats.lock_timeouts >= 1, "timeout counted: {stats:?}");
    assert!(
        stats.txn_conflicts >= 1,
        "plain conflict counted: {stats:?}"
    );
    assert_eq!(stats.txn_active, 0);

    plain.shutdown().expect("shutdown");
    drop(a);
    drop(b);
    running.join().expect("server thread").expect("run");
}

#[test]
fn conflicting_txns_time_out_reactor() {
    conflicting_txns_time_out(false);
}

#[test]
fn conflicting_txns_time_out_threaded() {
    conflicting_txns_time_out(true);
}

fn disjoint_txns_run_concurrently(threaded: bool) {
    let (running, _handle, addr) = boot(threaded, Duration::from_secs(2));
    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");
    setup.declare_relation("S", 1).expect("declare S");

    // Two open transactions with disjoint footprints (Theorem 4:
    // commutative updates) hold locks simultaneously; neither waits.
    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    a.begin().expect("a begin");
    b.begin().expect("b begin");
    a.execute("INSERT R(1) WHERE T").expect("a insert");
    b.execute("INSERT S(2) WHERE T").expect("b insert");
    let stats = setup.stats().expect("stats");
    assert_eq!(stats.txn_active, 2, "both transactions hold locks at once");
    assert_eq!(stats.lock_waits, 0, "disjoint footprints never wait");
    b.commit().expect("b commit");
    a.commit().expect("a commit");
    assert!(setup.check("R(1)").expect("check R").certain);
    assert!(setup.check("S(2)").expect("check S").certain);

    setup.shutdown().expect("shutdown");
    drop(a);
    drop(b);
    running.join().expect("server thread").expect("run");
}

#[test]
fn disjoint_txns_run_concurrently_reactor() {
    disjoint_txns_run_concurrently(false);
}

#[test]
fn disjoint_txns_run_concurrently_threaded() {
    disjoint_txns_run_concurrently(true);
}

// ----- abort paths -----------------------------------------------------------

/// A connection that disappears mid-transaction (client crash) must not
/// leave its locks behind: the teardown rolls the transaction back and a
/// new transaction on the same footprint proceeds immediately.
fn dropped_connection_releases_locks(threaded: bool) {
    let (running, _handle, addr) = boot(threaded, Duration::from_secs(5));
    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");

    let mut doomed = Client::connect(addr).expect("connect doomed");
    doomed.begin().expect("begin");
    doomed.execute("INSERT R(1) WHERE T").expect("insert");
    drop(doomed); // vanish without commit or rollback

    // The replacement would deadlock for the full 5s lock timeout if the
    // teardown leaked the lock; give the server a moment to notice the
    // hangup, then demand the statement completes promptly.
    let mut fresh = Client::connect(addr).expect("connect fresh");
    let start = std::time::Instant::now();
    let acquired = loop {
        fresh.begin().expect("begin fresh");
        match fresh.execute("INSERT R(1) WHERE T") {
            Ok(_) => break true,
            Err(ClientError::Server(e))
                if matches!(
                    e.kind,
                    ErrorKindWire::TxnTimeout | ErrorKindWire::TxnConflict
                ) =>
            {
                // Teardown raced us; the rolled-back txn must be re-begun.
                if fresh.rollback().is_err() {
                    // TxnTimeout already rolled it back server-side.
                }
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "lock never released after the owner vanished"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("fresh insert: {e}"),
        }
    };
    assert!(acquired);
    fresh.commit().expect("commit fresh");
    assert_never_seen(&mut setup, "R(2)");
    assert!(setup.check("R(1)").expect("check").certain);
    let stats = setup.stats().expect("stats");
    assert_eq!(stats.txn_active, 0, "no orphaned transaction survives");

    setup.shutdown().expect("shutdown");
    drop(fresh);
    running.join().expect("server thread").expect("run");
}

#[test]
fn dropped_connection_releases_locks_reactor() {
    dropped_connection_releases_locks(false);
}

#[test]
fn dropped_connection_releases_locks_threaded() {
    dropped_connection_releases_locks(true);
}

/// Satellite regression: the drain (protocol `Shutdown` or SIGTERM →
/// `request_shutdown`) aborts in-flight transactions with a typed
/// refusal, releases their locks, and the WAL the server leaves behind
/// carries the compensating abort — recovery resurrects nothing.
fn drain_aborts_open_transactions(threaded: bool) {
    let (running, handle, addr) = boot(threaded, Duration::from_secs(2));
    let mut txn_conn = Client::connect(addr).expect("connect");
    txn_conn.declare_relation("R", 1).expect("declare R");
    txn_conn.execute("INSERT R(7) WHERE T").expect("seed");

    txn_conn.begin().expect("begin");
    txn_conn.execute("INSERT R(1) WHERE T").expect("txn insert");

    handle.request_shutdown();
    // The next transactional request is answered with the typed drain
    // refusal — the transaction is already rolled back server-side.
    let err = loop {
        match txn_conn.execute("INSERT R(2) WHERE T") {
            Err(e) => break e,
            // The drain flag may not be visible to this connection yet;
            // statements that slip in before it are part of the txn that
            // is about to be aborted anyway.
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.kind, ErrorKindWire::ShuttingDown, "typed refusal: {e}");
            assert!(
                e.message.contains("transaction aborted"),
                "refusal names the aborted transaction: {}",
                e.message
            );
        }
        // The drain may also close the socket under the request once the
        // refusal has been flushed.
        ClientError::Frame(_) => {}
        other => panic!("unexpected drain outcome: {other:?}"),
    }
    drop(txn_conn);
    let storage = running.join().expect("server thread").expect("run");

    // Recovery: the seed survives, nothing transactional does, and the
    // log is balanced (the abort was journaled before exit, so recovery
    // itself had nothing left to roll back).
    let (mut db, report) =
        DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
            .expect("reopen");
    assert_eq!(report.rolled_back, 0, "drain journaled the abort itself");
    assert!(db.db_mut().is_certain("R(7)").expect("seed survives"));
    if let Ok(p) = db.db_mut().is_possible("R(1)") {
        assert!(!p, "aborted txn effects resurfaced after the drain");
    }
}

#[test]
fn drain_aborts_open_transactions_reactor() {
    drain_aborts_open_transactions(false);
}

#[test]
fn drain_aborts_open_transactions_threaded() {
    drain_aborts_open_transactions(true);
}
