//! Experiment E1 as a property: Theorems 1 and 5, proptest edition.
//!
//! For arbitrary small extended relational theories and arbitrary LDML
//! update sequences, the theory produced by GUA must represent exactly the
//! alternative worlds obtained by updating every world individually
//! (the §3.2 commutative diagram), at every simplification level.

use proptest::prelude::*;
use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::Update;
use winslett::logic::{AtomId, Formula, ModelLimit, Wff};
use winslett::theory::Theory;
use winslett::worlds::{check_commutes, WorldsEngine};

const NUM_ATOMS: usize = 5;

/// A strategy producing wffs over atoms `0..NUM_ATOMS`.
fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i))),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i)).not()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Wff::implies(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::iff(a, b)),
        ]
    })
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (wff_strategy(), wff_strategy()).prop_map(|(o, p)| Update::insert(o, p)),
        (0..NUM_ATOMS as u32, wff_strategy()).prop_map(|(t, p)| Update::delete(AtomId(t), p)),
        (0..NUM_ATOMS as u32, wff_strategy(), wff_strategy()).prop_map(|(t, o, p)| Update::modify(
            AtomId(t),
            o,
            p
        )),
        wff_strategy().prop_map(Update::assert),
    ]
}

fn build_theory(wffs: &[Wff]) -> Theory {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    for i in 0..NUM_ATOMS {
        let c = t.constant(&format!("c{i}"));
        let id = t.atom(r, &[c]);
        assert_eq!(id, AtomId(i as u32));
    }
    for w in wffs {
        t.assert_wff(w);
    }
    // Register every atom so updates on unconstrained atoms are exercised
    // too (a registered atom with no occurrences is free).
    for i in 0..NUM_ATOMS {
        t.register_atom(AtomId(i as u32));
    }
    t
}

fn check(level: SimplifyLevel, wffs: Vec<Wff>, updates: Vec<Update>) {
    let theory = build_theory(&wffs);
    if !theory.is_consistent() {
        return;
    }
    let before = theory.clone();
    let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(level));
    for u in &updates {
        engine.apply(u).expect("update applies");
    }
    let report = check_commutes(&before, &updates, &engine.theory, ModelLimit::default())
        .expect("diagram runs");
    assert!(
        report.commutes,
        "{}\nupdates: {updates:?}\nsection: {wffs:?}",
        report.describe(&engine.theory)
    );
}

fn check_result(
    level: SimplifyLevel,
    wffs: Vec<Wff>,
    updates: Vec<Update>,
) -> Result<(), TestCaseError> {
    let theory = build_theory(&wffs);
    if !theory.is_consistent() {
        return Ok(());
    }
    let before = theory.clone();
    let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(level));
    for u in &updates {
        engine.apply(u).expect("update applies");
    }
    let report = check_commutes(&before, &updates, &engine.theory, ModelLimit::default())
        .expect("diagram runs");
    prop_assert!(
        report.commutes,
        "{}\nupdates: {updates:?}\nsection: {wffs:?}",
        report.describe(&engine.theory)
    );
    Ok(())
}

/// Parallelization must not change semantics: `with_threads(1)` and
/// `with_threads(4)` runs of the same update script yield byte-identical
/// canonical world vectors and identical `entails` answers for every ω in
/// the script. This is what keeps the §3.2 commutative diagram valid after
/// the engine's thread fan-out.
fn check_thread_independence(wffs: Vec<Wff>, updates: Vec<Update>) -> Result<(), TestCaseError> {
    let theory = build_theory(&wffs);
    if !theory.is_consistent() {
        return Ok(());
    }
    let base = WorldsEngine::from_theory(&theory, ModelLimit::default()).expect("materializes");
    let mut seq = base.clone().with_threads(1);
    let mut par = base.with_threads(4);
    seq.apply_all(&updates, &theory)
        .expect("sequential applies");
    par.apply_all(&updates, &theory).expect("parallel applies");
    prop_assert_eq!(
        seq.worlds(),
        par.worlds(),
        "thread counts 1 and 4 disagree on the world set\nupdates: {:?}\nsection: {:?}",
        updates,
        wffs
    );
    for u in &updates {
        let omega = u.to_insert().omega;
        prop_assert_eq!(seq.entails(&omega), par.entails(&omega));
        prop_assert_eq!(seq.consistent_with(&omega), par.consistent_with(&omega));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn diagram_commutes_no_simplify(
        wffs in prop::collection::vec(wff_strategy(), 1..4),
        updates in prop::collection::vec(update_strategy(), 1..4),
    ) {
        check_result(SimplifyLevel::None, wffs, updates)?;
    }

    #[test]
    fn diagram_commutes_fast_simplify(
        wffs in prop::collection::vec(wff_strategy(), 1..4),
        updates in prop::collection::vec(update_strategy(), 1..4),
    ) {
        check_result(SimplifyLevel::Fast, wffs, updates)?;
    }

    #[test]
    fn diagram_commutes_full_simplify(
        wffs in prop::collection::vec(wff_strategy(), 1..3),
        updates in prop::collection::vec(update_strategy(), 1..3),
    ) {
        check_result(SimplifyLevel::Full, wffs, updates)?;
    }

    #[test]
    fn parallel_engine_is_thread_count_independent(
        wffs in prop::collection::vec(wff_strategy(), 1..4),
        updates in prop::collection::vec(update_strategy(), 1..5),
    ) {
        check_thread_independence(wffs, updates)?;
    }
}

#[test]
fn long_update_sequence_still_commutes() {
    // A directed, longer sequence mixing all four operators.
    let wffs = vec![
        Wff::Atom(AtomId(0)),
        Formula::Or(vec![Wff::Atom(AtomId(1)), Wff::Atom(AtomId(2))]),
        Wff::Atom(AtomId(3)).not(),
    ];
    let updates = vec![
        Update::insert(
            Formula::Or(vec![Wff::Atom(AtomId(3)), Wff::Atom(AtomId(4))]),
            Wff::Atom(AtomId(0)),
        ),
        Update::delete(AtomId(0), Wff::t()),
        Update::modify(
            AtomId(1),
            Formula::Or(vec![Wff::Atom(AtomId(2)), Wff::Atom(AtomId(1))]),
            Wff::t(),
        ),
        Update::assert(Formula::Or(vec![
            Wff::Atom(AtomId(2)),
            Wff::Atom(AtomId(4)),
        ])),
        Update::insert(Wff::Atom(AtomId(0)), Wff::Atom(AtomId(2))),
        Update::assert(Wff::Atom(AtomId(4)).not()),
    ];
    check(SimplifyLevel::Fast, wffs, updates);
}
