//! Protocol robustness: a hostile or half-dead peer must produce typed
//! errors or clean connection closes — never a panic, never a wedged
//! accept loop.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;
use winslett::db::{DbError, DbOptions, MemStorage, WalOptions};
use winslett_core::wal::crc32;
use winslett_serve::protocol::{recv, write_frame};
use winslett_serve::{Client, ClientError, ErrorKindWire, Response, Server, ServerOptions};

struct Running {
    handle: JoinHandle<Result<MemStorage, DbError>>,
    addr: SocketAddr,
}

fn boot(options: ServerOptions) -> Running {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions::default(),
        options,
    )
    .expect("bind");
    let addr = server.local_addr();
    Running {
        handle: std::thread::spawn(move || server.run()),
        addr,
    }
}

fn default_options() -> ServerOptions {
    ServerOptions {
        max_connections: 8,
        idle_timeout: Duration::from_secs(2),
        ..ServerOptions::default()
    }
}

/// The accept loop is alive iff a fresh client gets a Pong.
fn assert_serving(addr: SocketAddr) {
    let mut probe = Client::connect(addr).expect("probe connect");
    probe.ping().expect("probe ping");
}

fn shut_down(running: Running) {
    let mut c = Client::connect(running.addr).expect("shutdown connect");
    c.shutdown().expect("shutdown");
    running.handle.join().expect("join").expect("run");
}

#[test]
fn torn_header_closes_cleanly() {
    let running = boot(default_options());
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    raw.write_all(&[0x13, 0x37, 0x00]).expect("partial header");
    drop(raw); // disconnect mid-header
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn torn_payload_closes_cleanly() {
    let running = boot(default_options());
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    let payload = br#""Ping""#;
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(&payload[..4]); // cut inside the payload
    raw.write_all(&frame).expect("torn frame");
    drop(raw);
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn oversized_frame_gets_typed_error_then_close() {
    let running = boot(default_options());
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    raw.write_all(&u32::MAX.to_le_bytes()).expect("len");
    raw.write_all(&0u32.to_le_bytes()).expect("crc");
    let resp: Response = recv(&mut raw).expect("typed error expected");
    match resp {
        Response::Error(e) => assert_eq!(e.kind, ErrorKindWire::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }
    // The server closed the unsynchronizable stream.
    assert!(recv::<Response>(&mut raw).is_err());
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn bad_crc_gets_typed_error_then_close() {
    let running = boot(default_options());
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    let payload = br#""Ping""#;
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&(crc32(payload) ^ 0xDEAD_BEEF).to_le_bytes());
    frame.extend_from_slice(payload);
    raw.write_all(&frame).expect("bad-crc frame");
    let resp: Response = recv(&mut raw).expect("typed error expected");
    match resp {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKindWire::BadRequest);
            assert!(e.message.contains("checksum"), "message: {}", e.message);
        }
        other => panic!("expected error, got {other:?}"),
    }
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn unknown_request_kind_keeps_connection_usable() {
    let running = boot(default_options());
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    // A perfectly framed request the server has never heard of.
    write_frame(&mut raw, br#"{"FlushAllCaches":["now"]}"#).expect("send");
    let resp: Response = recv(&mut raw).expect("typed error expected");
    match resp {
        Response::Error(e) => assert_eq!(e.kind, ErrorKindWire::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }
    // The frame layer stayed synchronized: the same connection still works.
    write_frame(&mut raw, br#""Ping""#).expect("send ping");
    let resp: Response = recv(&mut raw).expect("pong");
    assert_eq!(resp, Response::Pong);
    shut_down(running);
}

#[test]
fn garbage_json_keeps_connection_usable() {
    let running = boot(default_options());
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    write_frame(&mut raw, b"}}}not json at all{{{").expect("send");
    let resp: Response = recv(&mut raw).expect("typed error expected");
    assert!(matches!(resp, Response::Error(ref e) if e.kind == ErrorKindWire::BadRequest));
    write_frame(&mut raw, br#""Ping""#).expect("send ping");
    assert_eq!(recv::<Response>(&mut raw).expect("pong"), Response::Pong);
    shut_down(running);
}

#[test]
fn admission_cap_rejects_with_typed_busy() {
    let running = boot(ServerOptions {
        max_connections: 1,
        idle_timeout: Duration::from_secs(2),
        ..ServerOptions::default()
    });
    let mut first = Client::connect(running.addr).expect("first");
    first.ping().expect("first ping");
    // The second connection is over the cap: typed Busy, then close.
    let mut second = Client::connect(running.addr).expect("second connect");
    match second.ping() {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKindWire::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }
    drop(second);
    // Shutdown through the admitted connection.
    first.shutdown().expect("shutdown");
    running.handle.join().expect("join").expect("run");
}

#[test]
fn idle_connections_are_reaped() {
    let running = boot(ServerOptions {
        max_connections: 8,
        idle_timeout: Duration::from_millis(150),
        ..ServerOptions::default()
    });
    let mut lazy = Client::connect(running.addr).expect("connect");
    lazy.ping().expect("ping");
    std::thread::sleep(Duration::from_millis(500));
    // The server hung up on us while we slept.
    assert!(lazy.ping().is_err(), "idle connection should be closed");
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn slow_loris_dribbler_is_reaped_and_frees_its_slot() {
    // max_connections: 1 makes the follow-up probe a proof that the
    // reaped connection's admission slot was released, not leaked.
    let running = boot(ServerOptions {
        max_connections: 1,
        idle_timeout: Duration::from_millis(150),
        ..ServerOptions::default()
    });
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    // A perfectly valid Ping frame — dribbled one byte per write, too
    // slowly to ever complete before the idle deadline.
    let payload = br#""Ping""#;
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    for b in frame {
        if raw.write_all(&[b]).is_err() {
            break; // the server already hung up on us
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    // The reaper killed the stalled connection without an answer.
    assert!(recv::<Response>(&mut raw).is_err(), "dribbler must be cut");
    drop(raw);
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn mid_length_prefix_stall_is_reaped_and_frees_its_slot() {
    let running = boot(ServerOptions {
        max_connections: 1,
        idle_timeout: Duration::from_millis(150),
        ..ServerOptions::default()
    });
    let mut raw = TcpStream::connect(running.addr).expect("connect");
    // Two bytes of the length prefix, then silence.
    raw.write_all(&[0x06, 0x00]).expect("partial length");
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        recv::<Response>(&mut raw).is_err(),
        "stalled peer must be cut"
    );
    drop(raw);
    // The slot is free again (cap is 1) and the loop is not wedged.
    assert_serving(running.addr);
    shut_down(running);
}

#[test]
fn writes_during_drain_are_refused_typed() {
    let running = boot(default_options());
    let mut setup = Client::connect(running.addr).expect("connect");
    setup.declare_relation("R", 1).expect("declare");
    let mut bystander = Client::connect(running.addr).expect("bystander");
    bystander.ping().expect("ping");
    setup.shutdown().expect("shutdown");
    // The drain waits for the bystander; its write must be refused, not
    // hung and not silently dropped.
    match bystander.execute("INSERT R(1) WHERE T") {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKindWire::ShuttingDown),
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    drop(bystander);
    running.handle.join().expect("join").expect("run");
}
