//! Integration tests for the `winslett-analyze` static analyzer: every
//! diagnostic code fires on a minimal reproduction, and the paper
//! walkthrough script is completely clean.

use winslett::analyze::{
    analyze_batch, analyze_script, analyze_script_with, Code, ConflictOptions, ScriptOptions,
    Severity,
};
use winslett::ldml::Update;
use winslett::logic::Wff;
use winslett::theory::{Dependency, Theory};

/// Minimal reproductions, one per code, via the library API.
#[test]
fn every_program_code_fires_on_a_minimal_repro() {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    let ca = t.constant("a");
    let cb = t.constant("b");
    let a = t.atom(r, &[ca]);
    let b = t.atom(r, &[cb]);
    t.assert_atom(a);
    t.assert_not_atom(b);

    let cases: Vec<(Code, Update)> = vec![
        (
            Code::W001,
            Update::insert(Wff::Atom(b), Wff::and2(Wff::Atom(a), Wff::Atom(a).not())),
        ),
        (Code::W002, Update::delete(a, Wff::t())),
        (Code::W003, Update::insert(Wff::Atom(a), Wff::Atom(a))),
        (Code::W006, Update::delete(b, Wff::Atom(a))),
        (
            Code::E002,
            Update::insert(Wff::and2(Wff::Atom(b), Wff::Atom(b).not()), Wff::Atom(a)),
        ),
    ];
    for (code, u) in cases {
        let batch = analyze_batch(&t, std::slice::from_ref(&u));
        assert!(
            batch.diagnostics.iter().any(|d| d.code == code),
            "{code} did not fire: {:?}",
            batch.diagnostics
        );
        for d in &batch.diagnostics {
            assert_eq!(d.severity, d.code.severity());
            assert_eq!(d.statement, 0);
        }
    }

    // W004 needs two statements.
    let u = Update::insert(Wff::Atom(b), Wff::t());
    let batch = analyze_batch(&t, &[u.clone(), u]);
    assert_eq!(batch.diagnostics.len(), 1);
    assert_eq!(batch.diagnostics[0].code, Code::W004);
    assert_eq!(batch.diagnostics[0].statement, 1);
}

#[test]
fn schema_and_dependency_errors_fire() {
    // E003: typed relation whose attribute atom is certainly false.
    let mut t = Theory::new();
    let part = t.declare_attribute("PartNo").unwrap();
    let stock = t.declare_typed_relation("Stock", &[part]).unwrap();
    let c32 = t.constant("32");
    let atom = t.atom(stock, &[c32]);
    let pa = t.atom(part, &[c32]);
    t.assert_not_atom(atom);
    t.assert_not_atom(pa);
    let batch = analyze_batch(&t, &[Update::insert(Wff::Atom(atom), Wff::t())]);
    assert!(batch.diagnostics.iter().any(|d| d.code == Code::E003));
    assert_eq!(batch.errors(), 1);

    // E004: FD conflict with a certain tuple.
    let mut t = Theory::new();
    let p = t.declare_relation("P", 2).unwrap();
    t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
    let (ca, cb, cc) = (t.constant("a"), t.constant("b"), t.constant("c"));
    let ab = t.atom(p, &[ca, cb]);
    let ac = t.atom(p, &[ca, cc]);
    t.assert_atom(ab);
    t.assert_not_atom(ac);
    let batch = analyze_batch(&t, &[Update::insert(Wff::Atom(ac), Wff::t())]);
    assert!(batch.diagnostics.iter().any(|d| d.code == Code::E004));

    // The paper's §1 remedy — swap the tuples in one statement — is clean.
    let swap = Update::insert(Wff::and2(Wff::Atom(ac), Wff::Atom(ab).not()), Wff::t());
    assert!(analyze_batch(&t, &[swap]).is_clean());
}

#[test]
fn cost_hazard_fires_on_a_hot_atom() {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    let ch = t.constant("hot");
    let hot = t.atom(r, &[ch]);
    for i in 0..10 {
        let c = t.constant(&format!("x{i}"));
        let other = t.atom(r, &[c]);
        t.assert_wff(&Wff::or2(Wff::Atom(hot), Wff::Atom(other)));
    }
    let cf = t.constant("fresh");
    let fresh = t.atom(r, &[cf]);
    let batch = analyze_batch(&t, &[Update::insert(Wff::Atom(fresh), Wff::Atom(hot))]);
    assert!(batch.diagnostics.iter().any(|d| d.code == Code::W005));
}

#[test]
fn script_front_end_reports_parse_errors_with_spans() {
    let src = ".relation R/1\nINSERT R(a) WHERE (R(a)\n";
    let report = analyze_script(src);
    assert_eq!(report.emitted_codes(), vec![Code::E001]);
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    let span = d.span.expect("script diagnostics carry spans");
    assert!(span.start >= src.find("INSERT").unwrap());
}

#[test]
fn paper_walkthrough_script_is_clean() {
    let src = include_str!("../examples/paper_walkthrough.ldml");
    let report = analyze_script(src);
    assert!(
        report.diagnostics.is_empty(),
        "expected a clean walkthrough, got {:?}",
        report.diagnostics
    );
    assert!(report.expected.is_empty());
    assert!(report.matches_expectations());
    assert_eq!(report.program.len(), 3);
}

#[test]
fn lint_showcase_script_matches_its_annotations() {
    let src = include_str!("../examples/lint_showcase.ldml");
    let report = analyze_script(src);
    assert!(
        report.matches_expectations(),
        "expected {:?}, emitted {:?}",
        report.expected,
        report.emitted_codes()
    );
    // Every base-pass code appears exactly once; W007–W010 belong to the
    // conflict pass and are covered below.
    let mut want: Vec<Code> = Code::ALL
        .into_iter()
        .filter(|c| !matches!(c, Code::W007 | Code::W008 | Code::W009 | Code::W010))
        .collect();
    want.sort();
    assert_eq!(report.emitted_codes(), want);
    // All spans are file-absolute and in range.
    for d in &report.diagnostics {
        let span = d.span.expect("span");
        assert!(span.end <= src.len() && span.start < span.end, "{d:?}");
    }

    // Under the conflict pass the `expect-conflicts:` annotations join the
    // contract, and together the two modes cover the whole catalogue.
    let with_conflicts = analyze_script_with(
        src,
        &ScriptOptions {
            conflicts: Some(ConflictOptions::default()),
        },
    );
    assert!(
        with_conflicts.matches_expectations(),
        "expected {:?}, emitted {:?}",
        with_conflicts.expected_codes(),
        with_conflicts.emitted_codes()
    );
    for code in [Code::W007, Code::W008, Code::W009, Code::W010] {
        assert!(
            with_conflicts.emitted_codes().contains(&code),
            "showcase never triggers {code:?} under --conflicts"
        );
    }
}
