//! The background compactor end to end over TCP: the server must bound
//! theory growth under a sustained client update stream without changing
//! one answer, and a client that pins a snapshot and goes silent must not
//! keep its generation alive past the idle-timeout reap.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use winslett::db::{DbError, DbOptions, MemStorage, SyncPolicy, WalOptions};
use winslett_gua::SimplifyLevel;
use winslett_serve::{Client, CompactionPolicy, Server, ServerOptions};

struct Running {
    handle: JoinHandle<Result<MemStorage, DbError>>,
    addr: SocketAddr,
}

fn boot(options: ServerOptions) -> Running {
    let wal = WalOptions {
        policy: SyncPolicy::Manual,
        compact_growth_factor: None,
        compact_min_nodes: 0,
    };
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        wal,
        options,
    )
    .expect("bind");
    let addr = server.local_addr();
    Running {
        handle: std::thread::spawn(move || server.run()),
        addr,
    }
}

fn shut_down(running: Running) {
    let mut c = Client::connect(running.addr).expect("shutdown connect");
    c.shutdown().expect("shutdown");
    running.handle.join().expect("join").expect("run");
}

/// An eager compactor: no size floor, tiny poll interval, so a test-sized
/// theory triggers rounds within milliseconds.
fn eager_compaction() -> CompactionPolicy {
    CompactionPolicy {
        growth_factor: 1.2,
        min_nodes: 8,
        max_lsn_lag: 64,
        poll_interval: Duration::from_millis(2),
        level: SimplifyLevel::Full,
        checkpoint: true,
    }
}

#[test]
fn compactor_bounds_growth_under_client_load_without_changing_answers() {
    let running = boot(ServerOptions {
        compaction: Some(eager_compaction()),
        ..ServerOptions::default()
    });
    let mut c = Client::connect(running.addr).expect("connect");
    c.declare_relation("Item", 2).expect("declare");
    c.declare_relation("Flag", 1).expect("declare");
    c.execute("INSERT Flag(0) | Flag(1) WHERE T").expect("seed");

    // The growth workload: conditional churn under persistent uncertainty,
    // with a known certain resolution at the end of each lap.
    for lap in 0..6 {
        for k in 0..4 {
            c.execute(&format!("INSERT Item({k},v0) WHERE Flag({})", k % 2))
                .expect("insert");
            c.execute(&format!(
                "MODIFY Item({k},v0) TO BE Item({k},v1) WHERE Flag({})",
                k % 2
            ))
            .expect("modify");
        }
        c.execute(&format!("ASSERT Flag({})", lap % 2))
            .expect("assert");
        c.execute(&format!(
            "INSERT Flag({}) | !Flag({}) WHERE T",
            lap % 2,
            (lap + 1) % 2
        ))
        .expect("reopen");
    }

    // ASSERT Flag(lap) resolved every conditional on that flag: the final
    // lap's items must have become certainly v1.
    let verdict = c.check("Item(0,v1)").expect("check");
    assert!(verdict.certain, "resolved MODIFY must be certain");
    let verdict = c.check("Item(0,v0)").expect("check");
    assert!(!verdict.possible, "overwritten value must be impossible");

    // The compactor runs on its own clock; give it a bounded window to
    // observe the growth and swap at least once.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = c.stats().expect("stats");
        if stats.compactions > 0 || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(stats.compactions > 0, "compactor never ran");
    assert!(stats.compaction_nodes_reclaimed > 0, "no nodes reclaimed");
    assert_eq!(stats.compaction_aborts, 0, "a swap aborted");

    // Same verdicts from the compacted theory.
    let verdict = c.check("Item(0,v1)").expect("check after compaction");
    assert!(verdict.certain);
    let verdict = c.check("Item(0,v0)").expect("check after compaction");
    assert!(!verdict.possible);
    drop(c);
    shut_down(running);
}

#[test]
fn silent_pinned_client_is_reaped_and_releases_its_generation() {
    let running = boot(ServerOptions {
        idle_timeout: Duration::from_millis(300),
        compaction: None,
        ..ServerOptions::default()
    });
    let mut watcher = Client::connect(running.addr).expect("watcher connect");
    watcher.declare_relation("R", 1).expect("declare");
    watcher
        .execute("INSERT R(a) | R(b) WHERE T")
        .expect("write");

    let mut pinner = Client::connect(running.addr).expect("pinner connect");
    let snap = pinner.pin().expect("pin");
    assert!(snap.generation > 0);
    let stats = watcher.stats().expect("stats");
    assert_eq!(stats.pinned_generations, 1, "pin must raise the gauge");

    // The pinner goes silent without Unpin. The idle reaper must close the
    // connection and its Drop must release the pinned generation.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = watcher.stats().expect("stats");
        if stats.pinned_generations == 0 || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(
        stats.pinned_generations, 0,
        "reaped connection left its snapshot pinned"
    );
    assert!(stats.idle_closes >= 1, "idle reaper never fired");
    drop(pinner);
    drop(watcher);
    shut_down(running);
}

#[test]
fn explicit_unpin_lowers_the_gauge_and_repin_does_not_double_count() {
    let running = boot(ServerOptions {
        compaction: None,
        ..ServerOptions::default()
    });
    let mut c = Client::connect(running.addr).expect("connect");
    c.declare_relation("R", 1).expect("declare");
    c.execute("INSERT R(a) WHERE T").expect("write");

    c.pin().expect("pin");
    c.pin().expect("re-pin replaces, not stacks");
    let stats = c.stats().expect("stats");
    assert_eq!(stats.pinned_generations, 1);

    c.unpin().expect("unpin");
    let stats = c.stats().expect("stats");
    assert_eq!(stats.pinned_generations, 0);

    // Unpin when nothing is pinned must not underflow the gauge.
    c.unpin().expect("idempotent unpin");
    let stats = c.stats().expect("stats");
    assert_eq!(stats.pinned_generations, 0);
    drop(c);
    shut_down(running);
}
