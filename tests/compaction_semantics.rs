//! Compaction must be semantically invisible: a database that runs the
//! three-phase swap (`begin_compaction` → off-line `Full` simplify →
//! `install_compacted`) mid-stream — with writes racing the capture
//! window — must be observationally indistinguishable from one that ran
//! the same statements with no compaction at all. Randomized over LDML
//! scripts, compaction points, and racing-write counts.
//!
//! "Indistinguishable" is checked three ways per case: identical
//! alternative-world sets (name-based), identical certain/possible
//! verdicts over a probe panel covering the whole vocabulary, and
//! statement-by-statement agreement on which updates were accepted.
//! The swap must also strictly advance the theory generation, so pinned
//! stale sessions can never alias a compacted snapshot.

use proptest::prelude::*;
use std::collections::BTreeSet;
use winslett::db::wal::{DurableDatabase, MemStorage, SyncPolicy, WalOptions};
use winslett::db::DbOptions;
use winslett::gua::{simplify, SimplifyLevel};

const ITEMS: usize = 4;
const FLAGS: usize = 2;

/// One statement of the random script, realized against the fixed
/// Item/Flag vocabulary.
#[derive(Clone, Debug)]
enum Op {
    InsertWhere(usize, usize),
    InsertEither(usize, usize),
    Delete(usize, usize),
    Modify(usize, usize, usize),
    Assert(usize),
    Reopen(usize, usize),
}

impl Op {
    fn render(&self) -> String {
        match *self {
            Op::InsertWhere(k, f) => format!("INSERT Item({k}) WHERE Flag({f})"),
            Op::InsertEither(k, k2) => format!("INSERT Item({k}) | Item({k2}) WHERE T"),
            Op::Delete(k, f) => format!("DELETE Item({k}) WHERE Flag({f})"),
            Op::Modify(k, k2, f) => format!("MODIFY Item({k}) TO BE Item({k2}) WHERE Flag({f})"),
            Op::Assert(f) => format!("ASSERT Flag({f})"),
            Op::Reopen(f, f2) => format!("INSERT Flag({f}) | !Flag({f2}) WHERE T"),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ITEMS, 0..FLAGS).prop_map(|(k, f)| Op::InsertWhere(k, f)),
        (0..ITEMS, 0..ITEMS).prop_map(|(k, k2)| Op::InsertEither(k, k2)),
        (0..ITEMS, 0..FLAGS).prop_map(|(k, f)| Op::Delete(k, f)),
        (0..ITEMS, 0..ITEMS, 0..FLAGS).prop_map(|(k, k2, f)| Op::Modify(k, k2, f)),
        (0..FLAGS).prop_map(Op::Assert),
        (0..FLAGS, 0..FLAGS).prop_map(|(f, f2)| Op::Reopen(f, f2)),
    ]
}

fn open_db() -> DurableDatabase<MemStorage> {
    let options = WalOptions {
        policy: SyncPolicy::Manual,
        compact_growth_factor: None,
        compact_min_nodes: 0,
    };
    let (mut ddb, _) =
        DurableDatabase::open(MemStorage::new(), DbOptions::default(), options).unwrap();
    ddb.declare_relation("Item", 1).unwrap();
    ddb.declare_relation("Flag", 1).unwrap();
    for k in 0..ITEMS {
        ddb.db_mut().theory_mut().constant(&k.to_string());
    }
    // Seed uncertainty so conditional updates have something to split on.
    ddb.execute("INSERT Flag(0) | Flag(1) WHERE T").unwrap();
    ddb
}

/// Certain/possible verdicts over every Item and Flag atom.
fn panel_verdicts(ddb: &mut DurableDatabase<MemStorage>) -> Vec<(bool, bool)> {
    let mut out = Vec::new();
    for src in (0..ITEMS)
        .map(|k| format!("Item({k})"))
        .chain((0..FLAGS).map(|f| format!("Flag({f})")))
    {
        out.push((
            ddb.db_mut().is_certain(&src).unwrap(),
            ddb.db_mut().is_possible(&src).unwrap(),
        ));
    }
    out
}

fn world_set(ddb: &DurableDatabase<MemStorage>) -> BTreeSet<Vec<String>> {
    ddb.db().world_names().unwrap().into_iter().collect()
}

/// A compaction must never install a bigger store than it captured. This
/// workload is the adversarial case for the spanning predicate-constant
/// pass: every update is conditioned on a disjunction that is never
/// resolved, so the chained history constants are genuinely entangled and
/// their Shannon expansions do not fold. `simplify` must detect that the
/// cascade went net-negative and revert to the best state it saw, making
/// the whole round a no-op rather than a pessimization.
#[test]
fn compaction_never_installs_a_bigger_store() {
    let mut ddb = open_db();
    for i in 0..40 {
        ddb.execute(&format!(
            "INSERT Item({}) WHERE Flag({})",
            i % ITEMS,
            i % FLAGS
        ))
        .unwrap();
        ddb.execute(&format!(
            "DELETE Item({}) WHERE Flag({})",
            i % ITEMS,
            (i + 1) % FLAGS
        ))
        .unwrap();
    }
    let worlds_before = world_set(&ddb);
    let (mut copy, from_lsn) = ddb.begin_compaction();
    simplify(&mut copy, SimplifyLevel::Full);
    let outcome = ddb.install_compacted(copy, from_lsn, false).unwrap();
    assert!(
        outcome.nodes_after <= outcome.nodes_before,
        "compaction grew the store: {} -> {}",
        outcome.nodes_before,
        outcome.nodes_after
    );
    assert_eq!(
        world_set(&ddb),
        worlds_before,
        "compaction changed the worlds"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compaction_is_observationally_invisible(
        script in prop::collection::vec(op_strategy(), 1..20),
        split in 0..20usize,
        racing in 0..3usize,
    ) {
        let statements: Vec<String> = script.iter().map(Op::render).collect();
        let split = split.min(statements.len());
        let racing = racing.min(statements.len() - split);

        // Reference: the whole script, no compaction.
        let mut reference = open_db();
        let ref_accepted: Vec<bool> = statements
            .iter()
            .map(|s| reference.execute(s).is_ok())
            .collect();

        // Compacted: prefix, then a swap whose capture window admits
        // `racing` further statements, then the rest of the script.
        let mut compacted = open_db();
        let mut accepted = Vec::new();
        for s in &statements[..split] {
            accepted.push(compacted.execute(s).is_ok());
        }
        let generation_before = compacted.db().theory().generation();
        let (mut copy, from_lsn) = compacted.begin_compaction();
        for s in &statements[split..split + racing] {
            accepted.push(compacted.execute(s).is_ok());
        }
        simplify(&mut copy, SimplifyLevel::Full);
        let outcome = compacted.install_compacted(copy, from_lsn, false).unwrap();
        prop_assert!(
            outcome.generation_after > generation_before,
            "swap did not advance the generation: {generation_before} -> {}",
            outcome.generation_after
        );
        for s in &statements[split + racing..] {
            accepted.push(compacted.execute(s).is_ok());
        }

        prop_assert_eq!(
            &accepted, &ref_accepted,
            "accept/refuse decisions diverged on {:?}", statements
        );
        prop_assert_eq!(
            panel_verdicts(&mut compacted),
            panel_verdicts(&mut reference),
            "query verdicts diverged on {:?}", statements
        );
        prop_assert_eq!(
            world_set(&compacted),
            world_set(&reference),
            "alternative worlds diverged on {:?}", statements
        );
    }
}
