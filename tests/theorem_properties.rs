//! Direct executable versions of the paper's smaller formal claims —
//! Lemma 1 and the §3.4 closing remark — over randomized theories.

use proptest::prelude::*;
use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::Update;
use winslett::logic::{AtomId, Formula, ModelLimit, Wff};
use winslett::theory::Theory;

const NUM_ATOMS: usize = 4;

fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i))),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i)).not()),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::implies(a, b)),
        ]
    })
}

/// Builds a theory over atoms `0..NUM_ATOMS` with the given section.
fn build(wffs: &[Wff]) -> Theory {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    for i in 0..NUM_ATOMS {
        let c = t.constant(&format!("c{i}"));
        let id = t.atom(r, &[c]);
        assert_eq!(id, AtomId(i as u32));
        t.register_atom(id);
    }
    for w in wffs {
        t.assert_wff(w);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// **Lemma 1.** "Adding the new disjunct … to α and adding ¬P(c…) to
    /// the non-axiomatic section … produces a new theory with the same
    /// models." In our representation: registering a brand-new atom and
    /// asserting its negation leaves the alternative worlds unchanged.
    #[test]
    fn lemma1_completion_extension_preserves_worlds(
        wffs in prop::collection::vec(wff_strategy(), 1..4),
    ) {
        let mut t = build(&wffs);
        let before = t.alternative_worlds(ModelLimit::default()).unwrap();
        // A fresh atom, never mentioned before.
        let r = t.vocab.find_predicate("R").unwrap();
        let c = t.constant("fresh");
        let f = t.atom(r, &[c]);
        t.register_atom(f);
        t.assert_not_atom(f);
        let after = t.alternative_worlds(ModelLimit::default()).unwrap();
        // Worlds gain a (false) bit for the new atom but remain in 1–1
        // correspondence; since the new atom is false everywhere, the
        // bitsets compare equal under semantic equality.
        prop_assert_eq!(before, after);
    }

    /// **§3.4 closing remark.** "If two extended relational theories have
    /// the same axioms, then they will have identical sets of alternative
    /// worlds after a series of updates iff the non-axiomatic sections of
    /// the two theories are logically equivalent." We test the ⇐ direction
    /// constructively: replace the section by a logically equivalent one
    /// (double negation + reassociation), run the same updates, compare
    /// worlds.
    #[test]
    fn syntactically_different_equivalent_sections_update_identically(
        wffs in prop::collection::vec(wff_strategy(), 1..4),
        omega in wff_strategy(),
        phi in wff_strategy(),
    ) {
        let t1 = build(&wffs);
        if !t1.is_consistent() {
            return Ok(());
        }
        // A logically equivalent but syntactically different section.
        let twisted: Vec<Wff> = wffs
            .iter()
            .map(|w| w.clone().not().not()) // ¬¬w
            .collect();
        let t2 = build(&twisted);

        let u = Update::insert(omega, phi);
        let run = |t: Theory| {
            let mut e = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::Fast));
            e.apply(&u).unwrap();
            e.theory.alternative_worlds(ModelLimit::default()).unwrap()
        };
        prop_assert_eq!(run(t1), run(t2));
    }
}
