//! Experiment E6's soundness leg: simplification (§4) must never change
//! the alternative worlds, at any level, on arbitrary sections — including
//! sections containing predicate constants left behind by GUA — and it
//! must actually shrink theories under realistic update churn.

use proptest::prelude::*;
use winslett::gua::{simplify, GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::Update;
use winslett::logic::{AtomId, Formula, GroundAtom, ModelLimit, Wff};
use winslett::theory::Theory;

const VISIBLE: usize = 4;
const PCS: usize = 2;

fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..(VISIBLE + PCS) as u32).prop_map(|i| Wff::Atom(AtomId(i))),
        (0..(VISIBLE + PCS) as u32).prop_map(|i| Wff::Atom(AtomId(i)).not()),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Wff::implies(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::iff(a, b)),
        ]
    })
}

/// Atoms 0..VISIBLE are relation atoms; VISIBLE..VISIBLE+PCS are predicate
/// constants.
fn build_theory(wffs: &[Wff]) -> Theory {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    for i in 0..VISIBLE {
        let c = t.constant(&format!("c{i}"));
        let id = t.atom(r, &[c]);
        assert_eq!(id, AtomId(i as u32));
    }
    for i in 0..PCS {
        let pc = t.vocab.fresh_predicate_constant();
        let id = t.atoms.intern(GroundAtom::nullary(pc));
        assert_eq!(id, AtomId((VISIBLE + i) as u32));
    }
    for w in wffs {
        t.assert_wff(w);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fast_simplification_preserves_worlds(
        wffs in prop::collection::vec(wff_strategy(), 1..5),
    ) {
        let mut t = build_theory(&wffs);
        let before = t.alternative_worlds(ModelLimit::default()).unwrap();
        simplify(&mut t, SimplifyLevel::Fast);
        let after = t.alternative_worlds(ModelLimit::default()).unwrap();
        prop_assert_eq!(before, after, "section: {:?}", wffs);
    }

    #[test]
    fn full_simplification_preserves_worlds(
        wffs in prop::collection::vec(wff_strategy(), 1..5),
    ) {
        let mut t = build_theory(&wffs);
        let before = t.alternative_worlds(ModelLimit::default()).unwrap();
        simplify(&mut t, SimplifyLevel::Full);
        let after = t.alternative_worlds(ModelLimit::default()).unwrap();
        prop_assert_eq!(before, after, "section: {:?}", wffs);
    }

    /// Simplification usually shrinks, but eliminating a predicate
    /// constant confined to one formula uses Shannon expansion
    /// (∃p f ≡ f[p:=T] ∨ f[p:=F]), which may up to double that formula —
    /// so the honest bound is 2× plus a constant. A second pass must not
    /// blow up either (the expansion removed the atom, so it cannot
    /// re-fire).
    #[test]
    fn simplification_size_is_bounded_and_settles(
        wffs in prop::collection::vec(wff_strategy(), 1..5),
    ) {
        let mut t = build_theory(&wffs);
        let r1 = simplify(&mut t, SimplifyLevel::Fast);
        prop_assert!(r1.nodes_after <= 2 * r1.nodes_before + 4,
            "grew from {} to {}", r1.nodes_before, r1.nodes_after);
        let r2 = simplify(&mut t, SimplifyLevel::Fast);
        prop_assert!(r2.nodes_after <= r2.nodes_before,
            "second pass grew from {} to {}", r2.nodes_before, r2.nodes_after);
    }
}

/// The E6 shape in miniature: under an insert/assert churn, the simplified
/// engine's theory stays dramatically smaller than the unsimplified one,
/// while representing the same worlds.
#[test]
fn simplification_bounds_growth_under_churn() {
    let run = |level: SimplifyLevel| -> (usize, Vec<winslett::logic::BitSet>) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_atom(a);
        t.assert_not_atom(b);
        let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(level));
        for i in 0..30 {
            // Branch, then resolve — the paper's insert-then-ASSERT cycle.
            engine
                .apply(&Update::insert(
                    Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                    Wff::t(),
                ))
                .unwrap();
            let keep = if i % 2 == 0 { a } else { b };
            engine.apply(&Update::assert(Wff::Atom(keep))).unwrap();
        }
        (
            engine.theory.store.size_nodes(),
            engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap(),
        )
    };
    let (nodes_none, worlds_none) = run(SimplifyLevel::None);
    let (nodes_fast, worlds_fast) = run(SimplifyLevel::Fast);
    assert_eq!(worlds_none, worlds_fast);
    assert!(
        nodes_fast * 5 < nodes_none,
        "fast {nodes_fast} vs none {nodes_none}"
    );
}

/// Simplification composes with further updates: simplify mid-stream, keep
/// updating, worlds still match the never-simplified run.
#[test]
fn mid_stream_simplification_is_transparent() {
    let build = || {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ids: Vec<AtomId> = (0..3)
            .map(|i| {
                let c = t.constant(&format!("c{i}"));
                t.atom(r, &[c])
            })
            .collect();
        t.assert_atom(ids[0]);
        t.assert_not_atom(ids[1]);
        t.assert_not_atom(ids[2]);
        (t, ids)
    };
    let updates = |ids: &[AtomId]| {
        vec![
            Update::insert(
                Formula::Or(vec![Wff::Atom(ids[1]), Wff::Atom(ids[2])]),
                Wff::Atom(ids[0]),
            ),
            Update::delete(ids[0], Wff::Atom(ids[1])),
            Update::insert(Wff::Atom(ids[0]), Wff::Atom(ids[2])),
        ]
    };

    let (t1, ids1) = build();
    let mut plain = GuaEngine::new(t1, GuaOptions::simplify_always(SimplifyLevel::None));
    for u in updates(&ids1) {
        plain.apply(&u).unwrap();
    }

    let (t2, ids2) = build();
    let mut mixed = GuaEngine::new(t2, GuaOptions::simplify_always(SimplifyLevel::None));
    let us = updates(&ids2);
    mixed.apply(&us[0]).unwrap();
    mixed.simplify(SimplifyLevel::Full);
    mixed.apply(&us[1]).unwrap();
    mixed.simplify(SimplifyLevel::Fast);
    mixed.apply(&us[2]).unwrap();

    assert_eq!(
        plain
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap(),
        mixed
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap()
    );
}
