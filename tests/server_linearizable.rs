//! Linearizability of `winslett-serve`: random interleaved client
//! scripts against a live server must be explainable as ONE serial order
//! of the acknowledged writes.
//!
//! The server acknowledges every write with its WAL LSN — the claimed
//! serialization order. The test fans writer threads (and snapshot-read
//! threads) against a live server, then:
//!
//! 1. replays the acknowledged updates in LSN order through the existing
//!    [`replay_updates`] path (the §4 strawman, deliberately a different
//!    code path from the server's GUA-with-simplification writer) and
//!    checks the reopened post-shutdown database denotes **exactly** the
//!    same set of alternative worlds;
//! 2. checks every snapshot read (pinned at `updates_applied = k`)
//!    returned exactly what the LSN-order prefix of length `k` entails —
//!    snapshot reads are reads of a serial prefix, never a torn state.
//!
//! The server runs `SyncPolicy::GroupCommit`, so the final comparison
//! also exercises the flush-on-close path: without it the reopened
//! database would be missing the buffered WAL tail.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;
use winslett::db::{
    replay_updates, DbError, DbOptions, DurableDatabase, LogicalDatabase, MemStorage, SyncPolicy,
    WalOptions,
};
use winslett_serve::{Client, Server, ServerOptions};

/// The write pool: consistent-by-construction LDML over a tiny universe,
/// so any interleaving is legal and the SAT work stays trivial.
const POOL: &[&str] = &[
    "INSERT R(1) WHERE T",
    "INSERT R(2) | R(3) WHERE T",
    "DELETE R(1) WHERE T",
    "MODIFY R(2) TO BE R(4) WHERE T",
    "INSERT S(1) WHERE R(1)",
    "DELETE S(1) WHERE T",
    "INSERT R(3) WHERE S(1)",
];

/// Wffs every snapshot read asks about.
const PROBES: &[&str] = &["R(1)", "S(1)"];

/// Writes acknowledged before the concurrent phase (the two declares).
const SETUP_WRITES: u64 = 2;

fn boot() -> (JoinHandle<Result<MemStorage, DbError>>, SocketAddr) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(4),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 32,
            idle_timeout: Duration::from_secs(10),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    (std::thread::spawn(move || server.run()), addr)
}

/// One pinned snapshot read: the prefix length it was promised and what
/// it answered for each probe — `None` when the snapshot's vocabulary
/// does not even contain the probe's constants yet (a strict parse
/// error, which the serial prefix must reproduce too).
#[derive(Debug)]
struct PinnedRead {
    updates_applied: u64,
    truths: Vec<Option<(bool, bool)>>,
}

/// Replays the first `prefix` acknowledged updates in LSN order through
/// the §4 path and returns a queryable database.
fn replayed_prefix(sources: &[&str], prefix: usize) -> LogicalDatabase {
    let mut parse_db = LogicalDatabase::new();
    parse_db.declare_relation("R", 1).expect("declare R");
    parse_db.declare_relation("S", 1).expect("declare S");
    let updates: Vec<_> = sources[..prefix]
        .iter()
        .map(|src| parse_db.parse_update(src).expect("parse acked update"))
        .collect();
    let theory = replay_updates(parse_db.theory(), &updates).expect("replay acked updates");
    LogicalDatabase::from_theory(theory, DbOptions::default())
}

fn world_set(db: &LogicalDatabase) -> BTreeSet<Vec<String>> {
    db.world_names().expect("worlds").into_iter().collect()
}

/// Runs one full scenario; returns nothing, panics on any violation.
fn run_scenario(writer_scripts: Vec<Vec<usize>>, readers: usize) {
    let (running, addr) = boot();

    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");
    setup.declare_relation("S", 1).expect("declare S");

    let barrier = Arc::new(Barrier::new(writer_scripts.len() + readers));
    let mut writer_handles = Vec::new();
    for script in writer_scripts {
        let barrier = Arc::clone(&barrier);
        writer_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect writer");
            barrier.wait();
            let mut acked: Vec<(u64, usize)> = Vec::new();
            for idx in script {
                let reply = client.execute(POOL[idx]).expect("execute");
                acked.push((reply.lsn, idx));
            }
            acked
        }));
    }
    let mut reader_handles = Vec::new();
    for _ in 0..readers {
        let barrier = Arc::clone(&barrier);
        reader_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect reader");
            barrier.wait();
            let mut reads = Vec::new();
            for _ in 0..3 {
                let pin = client.pin().expect("pin");
                let mut truths = Vec::new();
                for probe in PROBES {
                    match client.check(probe) {
                        Ok(t) => {
                            assert_eq!(
                                t.generation, pin.generation,
                                "pinned read answered at a different generation"
                            );
                            truths.push(Some((t.possible, t.certain)));
                        }
                        Err(winslett_serve::ClientError::Server(e)) => {
                            assert_eq!(
                                e.kind,
                                winslett_serve::ErrorKindWire::Parse,
                                "only strict-parse errors are legal: {e}"
                            );
                            truths.push(None);
                        }
                        Err(e) => panic!("check transport failure: {e}"),
                    }
                }
                client.unpin().expect("unpin");
                reads.push(PinnedRead {
                    updates_applied: pin.updates_applied,
                    truths,
                });
            }
            reads
        }));
    }

    let mut acked: Vec<(u64, usize)> = Vec::new();
    for h in writer_handles {
        acked.extend(h.join().expect("writer thread"));
    }
    let reads: Vec<PinnedRead> = reader_handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader thread"))
        .collect();

    setup.shutdown().expect("shutdown");
    let storage = running.join().expect("server thread").expect("run");

    // The acknowledged LSNs are the serialization witness: unique and
    // contiguous after the two setup declares.
    acked.sort();
    let lsns: Vec<u64> = acked.iter().map(|&(lsn, _)| lsn).collect();
    let expected: Vec<u64> = (SETUP_WRITES..SETUP_WRITES + acked.len() as u64).collect();
    assert_eq!(lsns, expected, "acked LSNs must be a contiguous sequence");
    let sources: Vec<&str> = acked.iter().map(|&(_, idx)| POOL[idx]).collect();

    // (1) Final state == serial replay of the acked updates in LSN order.
    // Reopening from the returned storage also proves the group-commit
    // buffer was flushed by the graceful shutdown.
    let (reopened, report) =
        DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
            .expect("reopen");
    assert_eq!(report.truncated, None, "shutdown must not tear the WAL");
    let serial = replayed_prefix(&sources, sources.len());
    assert_eq!(
        world_set(reopened.db()),
        world_set(&serial),
        "final state is not the serial replay of the acknowledged updates"
    );

    // (2) Every pinned read saw exactly the LSN-prefix state it pinned.
    for read in &reads {
        assert!(read.updates_applied >= SETUP_WRITES);
        let prefix = (read.updates_applied - SETUP_WRITES) as usize;
        let mut at_pin = replayed_prefix(&sources, prefix);
        for (probe, got) in PROBES.iter().zip(&read.truths) {
            let want = match (at_pin.is_possible(probe), at_pin.is_certain(probe)) {
                (Ok(p), Ok(c)) => Some((p, c)),
                _ => None,
            };
            assert_eq!(
                *got, want,
                "snapshot read of {probe} at prefix {prefix} diverged from the serial prefix"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interleaved_clients_linearize(
        writer_scripts in prop::collection::vec(
            prop::collection::vec(0..POOL.len(), 1..4),
            1..4,
        ),
        readers in 1..3usize,
    ) {
        run_scenario(writer_scripts, readers);
    }
}

/// A deterministic worst-case shape on top of the random sweep: maximum
/// writer fan-in with every pool statement in play.
#[test]
fn dense_interleaving_linearizes() {
    let scripts = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 0], vec![2, 1, 0, 5]];
    run_scenario(scripts, 2);
}
