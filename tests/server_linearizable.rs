//! Linearizability of `winslett-serve`: random interleaved client
//! scripts against a live server must be explainable as ONE serial order
//! of the acknowledged writes.
//!
//! The server acknowledges every write with its WAL LSN — the claimed
//! serialization order. The test fans writer threads (and snapshot-read
//! threads) against a live server, then:
//!
//! 1. replays the acknowledged updates in LSN order through the existing
//!    [`replay_updates`] path (the §4 strawman, deliberately a different
//!    code path from the server's GUA-with-simplification writer) and
//!    checks the reopened post-shutdown database denotes **exactly** the
//!    same set of alternative worlds;
//! 2. checks every snapshot read (pinned at `updates_applied = k`)
//!    returned exactly what the LSN-order prefix of length `k` entails —
//!    snapshot reads are reads of a serial prefix, never a torn state.
//!
//! The server runs `SyncPolicy::GroupCommit`, so the final comparison
//! also exercises the flush-on-close path: without it the reopened
//! database would be missing the buffered WAL tail.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;
use winslett::db::{
    replay_updates, DbError, DbOptions, DurableDatabase, LogicalDatabase, MemStorage, SyncPolicy,
    WalOptions,
};
use winslett_serve::{Client, Replica, ReplicaHandle, ReplicaOptions, Server, ServerOptions};

/// The write pool: consistent-by-construction LDML over a tiny universe,
/// so any interleaving is legal and the SAT work stays trivial.
const POOL: &[&str] = &[
    "INSERT R(1) WHERE T",
    "INSERT R(2) | R(3) WHERE T",
    "DELETE R(1) WHERE T",
    "MODIFY R(2) TO BE R(4) WHERE T",
    "INSERT S(1) WHERE R(1)",
    "DELETE S(1) WHERE T",
    "INSERT R(3) WHERE S(1)",
];

/// Wffs every snapshot read asks about.
const PROBES: &[&str] = &["R(1)", "S(1)"];

/// Writes acknowledged before the concurrent phase (the two declares).
const SETUP_WRITES: u64 = 2;

fn boot() -> (JoinHandle<Result<MemStorage, DbError>>, SocketAddr) {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(4),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 32,
            idle_timeout: Duration::from_secs(10),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    (std::thread::spawn(move || server.run()), addr)
}

/// One pinned snapshot read: the prefix length it was promised and what
/// it answered for each probe — `None` when the snapshot's vocabulary
/// does not even contain the probe's constants yet (a strict parse
/// error, which the serial prefix must reproduce too).
#[derive(Debug)]
struct PinnedRead {
    updates_applied: u64,
    truths: Vec<Option<(bool, bool)>>,
}

/// Replays the first `prefix` acknowledged updates in LSN order through
/// the §4 path and returns a queryable database.
fn replayed_prefix(sources: &[&str], prefix: usize) -> LogicalDatabase {
    let mut parse_db = LogicalDatabase::new();
    parse_db.declare_relation("R", 1).expect("declare R");
    parse_db.declare_relation("S", 1).expect("declare S");
    let updates: Vec<_> = sources[..prefix]
        .iter()
        .map(|src| parse_db.parse_update(src).expect("parse acked update"))
        .collect();
    let theory = replay_updates(parse_db.theory(), &updates).expect("replay acked updates");
    LogicalDatabase::from_theory(theory, DbOptions::default())
}

fn world_set(db: &LogicalDatabase) -> BTreeSet<Vec<String>> {
    db.world_names().expect("worlds").into_iter().collect()
}

/// Runs one full scenario; returns nothing, panics on any violation.
fn run_scenario(writer_scripts: Vec<Vec<usize>>, readers: usize) {
    let (running, addr) = boot();

    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");
    setup.declare_relation("S", 1).expect("declare S");

    let barrier = Arc::new(Barrier::new(writer_scripts.len() + readers));
    let mut writer_handles = Vec::new();
    for script in writer_scripts {
        let barrier = Arc::clone(&barrier);
        writer_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect writer");
            barrier.wait();
            let mut acked: Vec<(u64, usize)> = Vec::new();
            for idx in script {
                let reply = client.execute(POOL[idx]).expect("execute");
                acked.push((reply.lsn, idx));
            }
            acked
        }));
    }
    let mut reader_handles = Vec::new();
    for _ in 0..readers {
        let barrier = Arc::clone(&barrier);
        reader_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect reader");
            barrier.wait();
            let mut reads = Vec::new();
            for _ in 0..3 {
                let pin = client.pin().expect("pin");
                let mut truths = Vec::new();
                for probe in PROBES {
                    match client.check(probe) {
                        Ok(t) => {
                            assert_eq!(
                                t.generation, pin.generation,
                                "pinned read answered at a different generation"
                            );
                            truths.push(Some((t.possible, t.certain)));
                        }
                        Err(winslett_serve::ClientError::Server(e)) => {
                            assert_eq!(
                                e.kind,
                                winslett_serve::ErrorKindWire::Parse,
                                "only strict-parse errors are legal: {e}"
                            );
                            truths.push(None);
                        }
                        Err(e) => panic!("check transport failure: {e}"),
                    }
                }
                client.unpin().expect("unpin");
                reads.push(PinnedRead {
                    updates_applied: pin.updates_applied,
                    truths,
                });
            }
            reads
        }));
    }

    let mut acked: Vec<(u64, usize)> = Vec::new();
    for h in writer_handles {
        acked.extend(h.join().expect("writer thread"));
    }
    let reads: Vec<PinnedRead> = reader_handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader thread"))
        .collect();

    setup.shutdown().expect("shutdown");
    let storage = running.join().expect("server thread").expect("run");

    // The acknowledged LSNs are the serialization witness: unique and
    // contiguous after the two setup declares.
    acked.sort();
    let lsns: Vec<u64> = acked.iter().map(|&(lsn, _)| lsn).collect();
    let expected: Vec<u64> = (SETUP_WRITES..SETUP_WRITES + acked.len() as u64).collect();
    assert_eq!(lsns, expected, "acked LSNs must be a contiguous sequence");
    let sources: Vec<&str> = acked.iter().map(|&(_, idx)| POOL[idx]).collect();

    // (1) Final state == serial replay of the acked updates in LSN order.
    // Reopening from the returned storage also proves the group-commit
    // buffer was flushed by the graceful shutdown.
    let (reopened, report) =
        DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
            .expect("reopen");
    assert_eq!(report.truncated, None, "shutdown must not tear the WAL");
    let serial = replayed_prefix(&sources, sources.len());
    assert_eq!(
        world_set(reopened.db()),
        world_set(&serial),
        "final state is not the serial replay of the acknowledged updates"
    );

    // (2) Every pinned read saw exactly the LSN-prefix state it pinned.
    for read in &reads {
        assert!(read.updates_applied >= SETUP_WRITES);
        let prefix = (read.updates_applied - SETUP_WRITES) as usize;
        let mut at_pin = replayed_prefix(&sources, prefix);
        for (probe, got) in PROBES.iter().zip(&read.truths) {
            let want = match (at_pin.is_possible(probe), at_pin.is_certain(probe)) {
                (Ok(p), Ok(c)) => Some((p, c)),
                _ => None,
            };
            assert_eq!(
                *got, want,
                "snapshot read of {probe} at prefix {prefix} diverged from the serial prefix"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interleaved_clients_linearize(
        writer_scripts in prop::collection::vec(
            prop::collection::vec(0..POOL.len(), 1..4),
            1..4,
        ),
        readers in 1..3usize,
    ) {
        run_scenario(writer_scripts, readers);
    }
}

/// A deterministic worst-case shape on top of the random sweep: maximum
/// writer fan-in with every pool statement in play.
#[test]
fn dense_interleaving_linearizes() {
    let scripts = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 0], vec![2, 1, 0, 5]];
    run_scenario(scripts, 2);
}

// ----- cross-replica consistency --------------------------------------------
//
// The same serialization witness, extended over WAL-shipping replicas:
// every state a replica ever publishes (observed by sampling `PinAt`
// during the live run) must answer the probes exactly as the LSN-order
// prefix through its pinned LSN — replicas never expose a torn or
// reordered state, only (possibly stale) serial prefixes.

/// How long a replica may lag before the test calls it broken.
const CATCHUP_DEADLINE: Duration = Duration::from_secs(10);

/// One sampled replica read: the LSN the pin actually landed on and the
/// probe verdicts at that snapshot (`None` per probe = strict-parse
/// error, legal on a snapshot whose vocabulary predates the probe).
#[derive(Debug)]
struct ReplicaRead {
    last_lsn: u64,
    truths: Vec<Option<(bool, bool)>>,
}

fn boot_replica(primary: SocketAddr) -> (ReplicaHandle, JoinHandle<()>, SocketAddr) {
    let replica = Replica::bind(
        ("127.0.0.1", 0),
        primary,
        DbOptions::default(),
        ReplicaOptions {
            idle_timeout: Duration::from_secs(10),
            reconnect_backoff: Duration::from_millis(10),
            ..ReplicaOptions::default()
        },
    )
    .expect("bind replica");
    let addr = replica.local_addr();
    let handle = replica.handle();
    let thread = std::thread::spawn(move || {
        let _ = replica.run();
    });
    (handle, thread, addr)
}

/// Retries `pin_at(min_lsn)` until the replica catches up (or the
/// deadline calls it broken). Returns the pinned snapshot reply; the pin
/// is left held so the caller's reads stay on it.
fn pin_when_caught_up(client: &mut Client, min_lsn: u64) -> winslett_serve::SnapshotReply {
    let start = std::time::Instant::now();
    loop {
        match client.pin_at(min_lsn) {
            Ok(snap) => return snap,
            Err(winslett_serve::ClientError::Server(e))
                if e.kind == winslett_serve::ErrorKindWire::LagBehind =>
            {
                assert!(
                    start.elapsed() < CATCHUP_DEADLINE,
                    "replica never reached lsn {min_lsn}: {e}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("pin_at({min_lsn}) failed: {e}"),
        }
    }
}

/// Probes the replica's pinned snapshot. A probe whose constants the
/// young snapshot has not interned yet is a strict-parse error — legal,
/// recorded as `None` per probe, and the serial prefix must reproduce
/// it. Returns `None` overall only when the replica disappears mid-read
/// (the mid-stream restart).
fn probe_pinned(client: &mut Client, generation: u64) -> Option<Vec<Option<(bool, bool)>>> {
    let mut truths = Vec::new();
    for probe in PROBES {
        match client.check(probe) {
            Ok(t) => {
                assert_eq!(
                    t.generation, generation,
                    "pinned replica read answered at a different generation"
                );
                truths.push(Some((t.possible, t.certain)));
            }
            Err(winslett_serve::ClientError::Server(e)) => {
                assert_eq!(
                    e.kind,
                    winslett_serve::ErrorKindWire::Parse,
                    "only strict-parse errors are legal on a replica read: {e}"
                );
                truths.push(None);
            }
            Err(winslett_serve::ClientError::Frame(_)) => return None,
            Err(e) => panic!("check on replica failed: {e}"),
        }
    }
    Some(truths)
}

/// Asserts one sampled replica state against the serial prefix through
/// its LSN.
fn assert_read_matches_prefix(sources: &[&str], read: &ReplicaRead) {
    assert!(
        read.last_lsn + 1 >= SETUP_WRITES,
        "a pinned replica state predates the setup declares"
    );
    let prefix = (read.last_lsn + 1 - SETUP_WRITES) as usize;
    assert!(
        prefix <= sources.len(),
        "replica pinned lsn {} beyond the acknowledged history",
        read.last_lsn
    );
    let mut at_pin = replayed_prefix(sources, prefix);
    for (probe, got) in PROBES.iter().zip(&read.truths) {
        let want = match (at_pin.is_possible(probe), at_pin.is_certain(probe)) {
            (Ok(p), Ok(c)) => Some((p, c)),
            _ => None,
        };
        assert_eq!(
            *got, want,
            "replica verdict for {probe} at lsn {} diverged from the serial prefix",
            read.last_lsn
        );
    }
}

/// Runs writers against a primary with two live replicas sampling reads
/// throughout; optionally restarts the second follower mid-stream (fresh
/// process, checkpoint-forced snapshot bootstrap). Verifies every sampled
/// replica state, final convergence on both replicas, and the typed
/// `LagBehind` refusal for an LSN from the future.
fn run_replica_scenario(writer_scripts: Vec<Vec<usize>>, restart_follower: bool) {
    let (running, addr) = boot();
    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");
    setup.declare_relation("S", 1).expect("declare S");

    let (handle_a, thread_a, addr_a) = boot_replica(addr);
    let (mut handle_b, mut thread_b, mut addr_b) = boot_replica(addr);

    // Samplers: race the live stream on both replicas, recording every
    // distinct state they manage to pin.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut samplers = Vec::new();
    for replica_addr in [addr_a, addr_b] {
        let stop = Arc::clone(&stop);
        samplers.push(std::thread::spawn(move || {
            let mut client = Client::connect(replica_addr).expect("connect sampler");
            let mut reads: Vec<ReplicaRead> = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                match client.pin_at(1) {
                    Ok(snap) => {
                        let Some(truths) = probe_pinned(&mut client, snap.generation) else {
                            break; // replica went away mid-read
                        };
                        if client.unpin().is_err() {
                            break;
                        }
                        if reads.last().map(|r| r.last_lsn) != Some(snap.last_lsn) {
                            reads.push(ReplicaRead {
                                last_lsn: snap.last_lsn,
                                truths,
                            });
                        }
                    }
                    Err(winslett_serve::ClientError::Server(e))
                        if e.kind == winslett_serve::ErrorKindWire::LagBehind => {}
                    // The follower this sampler watched was shut down
                    // (the mid-stream restart): stop sampling, everything
                    // recorded so far still gets verified.
                    Err(winslett_serve::ClientError::Frame(_)) => break,
                    Err(e) => panic!("sampler pin failed: {e}"),
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            reads
        }));
    }

    // Phase 1 writes.
    let mut acked: Vec<(u64, usize)> = Vec::new();
    let mut writer = Client::connect(addr).expect("connect writer");
    let split = writer_scripts.len() / 2;
    for script in &writer_scripts[..split.max(1).min(writer_scripts.len())] {
        for &idx in script {
            let reply = writer.execute(POOL[idx]).expect("execute");
            acked.push((reply.lsn, idx));
        }
    }

    if restart_follower {
        // Kill follower B mid-stream, then force the snapshot bootstrap
        // path for its replacement: the checkpoint folds the whole log,
        // so a fresh subscription from 0 predates it.
        handle_b.request_shutdown();
        thread_b.join().expect("replica b thread");
        setup.checkpoint().expect("checkpoint");
        let (hb, tb, ab) = boot_replica(addr);
        handle_b = hb;
        thread_b = tb;
        addr_b = ab;
    }

    // Phase 2 writes.
    for script in &writer_scripts[split.max(1).min(writer_scripts.len())..] {
        for &idx in script {
            let reply = writer.execute(POOL[idx]).expect("execute");
            acked.push((reply.lsn, idx));
        }
    }

    acked.sort();
    let lsns: Vec<u64> = acked.iter().map(|&(lsn, _)| lsn).collect();
    let expected: Vec<u64> = (SETUP_WRITES..SETUP_WRITES + acked.len() as u64).collect();
    assert_eq!(lsns, expected, "acked LSNs must be a contiguous sequence");
    let sources: Vec<&str> = acked.iter().map(|&(_, idx)| POOL[idx]).collect();
    let final_lsn = lsns.last().copied().unwrap_or(SETUP_WRITES - 1);

    // Final convergence: both replicas reach the last acknowledged LSN
    // and answer exactly as the full serial replay (the restarted
    // follower included — its bootstrap ran through the checkpoint
    // snapshot plus the suffix).
    for replica_addr in [addr_a, addr_b] {
        let mut client = Client::connect(replica_addr).expect("connect verifier");
        let snap = pin_when_caught_up(&mut client, final_lsn);
        let truths =
            probe_pinned(&mut client, snap.generation).expect("replica died during verification");
        client.unpin().expect("unpin verifier");
        assert_read_matches_prefix(
            &sources,
            &ReplicaRead {
                last_lsn: snap.last_lsn,
                truths,
            },
        );
        // An LSN from the future is a typed refusal, not a hang or a lie.
        match client.pin_at(final_lsn + 1000) {
            Err(winslett_serve::ClientError::Server(e)) => {
                assert_eq!(e.kind, winslett_serve::ErrorKindWire::LagBehind);
            }
            other => panic!("expected LagBehind for a future LSN, got {other:?}"),
        }
    }
    if restart_follower {
        let mut client = Client::connect(addr_b).expect("connect stats");
        let stats = client.stats().expect("replica stats");
        assert_eq!(
            stats.replica_snapshots_loaded, 1,
            "the restarted follower must have bootstrapped from the checkpoint snapshot"
        );
    }

    // Every state either replica ever exposed was a serial prefix.
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for sampler in samplers {
        let reads = sampler.join().expect("sampler thread");
        for read in &reads {
            assert_read_matches_prefix(&sources, read);
        }
    }

    handle_a.request_shutdown();
    handle_b.request_shutdown();
    thread_a.join().expect("replica a thread");
    thread_b.join().expect("replica b thread");
    drop(writer);
    setup.shutdown().expect("shutdown");
    running.join().expect("server thread").expect("run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn replicas_only_expose_serial_prefixes(
        writer_scripts in prop::collection::vec(
            prop::collection::vec(0..POOL.len(), 1..4),
            1..4,
        ),
        restart_follower in any::<bool>(),
    ) {
        run_replica_scenario(writer_scripts, restart_follower);
    }
}

/// Deterministic dense shape with a follower restart mid-stream.
#[test]
fn follower_restart_mid_stream_converges() {
    let scripts = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 0], vec![2, 1, 0, 5]];
    run_replica_scenario(scripts, true);
}

/// Followers never expose uncommitted transaction effects. A follower
/// streaming live from before the transaction opened, and a follower
/// bootstrapped *mid-transaction* (whose catch-up suffix begins with the
/// open transaction's begin and ops), must both keep serving
/// non-transactional writes that land while the transaction is open —
/// the buffered intents stay invisible until the commit marker arrives,
/// then appear atomically.
#[test]
fn follower_restart_mid_txn_never_exposes_uncommitted_effects() {
    let (running, addr) = boot();
    let mut setup = Client::connect(addr).expect("connect setup");
    setup.declare_relation("R", 1).expect("declare R");
    setup.declare_relation("S", 1).expect("declare S");
    let seed_lsn = setup.execute("INSERT R(9) WHERE T").expect("seed").lsn;

    // Follower A streams live from before the transaction opens.
    let (handle_a, thread_a, addr_a) = boot_replica(addr);
    let mut on_a = Client::connect(addr_a).expect("connect a");
    pin_when_caught_up(&mut on_a, seed_lsn);
    on_a.unpin().expect("unpin a");

    // Replicas refuse transaction control outright: they are read-only.
    match on_a.begin() {
        Err(winslett_serve::ClientError::Server(e)) => {
            assert_eq!(e.kind, winslett_serve::ErrorKindWire::ReadOnly, "{e}");
        }
        other => panic!("begin on a replica: {other:?}"),
    }

    // Open a transaction on the primary and leave it open.
    let mut txn_conn = Client::connect(addr).expect("connect txn");
    txn_conn.begin().expect("begin");
    txn_conn.execute("INSERT R(1) WHERE T").expect("txn insert");
    txn_conn
        .execute("INSERT S(1) WHERE R(1)")
        .expect("txn insert 2");

    // A disjoint-footprint plain write proceeds despite the open
    // transaction and must reach the followers without the txn intents.
    let plain_lsn = setup.execute("INSERT S(7) WHERE T").expect("plain").lsn;

    // Checkpoints refuse while a transaction is open — a capture would
    // otherwise risk folding uncommitted intents into the snapshot.
    match setup.checkpoint() {
        Err(winslett_serve::ClientError::Server(e)) => {
            assert_eq!(e.kind, winslett_serve::ErrorKindWire::Refused, "{e}");
        }
        other => panic!("checkpoint during open txn: {other:?}"),
    }

    // "Not exposed" on a follower is either not-possible or a strict
    // parse error (the intent's constants never entered its vocabulary).
    let assert_not_exposed = |client: &mut Client, wff: &str| match client.check(wff) {
        Ok(t) => assert!(!t.possible, "{wff} leaked to a follower: {t:?}"),
        Err(winslett_serve::ClientError::Server(e)) => {
            assert_eq!(e.kind, winslett_serve::ErrorKindWire::Parse, "{wff}: {e}");
        }
        Err(e) => panic!("follower check {wff}: {e}"),
    };

    // Follower A advances past the plain write (its published LSN is not
    // held back by the open transaction) yet hides the intents.
    let snap = pin_when_caught_up(&mut on_a, plain_lsn);
    assert!(snap.last_lsn >= plain_lsn);
    assert_not_exposed(&mut on_a, "R(1)");
    assert_not_exposed(&mut on_a, "S(1)");
    assert!(on_a.check("S(7)").expect("S(7) on a").certain);
    on_a.unpin().expect("unpin a");

    // Follower B boots mid-transaction: its catch-up suffix starts with
    // the open transaction's records; it must pin its shipping cursor at
    // the transaction's begin, buffer the intents, and still publish
    // everything non-transactional up to the plain write.
    let (handle_b, thread_b, addr_b) = boot_replica(addr);
    let mut on_b = Client::connect(addr_b).expect("connect b");
    let snap = pin_when_caught_up(&mut on_b, plain_lsn);
    assert!(snap.last_lsn >= plain_lsn);
    assert_not_exposed(&mut on_b, "R(1)");
    assert_not_exposed(&mut on_b, "S(1)");
    assert!(on_b.check("S(7)").expect("S(7) on b").certain);
    on_b.unpin().expect("unpin b");

    // Commit: both followers expose the whole transaction atomically.
    let commit_lsn = txn_conn.commit().expect("commit").lsn;
    for client in [&mut on_a, &mut on_b] {
        let snap = pin_when_caught_up(client, commit_lsn);
        assert!(snap.last_lsn >= commit_lsn);
        for wff in ["R(1)", "S(1)", "R(9)", "S(7)"] {
            assert!(
                client.check(wff).expect("post-commit check").certain,
                "{wff} not certain on a follower after the commit"
            );
        }
        client.unpin().expect("unpin");
    }

    // With the transaction resolved, checkpoints work again.
    setup.checkpoint().expect("checkpoint after commit");

    // Close the replica readers before the drain: a live idle reader
    // would otherwise hold each follower's drain open until its read
    // deadline.
    drop(on_a);
    drop(on_b);
    handle_a.request_shutdown();
    handle_b.request_shutdown();
    thread_a.join().expect("replica a thread");
    thread_b.join().expect("replica b thread");
    drop(txn_conn);
    setup.shutdown().expect("shutdown");
    running.join().expect("server thread").expect("run");
}
