//! The conflict graph's soundness contract, proptest edition.
//!
//! [`analyze_conflicts`] promises: whenever it declares an adjacent pair
//! of statements independent — no edge in the conflict graph, or an edge
//! escalated to a commutativity proof — swapping that pair cannot change
//! the database. The property here replays arbitrary small programs both
//! ways through the real §4 update engine (GUA) over arbitrary small
//! theories and compares the alternative-world sets, so a footprint
//! widening bug, a broken escalation, or a missed coupling channel shows
//! up as a concrete reordering counterexample.
//!
//! Worlds are compared projected onto the pre-interned visible atoms:
//! GUA may mint predicate constants in a different order under the two
//! application orders, so raw model bitsets are not comparable, but the
//! visible atoms are interned before any update runs and keep their
//! indices in both.

use proptest::prelude::*;
use winslett::analyze::{analyze_conflicts, ConflictOptions};
use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::Update;
use winslett::logic::{AtomId, Formula, ModelLimit, Wff};
use winslett::theory::{Dependency, Theory};

const NUM_ATOMS: usize = 5;

/// A strategy producing wffs over atoms `0..NUM_ATOMS`.
fn wff_strategy() -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        Just(Wff::t()),
        Just(Wff::f()),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i))),
        (0..NUM_ATOMS as u32).prop_map(|i| Wff::Atom(AtomId(i)).not()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|w: Wff| w.not()),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            (inner.clone(), inner).prop_map(|(a, b)| Wff::implies(a, b)),
        ]
    })
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (wff_strategy(), wff_strategy()).prop_map(|(o, p)| Update::insert(o, p)),
        (0..NUM_ATOMS as u32, wff_strategy()).prop_map(|(t, p)| Update::delete(AtomId(t), p)),
        (0..NUM_ATOMS as u32, wff_strategy(), wff_strategy()).prop_map(|(t, o, p)| Update::modify(
            AtomId(t),
            o,
            p
        )),
        wff_strategy().prop_map(Update::assert),
    ]
}

fn build_theory(wffs: &[Wff]) -> Theory {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).unwrap();
    for i in 0..NUM_ATOMS {
        let c = t.constant(&format!("c{i}"));
        let id = t.atom(r, &[c]);
        assert_eq!(id, AtomId(i as u32));
    }
    for w in wffs {
        t.assert_wff(w);
    }
    for i in 0..NUM_ATOMS {
        t.register_atom(AtomId(i as u32));
    }
    t
}

/// Applies `program` in order through GUA and returns the final visible
/// world set, canonicalized to sorted membership vectors over the
/// pre-interned atoms. `None` if any update is refused.
fn final_worlds(theory: &Theory, program: &[Update]) -> Option<Vec<Vec<bool>>> {
    let mut engine = GuaEngine::new(
        theory.clone(),
        GuaOptions::simplify_always(SimplifyLevel::Fast),
    );
    for u in program {
        engine.apply(u).ok()?;
    }
    let worlds = engine
        .theory
        .alternative_worlds(ModelLimit::default())
        .ok()?;
    let mut vis: Vec<Vec<bool>> = worlds
        .iter()
        .map(|w| (0..NUM_ATOMS).map(|i| w.get(i)).collect())
        .collect();
    vis.sort();
    vis.dedup();
    Some(vis)
}

/// The soundness property for one generated case: every adjacent pair the
/// analyzer calls independent must be swappable without changing the
/// final world set.
fn check_independent_swaps(
    wffs: Vec<Wff>,
    program: Vec<Update>,
    options: &ConflictOptions,
) -> Result<(), TestCaseError> {
    let theory = build_theory(&wffs);
    if !theory.is_consistent() {
        return Ok(());
    }
    let analysis = analyze_conflicts(&theory, &program, options);
    let Some(reference) = final_worlds(&theory, &program) else {
        return Ok(());
    };
    for i in 0..program.len().saturating_sub(1) {
        if !analysis.independent(i, i + 1) {
            continue;
        }
        let mut swapped = program.clone();
        swapped.swap(i, i + 1);
        let swapped_worlds = final_worlds(&theory, &swapped);
        prop_assert_eq!(
            Some(&reference),
            swapped_worlds.as_ref(),
            "analyzer declared {} and {} independent, but swapping them changed \
             the final world set\nprogram: {:?}\nsection: {:?}",
            i,
            i + 1,
            &program,
            &wffs
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Syntactic-only graph (no SAT escalation): disjointness alone must
    /// already be a sound reordering license.
    #[test]
    fn syntactic_independence_licenses_swaps(
        wffs in prop::collection::vec(wff_strategy(), 0..3),
        program in prop::collection::vec(update_strategy(), 2..5),
    ) {
        let options = ConflictOptions { escalate: false, ..ConflictOptions::default() };
        check_independent_swaps(wffs, program, &options)?;
    }

    /// Full pipeline: escalated commutativity proofs must also be sound.
    #[test]
    fn escalated_independence_licenses_swaps(
        wffs in prop::collection::vec(wff_strategy(), 0..3),
        program in prop::collection::vec(update_strategy(), 2..4),
    ) {
        check_independent_swaps(wffs, program, &ConflictOptions::default())?;
    }
}

/// The §1 motivating pair: inserting two different tuples of the same
/// relation is syntactically independent, and swapping it really is
/// invisible.
#[test]
fn disjoint_inserts_swap_cleanly() {
    let theory = build_theory(&[]);
    let program = vec![
        Update::insert(Wff::Atom(AtomId(0)), Wff::t()),
        Update::insert(Wff::Atom(AtomId(1)), Wff::t()),
    ];
    let analysis = analyze_conflicts(&theory, &program, &ConflictOptions::default());
    assert!(analysis.independent(0, 1));
    let fwd = final_worlds(&theory, &program).unwrap();
    let mut swapped = program.clone();
    swapped.swap(0, 1);
    assert_eq!(fwd, final_worlds(&theory, &swapped).unwrap());
}

/// A genuinely order-sensitive pair must keep its edge: `INSERT R(c1)
/// WHERE R(c0)` reads what `INSERT R(c0) WHERE T` writes, and the two
/// orders end in different theories.
#[test]
fn order_sensitive_pair_keeps_its_edge() {
    let mut theory = build_theory(&[]);
    theory.assert_not_atom(AtomId(0));
    theory.assert_not_atom(AtomId(1));
    let program = vec![
        Update::insert(Wff::Atom(AtomId(0)), Wff::t()),
        Update::insert(Wff::Atom(AtomId(1)), Wff::Atom(AtomId(0))),
    ];
    let analysis = analyze_conflicts(&theory, &program, &ConflictOptions::default());
    assert!(!analysis.independent(0, 1));
    let fwd = final_worlds(&theory, &program).unwrap();
    let mut swapped = program.clone();
    swapped.swap(0, 1);
    // The reordering really does diverge — the edge is not spurious.
    assert_ne!(fwd, final_worlds(&theory, &swapped).unwrap());
}

/// The axiom-coupling caveat from `docs/analyzer.md`: two inserts into an
/// FD-constrained relation have disjoint atom footprints, but rule 3 can
/// couple them through the dependency, so the analyzer must widen both to
/// pruning and refuse to call them independent.
#[test]
fn fd_constrained_writes_are_never_independent() {
    let mut t = Theory::new();
    let p = t.declare_relation("P", 2).unwrap();
    t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
    let (ca, cb, cc, cd) = (
        t.constant("a"),
        t.constant("b"),
        t.constant("c"),
        t.constant("d"),
    );
    let ab = t.atom(p, &[ca, cb]);
    let cd_atom = t.atom(p, &[cc, cd]);
    t.assert_not_atom(ab);
    t.assert_not_atom(cd_atom);
    let program = vec![
        Update::insert(Wff::Atom(ab), Wff::t()),
        Update::insert(Wff::Atom(cd_atom), Wff::t()),
    ];
    let analysis = analyze_conflicts(&t, &program, &ConflictOptions::default());
    assert!(analysis.footprints.iter().all(|f| f.constrained));
    assert!(
        !analysis.independent(0, 1),
        "axiom-constrained writes must stay conservatively ordered"
    );
}
