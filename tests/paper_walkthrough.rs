//! Replays every worked example in the paper, end to end, and asserts the
//! results the paper states.
//!
//! * §3.1 — the five example LDML statements parse.
//! * §3.2 — inserting `a ∨ b` creates three models; `T` vs `g ∨ ¬g`.
//! * §3.3 — the non-branching MODIFY example (models `{p_a, b, a′}` and
//!   `{p_a, a}`) and the branching example (four alternative worlds), both
//!   produced through GUA itself.
//! * §3.4 — the equivalence examples around Theorems 2–4.
//! * §3.5 — the spurious-equivalence example and the type-axiom layer.

use winslett::db::{DbOptions, LogicalDatabase};
use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::{equivalent_brute, equivalent_updates, parse_update, Update};
use winslett::logic::{AtomTable, Formula, ModelLimit, ParseContext, Vocabulary, Wff};
use winslett::theory::Theory;

/// §3.1: the paper's example statements all parse against the
/// Orders/InStock schema.
#[test]
fn section_3_1_example_statements_parse() {
    let statements = [
        "MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE T & Orders(700,32,9)",
        "DELETE Orders(700,32,9) WHERE T & Orders(700,32,9)",
        "INSERT Orders(800,32,1000) WHERE T & Orders(800,32,100)",
        "INSERT F WHERE !InStock(32,1)",
        "INSERT !InStock(32,1) WHERE T",
    ];
    let mut vocab = Vocabulary::new();
    let mut atoms = AtomTable::new();
    for src in statements {
        let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
        parse_update(src, &mut ctx).unwrap_or_else(|e| panic!("`{src}` failed: {e}"));
    }
}

/// §3.2: "If we insert a ∨ b into M … three models are created …
/// regardless of whether a or b were true or false in M originally."
#[test]
fn section_3_2_insert_disjunction_three_models() {
    for (a0, b0) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        if a0 {
            t.assert_atom(a);
        } else {
            t.assert_not_atom(a);
        }
        if b0 {
            t.assert_atom(b);
        } else {
            t.assert_not_atom(b);
        }
        let mut engine = GuaEngine::with_defaults(t);
        engine
            .apply(&Update::insert(
                Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                Wff::t(),
            ))
            .unwrap();
        let worlds = engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap();
        assert_eq!(worlds.len(), 3, "start state ({a0},{b0})");
    }
}

/// §3.2: inserting `T` reports no change; inserting `g ∨ ¬g` reports that
/// g is now unknown.
#[test]
fn section_3_2_t_versus_g_or_not_g() {
    let build = || {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let cg = t.constant("g");
        let g = t.atom(r, &[cg]);
        t.assert_atom(g);
        (t, g)
    };
    // INSERT T: nothing changes.
    let (t, _) = build();
    let mut engine = GuaEngine::with_defaults(t);
    engine.apply(&Update::insert(Wff::t(), Wff::t())).unwrap();
    assert_eq!(
        engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap()
            .len(),
        1
    );
    // INSERT g ∨ ¬g: the valuation of g becomes unknown.
    let (t, g) = build();
    let mut engine = GuaEngine::with_defaults(t);
    engine
        .apply(&Update::insert(
            Formula::Or(vec![Wff::Atom(g), Wff::Atom(g).not()]),
            Wff::t(),
        ))
        .unwrap();
    assert_eq!(
        engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap()
            .len(),
        2
    );
}

/// §3.3, non-branching: theory {a, a∨b}, update MODIFY a TO BE a′ WHERE
/// b ∧ a; the new alternative worlds are {b, a′} and {a}.
#[test]
fn section_3_3_nonbranching_example() {
    let mut t = Theory::new();
    let r = t.declare_relation("Tup", 1).unwrap();
    let ca = t.constant("a");
    let cb = t.constant("b");
    let ca2 = t.constant("a'");
    let a = t.atom(r, &[ca]);
    let b = t.atom(r, &[cb]);
    let a2 = t.atom(r, &[ca2]);
    t.assert_atom(a);
    t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
    // The paper expresses it as INSERT ¬a ∧ a′ WHERE b ∧ a.
    let u = Update::insert(
        Formula::And(vec![Wff::Atom(a).not(), Wff::Atom(a2)]),
        Formula::And(vec![Wff::Atom(b), Wff::Atom(a)]),
    );
    let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::None));
    engine.apply(&u).unwrap();
    let mut worlds: Vec<Vec<String>> = engine
        .theory
        .alternative_worlds(ModelLimit::default())
        .unwrap()
        .iter()
        .map(|w| engine.theory.format_world(w))
        .collect();
    worlds.sort();
    assert_eq!(
        worlds,
        vec![
            vec!["Tup(a')".to_string(), "Tup(b)".to_string()],
            vec!["Tup(a)".to_string()],
        ]
    );
}

/// §3.3, branching: theory {a, a∨b}, update MODIFY a TO BE c ∨ a WHERE
/// b ∧ a; four alternative worlds result: {a}, {b,c}, {b,a}, {b,c,a}.
/// "The non-axiomatic section of T′ can be simplified to the two wffs
/// a ∨ b and b → (c ∨ a)" — we also check our simplifier's output is
/// logically equivalent to that.
#[test]
fn section_3_3_branching_example() {
    let mut t = Theory::new();
    let r = t.declare_relation("Tup", 1).unwrap();
    let ca = t.constant("a");
    let cb = t.constant("b");
    let cc = t.constant("c");
    let a = t.atom(r, &[ca]);
    let b = t.atom(r, &[cb]);
    let c = t.atom(r, &[cc]);
    t.assert_atom(a);
    t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
    let u = Update::modify(
        a,
        Formula::Or(vec![Wff::Atom(c), Wff::Atom(a)]),
        Wff::Atom(b),
    );
    let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::Full));
    engine.apply(&u).unwrap();
    let mut worlds: Vec<Vec<String>> = engine
        .theory
        .alternative_worlds(ModelLimit::default())
        .unwrap()
        .iter()
        .map(|w| engine.theory.format_world(w))
        .collect();
    worlds.sort();
    assert_eq!(
        worlds,
        vec![
            vec!["Tup(a)".to_string()],
            vec!["Tup(a)".to_string(), "Tup(b)".to_string()],
            vec![
                "Tup(a)".to_string(),
                "Tup(b)".to_string(),
                "Tup(c)".to_string()
            ],
            vec!["Tup(b)".to_string(), "Tup(c)".to_string()],
        ]
    );
    // REPRODUCTION FINDING (documented in EXPERIMENTS.md): the paper claims
    // this section "can be simplified to the two wffs a ∨ b and
    // b → (c ∨ a)" — but that simplified form admits a FIFTH world {a, c}:
    // when b is false it no longer pins c to its pre-update value, whereas
    // the full theory's frame formula ¬(b ∧ p_a) → (p_c ↔ c) does. The
    // paper's suggested simplification is therefore not world-preserving;
    // ours is (asserted above by the exact four-world check).
    let paper_simplified: Vec<Wff> = vec![
        Wff::or2(Wff::Atom(a), Wff::Atom(b)),
        Wff::implies(Wff::Atom(b), Wff::or2(Wff::Atom(c), Wff::Atom(a))),
    ];
    let mut ref_theory = engine.theory.clone();
    ref_theory.store.replace_all(&paper_simplified);
    let paper_worlds = ref_theory
        .alternative_worlds(ModelLimit::default())
        .unwrap();
    assert_eq!(paper_worlds.len(), 5, "the paper's form admits {{a,c}} too");
    let ours = engine
        .theory
        .alternative_worlds(ModelLimit::default())
        .unwrap();
    assert_eq!(ours.len(), 4);
    assert!(paper_worlds.iter().all(|w| {
        ours.contains(w)
            || engine.theory.format_world(w) == vec!["Tup(a)".to_string(), "Tup(c)".to_string()]
    }));
}

/// §3.4 examples: `INSERT p WHERE T` vs `INSERT p ∨ T WHERE T` differ;
/// `INSERT p WHERE p∧q` and `INSERT q WHERE p∧q` are equivalent.
#[test]
fn section_3_4_equivalence_examples() {
    let mut vocab = Vocabulary::new();
    let mut atoms = AtomTable::new();
    let mut ctx = ParseContext::permissive(&mut vocab, &mut atoms);
    let p = match winslett::logic::parse_wff("p", &mut ctx).unwrap() {
        Formula::Atom(id) => id,
        _ => unreachable!(),
    };
    let q = match winslett::logic::parse_wff("q", &mut ctx).unwrap() {
        Formula::Atom(id) => id,
        _ => unreachable!(),
    };
    let n = atoms.len();

    let b1 = Update::insert(Wff::Atom(p), Wff::t());
    let b2 = Update::insert(Formula::Or(vec![Wff::Atom(p), Wff::t()]), Wff::t());
    assert!(!equivalent_updates(&b1, &b2, n).unwrap().equivalent);
    assert!(!equivalent_brute(&b1, &b2, n).unwrap());

    let sel = Formula::And(vec![Wff::Atom(p), Wff::Atom(q)]);
    let b3 = Update::insert(Wff::Atom(p), sel.clone());
    let b4 = Update::insert(Wff::Atom(q), sel);
    assert!(equivalent_updates(&b3, &b4, n).unwrap().equivalent);
    assert!(equivalent_brute(&b3, &b4, n).unwrap());
}

/// §3.5's spurious-equivalence example: over a language with one 2-place
/// predicate and two attributes, `INSERT F WHERE T` and
/// `INSERT P₁(c₁,c₂) ∧ ¬A₁(c₁) ∧ ¬A₂(c₁) WHERE T` agree on every theory
/// *with those type axioms* (both wipe all worlds) — but they are NOT
/// equivalent as updates, which is exactly why the definition quantifies
/// over language extensions. Our decider, which works extension-agnostically
/// per Theorem 6, must report them inequivalent.
#[test]
fn section_3_5_spurious_equivalence() {
    let mut t = Theory::new();
    let a1 = t.declare_attribute("A1").unwrap();
    let a2 = t.declare_attribute("A2").unwrap();
    let p1 = t.declare_typed_relation("P1", &[a1, a2]).unwrap();
    let c1 = t.constant("c1");
    let c2 = t.constant("c2");
    let tup = t.atom(p1, &[c1, c2]);
    let a1c1 = t.atom(a1, &[c1]);
    let a2c1 = t.atom(a2, &[c1]);

    let b1 = Update::insert(Wff::f(), Wff::t());
    let b2 = Update::insert(
        Formula::And(vec![
            Wff::Atom(tup),
            Wff::Atom(a1c1).not(),
            Wff::Atom(a2c1).not(),
        ]),
        Wff::t(),
    );
    // Not equivalent in general (Theorem 6 / extension quantification).
    assert!(
        !equivalent_updates(&b1, &b2, t.num_atoms())
            .unwrap()
            .equivalent
    );
    assert!(!equivalent_brute(&b1, &b2, t.num_atoms()).unwrap());

    // Yet on THIS typed theory both wipe the worlds (the spurious
    // agreement): b2's inserted world violates P1's type axiom.
    t.assert_not_atom(tup);
    t.assert_not_atom(a1c1);
    t.assert_not_atom(a2c1);
    for b in [&b1, &b2] {
        let mut engine = GuaEngine::with_defaults(t.clone());
        engine.apply(b).unwrap();
        assert!(
            engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap()
                .is_empty(),
            "update {b:?} should wipe all worlds under the type axioms"
        );
    }
}

/// The §3.5 widening layer as exposed by the façade: INSERT R(a,b,c)
/// becomes INSERT R(a,b,c) ∧ A₁(a) ∧ A₂(b) ∧ A₃(c).
#[test]
fn section_3_5_widening_layer() {
    let mut db = LogicalDatabase::with_options(DbOptions::default());
    let a1 = db.declare_attribute("A1").unwrap();
    let a2 = db.declare_attribute("A2").unwrap();
    let a3 = db.declare_attribute("A3").unwrap();
    db.declare_typed_relation("R", &[a1, a2, a3]).unwrap();
    db.execute("INSERT R(a,b,c) WHERE T").unwrap();
    assert!(db.is_certain("R(a,b,c)").unwrap());
    assert!(db.is_certain("A1(a) & A2(b) & A3(c)").unwrap());
}
