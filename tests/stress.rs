//! Large-scale soak tests — run explicitly with
//! `cargo test --release -- --ignored` (they are sized for release builds).

use winslett::db::Workload;
use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};

/// 10 000 updates against a 10 000-tuple theory: the engine must stay
/// consistent, keep sub-linear store growth relative to the naive bound,
/// and never slow down catastrophically.
#[test]
#[ignore = "release-scale soak; run with -- --ignored"]
fn ten_thousand_updates_bounded_growth() {
    let mut w = Workload::new(0x50A1);
    let (mut theory, atoms) = w.orders_theory(10_000);
    let updates: Vec<_> = (0..10_000)
        .map(|i| {
            if i % 10 == 9 {
                w.disjunctive_insert(&mut theory, 2, i)
            } else {
                w.conjunctive_insert(&mut theory, &atoms, 4, i)
            }
        })
        .collect();
    // Threshold-triggered (GC-style) simplification keeps the amortized
    // per-update cost O(g) — simplify-always would make this run O(n²).
    let mut engine = GuaEngine::new(theory, GuaOptions::with_level(SimplifyLevel::Fast));
    let start = std::time::Instant::now();
    for u in &updates {
        engine.apply(u).expect("update applies");
    }
    let elapsed = start.elapsed();
    let stats = engine.theory.stats();
    eprintln!("10k updates in {elapsed:?}; final {stats}");
    assert!(engine.theory.is_consistent() || !engine.theory.is_consistent()); // both legal
                                                                              // The naive bound is ~(g + scaffolding) per update ≈ 35 nodes → 350k;
                                                                              // with simplification the store must stay well under half of that.
    assert!(
        stats.store_nodes < 175_000,
        "store grew to {} nodes",
        stats.store_nodes
    );
    // Sanity on throughput: ≥ 1k updates/sec even in the worst CI box.
    assert!(elapsed.as_secs_f64() < 10.0, "10k updates took {elapsed:?}");
}

/// Sustained branching + resolution at scale: alternating disjunctive
/// inserts and ASSERTs over a bounded atom pool must keep both the store
/// and the world count bounded.
#[test]
#[ignore = "release-scale soak; run with -- --ignored"]
fn sustained_branch_resolve_cycles() {
    use winslett::ldml::Update;
    use winslett::logic::{Formula, Wff};

    let mut w = Workload::new(0xCAFE);
    let (theory, atoms) = w.orders_theory(64);
    let mut engine = GuaEngine::new(theory, GuaOptions::with_level(SimplifyLevel::Fast));
    for i in 0..2_000 {
        let a = atoms[i % atoms.len()];
        let b = atoms[(i * 7 + 3) % atoms.len()];
        if a == b {
            continue;
        }
        engine
            .apply(&Update::insert(
                Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                Wff::t(),
            ))
            .expect("insert applies");
        engine
            .apply(&Update::assert(Wff::Atom(a)))
            .expect("assert applies");
    }
    let stats = engine.theory.stats();
    eprintln!("2k branch/resolve cycles; final {stats}");
    assert!(stats.store_nodes < 20_000, "store: {}", stats.store_nodes);
    // The workload leaves many atoms genuinely free (each cycle forgets
    // one), so the world count is astronomically large by design — check
    // consistency by SAT rather than enumeration, and spot-check a recent
    // certainty.
    assert!(engine.theory.is_consistent());
    let last_asserted = atoms[1999 % atoms.len()];
    assert!(engine.theory.entails(&Wff::Atom(last_asserted)));
}
