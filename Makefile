# Development pipeline. `make ci` is the gate: format check, clippy with
# warnings denied, a release build, the test suite, the WAL
# fault-injection suite, the ldml-lint self-check over the example
# scripts, the bench smoke run (which validates the BENCH_*.json
# shapes), and the server smoke run (a scripted client session against
# an in-process winslett-serve instance).

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test faults lint lint-conflicts bench-smoke serve-smoke compaction-smoke replication-smoke connections-smoke txn-smoke

ci: fmt-check clippy build test faults lint lint-conflicts bench-smoke compaction-smoke replication-smoke connections-smoke txn-smoke serve-smoke
	@echo "ci: all checks passed"

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	# unwrap/expect gate: crates/analyze and crates/server carry
	# `#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]`,
	# so this lib/bin pass (no cfg(test)) promotes any hit to an error.
	$(CARGO) clippy -p winslett-analyze -p winslett-serve --lib --bins -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Exhaustive crash sweep: kills WAL writes at every byte boundary and
# checks recovery lands on a legal prefix state. Release mode — the
# sweep runs thousands of open/replay cycles.
faults:
	$(CARGO) test --release -q -p winslett --test wal_recovery

lint:
	$(CARGO) run --release -q -p winslett-analyze --bin ldml-lint -- --self-check examples/*.ldml

# The footprint/commutativity pass (W007–W010) over the same scripts:
# emitted conflict codes must match each script's `-- expect-conflicts:`
# annotations exactly.
lint-conflicts:
	$(CARGO) run --release -q -p winslett-analyze --bin ldml-lint -- --conflicts --self-check examples/*.ldml

# Small E7-style workload through the parallel worlds engine, the WAL
# commit-latency run, the query-session run, and the server load run;
# the harness writes the BENCH_*.json files and fails if any shape does
# not validate.
bench-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- worlds wal query server conflicts --quick --out target/bench-smoke

# Short compaction-on vs compaction-off run of the sustained-update
# stream; the harness writes BENCH_compaction.json and fails unless the
# compacted run plateaus, the uncompacted one grows, and every sampled
# probe verdict matches between the two.
compaction-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- compaction --quick --out target/bench-smoke

# Boots a primary plus two in-process WAL-shipping replicas, runs the
# pinned-read sweep under a live writer, and re-runs the kill-byte
# catch-up sweep; the harness writes BENCH_replication.json and fails
# unless every sampled replica verdict matches the serial prefix and
# every kill point recovered consistently.
replication-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- replication --quick --out target/bench-smoke

# Short concurrent-socket run (small tiers) of the epoll reactor vs the
# --threaded baseline; the harness writes BENCH_connections.json and
# fails unless the shape validates — in particular, unless the epoll
# rows actually held every socket their tier asked for.
connections-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- connections --quick --out target/bench-smoke

# Short three-shape transaction run (plain vs disjoint vs contended);
# the harness writes BENCH_txn.json and fails unless the shape
# validates — in particular, unless disjoint-footprint transactions
# sustained the plain batched baseline, no disjoint transaction ever
# hit the lock table, and every side's reopened storage replayed to
# the server's final verdicts.
txn-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- txn --quick --out target/bench-smoke

# Boots a winslett-serve instance on an ephemeral port and drives a full
# scripted client session against it: schema declares, an LDML update, a
# pinned snapshot query racing a later write, stats, checkpoint, graceful
# shutdown, and a reopen of the flushed storage. Asserts every response.
serve-smoke:
	$(CARGO) run --release -q -p winslett-serve --bin winslett-serve -- smoke
