# Development pipeline. `make ci` is the gate: format check, clippy with
# warnings denied, a release build, the test suite, the ldml-lint
# self-check over the example scripts, and the worlds-bench smoke run
# (which validates the BENCH_worlds.json shape).

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test lint bench-smoke

ci: fmt-check clippy build test lint bench-smoke
	@echo "ci: all checks passed"

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) run --release -q -p winslett-analyze --bin ldml-lint -- --self-check examples/*.ldml

# Small E7-style workload through the parallel worlds engine; the harness
# writes BENCH_worlds.json and fails if its shape does not validate.
bench-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- worlds --quick --out target/bench-smoke
