# Development pipeline. `make ci` is the gate: format check, clippy with
# warnings denied, a release build, the test suite, the WAL
# fault-injection suite, the ldml-lint self-check over the example
# scripts, and the bench smoke run (which validates the
# BENCH_worlds.json and BENCH_wal.json shapes).

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test faults lint bench-smoke

ci: fmt-check clippy build test faults lint bench-smoke
	@echo "ci: all checks passed"

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Exhaustive crash sweep: kills WAL writes at every byte boundary and
# checks recovery lands on a legal prefix state. Release mode — the
# sweep runs thousands of open/replay cycles.
faults:
	$(CARGO) test --release -q -p winslett --test wal_recovery

lint:
	$(CARGO) run --release -q -p winslett-analyze --bin ldml-lint -- --self-check examples/*.ldml

# Small E7-style workload through the parallel worlds engine plus the WAL
# commit-latency run; the harness writes BENCH_worlds.json and
# BENCH_wal.json and fails if either shape does not validate.
bench-smoke:
	$(CARGO) run --release -q -p winslett-bench --bin harness -- worlds wal query --quick --out target/bench-smoke
