# Development pipeline. `make ci` is the gate: format check, clippy with
# warnings denied, a release build, the test suite, and the ldml-lint
# self-check over the example scripts.

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test lint

ci: fmt-check clippy build test lint
	@echo "ci: all checks passed"

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) run --release -q -p winslett-analyze --bin ldml-lint -- --self-check examples/*.ldml
