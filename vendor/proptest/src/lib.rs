//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`), range and
//! tuple strategies, [`Just`], `any::<T>()`, `prop::collection::vec`,
//! simple `.{lo,hi}`-style string strategies, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number and the assertion message. Generation is deterministic
//! per test (the RNG is seeded from the test's module path and name).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ----- deterministic rng ----------------------------------------------------

/// Deterministic splitmix64 generator; seeded per test from its name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ----- core strategy abstraction --------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value. `size` loosely bounds recursive depth.
    fn gen(&self, rng: &mut TestRng, size: u32) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `self` is the leaf case and `f` wraps an
    /// inner strategy into one more level of structure. The depth bound is
    /// honoured by nesting `depth` alternation layers, so generation always
    /// terminates. `desired_size` and `expected_branch_size` are accepted
    /// for API compatibility but unused (no shrinking here).
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            cur = union(vec![base.clone(), f(cur).boxed()]).boxed();
        }
        cur
    }
}

/// Object-safe adapter so strategies can live behind `Rc<dyn …>`.
trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng, size: u32) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng, size: u32) -> S::Value {
        self.gen(rng, size)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng, size: u32) -> T {
        self.0.dyn_gen(rng, size)
    }
}

// ----- combinators ----------------------------------------------------------

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen(&self, rng: &mut TestRng, size: u32) -> O {
        (self.f)(self.inner.gen(rng, size))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng, _size: u32) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among the given strategies. At `size == 0` the first
/// option is forced, which makes `prop_recursive` towers bottom out.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

/// Builds a [`Union`] over type-erased strategies (used by `prop_oneof!`).
pub fn union<T>(options: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!options.is_empty(), "union requires at least one strategy");
    Union { options }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng, size: u32) -> T {
        let idx = if size == 0 {
            0
        } else {
            rng.below(self.options.len() as u64) as usize
        };
        self.options[idx].gen(rng, size.saturating_sub(1))
    }
}

// ----- ranges, tuples, strings ----------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng, _size: u32) -> $t {
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng, _size: u32) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo >= hi {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut TestRng, size: u32) -> Self::Value {
                ($(self.$idx.gen(rng, size),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// String-pattern strategy. Only the `.{lo,hi}` regex shape is interpreted
/// (a string of `lo..=hi` arbitrary characters, biased toward characters
/// that stress this workspace's parsers); any other pattern falls back to
/// 0–16 arbitrary characters.
impl Strategy for &'static str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng, _size: u32) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi.saturating_sub(lo) as u64).saturating_add(1)) as usize;
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = rest.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

fn random_char(rng: &mut TestRng) -> char {
    const STRESS: &[char] = &[
        '(', ')', '&', '|', '!', '-', '>', '<', ',', '.', '\'', '_', ' ', '∧', '∨', '¬', '→', '↔',
        '"', '\\',
    ];
    match rng.below(4) {
        0 => STRESS[rng.below(STRESS.len() as u64) as usize],
        1 => (b'a' + rng.below(26) as u8) as char,
        2 => (b'A' + rng.below(26) as u8) as char,
        _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('x'),
    }
}

// ----- any / Arbitrary ------------------------------------------------------

/// Types with a canonical default strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn gen(&self, rng: &mut TestRng, _size: u32) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $any:ident),*) => {$(
        /// Strategy behind `any::<$t>()`.
        pub struct $any;

        impl Strategy for $any {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng, _size: u32) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $any;

            fn arbitrary() -> $any {
                $any
            }
        }
    )*};
}

impl_arbitrary_int! {
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize
}

// ----- prop:: namespace -----------------------------------------------------

/// Namespaced strategy constructors (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `Vec` of values from `element`, with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn gen(&self, rng: &mut TestRng, size: u32) -> Vec<S::Value> {
                let len = Strategy::gen(&self.size, rng, size);
                (0..len).map(|_| self.element.gen(rng, size)).collect()
            }
        }
    }
}

// ----- runner config --------------------------------------------------------

/// Failure payload for a single property case. Real proptest distinguishes
/// failures from rejections; here a case either passes or fails with a
/// message, so a plain `String` carries everything. `prop_assert!` returns
/// this, and `?` works inside `proptest!` bodies on
/// `Result<(), TestCaseError>` helpers.
pub type TestCaseError = String;

/// Result type for fallible helpers called from `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration consumed by the `proptest!` macro.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ----- macros ---------------------------------------------------------------

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a `proptest!` body; failures abort the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __pt_l,
                __pt_r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a test that draws fresh arguments per case and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $cfg;
                let mut __pt_rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let ($($arg,)+) = ($($strat,)+);
                for __pt_case in 0..__pt_config.cases {
                    let __pt_size = 1 + (__pt_case % 24);
                    let __pt_result = {
                        $(let $arg = $crate::Strategy::gen(&$arg, &mut __pt_rng, __pt_size);)+
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    if let ::std::result::Result::Err(__pt_message) = __pt_result {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __pt_case,
                            __pt_message
                        );
                    }
                }
            }
        )*
    };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, union, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = Strategy::gen(&(3u32..17), &mut rng, 8);
            assert!((3..17).contains(&v));
            let w = Strategy::gen(&(0usize..1), &mut rng, 8);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn recursive_tower_is_depth_bounded() {
        let leaf = (0u32..10).prop_map(Tree::Leaf).boxed();
        let tree = leaf.prop_recursive(4, 32, 3, |inner| {
            prop::collection::vec(inner, 2..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::from_name("tree");
        for _ in 0..100 {
            let t = Strategy::gen(&tree, &mut rng, 16);
            assert!(depth(&t) <= 4, "depth {} for {:?}", depth(&t), t);
        }
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = crate::TestRng::from_name("strings");
        for _ in 0..100 {
            let s = Strategy::gen(&".{0,12}", &mut rng, 8);
            assert!(s.chars().count() <= 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// The macro pipeline itself: args bind, asserts run.
        #[test]
        fn macro_smoke(a in 0u32..64, b in any::<bool>(), s in ".{0,8}",) {
            prop_assert!(a < 64, "a out of range: {}", a);
            prop_assert_eq!(b, b);
            prop_assert!(s.chars().count() <= 8);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_tuples(pair in (0u32..4, prop_oneof![Just(10u32), Just(20u32)])) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 == 10 || pair.1 == 20);
        }
    }
}
