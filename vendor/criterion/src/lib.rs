//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! workspace's benches use, with a simple wall-clock measurement: each
//! `iter` call auto-scales its iteration count until the batch takes a few
//! milliseconds, then reports nanoseconds per iteration on stdout. There is
//! no statistics engine, no HTML report, and no comparison with prior runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sampling here is automatic.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.text));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark as `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the displayed parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Throughput hints; accepted but not used in reports.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { measured: None }
    }

    /// Times `routine`, growing the iteration count until the batch is long
    /// enough to measure (or a cap is reached).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 13 {
                self.measured = Some((iters, elapsed));
                return;
            }
            iters *= 2;
        }
    }

    fn report(&self, id: &str) {
        match self.measured {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {id:<48} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench {id:<48} (no measurement)"),
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
