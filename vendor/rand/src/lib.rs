//! Offline stand-in for `rand`.
//!
//! Provides deterministic, seedable PRNGs with the `Rng`/`SeedableRng` call
//! surface the workspace uses (`seed_from_u64`, `gen_range`, `gen_bool`).
//! The generator is xoshiro256**, seeded via SplitMix64 — statistically fine
//! for workload generation and tests, not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed ^ 0xA5A5_A5A5_A5A5_A5A5))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0usize..17);
            let y = b.gen_range(0usize..17);
            assert_eq!(x, y);
            assert!(x < 17);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let trues = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious balance: {trues}");
    }
}
