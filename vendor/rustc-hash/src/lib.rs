//! Offline stand-in for `rustc-hash`: the `FxHasher` polynomial hash and the
//! `FxHashMap`/`FxHashSet` aliases. The container this workspace builds in has
//! no access to crates.io, so the handful of external crates the workspace
//! uses are vendored with just the API surface the workspace needs.

use std::hash::{BuildHasherDefault, Hasher};

/// Fx hash state: multiply-and-rotate over machine words.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<String> = FxHashSet::default();
        assert!(s.insert("a".into()));
        assert!(!s.insert("a".into()));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"hello world, this is a test");
        h2.write(b"hello world, this is a test");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello world, this is a tesu");
        assert_ne!(h1.finish(), h3.finish());
    }
}
