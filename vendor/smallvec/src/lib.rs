//! Offline stand-in for `smallvec`.
//!
//! The real crate stores short vectors inline; this stand-in keeps the same
//! API over a plain `Vec`. Call sites compile unchanged — only the inline
//! storage optimization is absent, which no workspace code relies on for
//! correctness.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing-array marker: `SmallVec<[T; N]>` mirrors the real crate's type
/// parameter shape.
pub trait Array {
    /// Element type.
    type Item;
    /// Inline capacity (advisory here).
    fn size() -> usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;

    fn size() -> usize {
        N
    }
}

/// A vector with the `smallvec::SmallVec` API, backed by `Vec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector.
    #[inline]
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Creates an empty vector with reserved capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Copies a slice into a new vector.
    #[inline]
    pub fn from_slice(slice: &[A::Item]) -> Self
    where
        A::Item: Clone,
    {
        SmallVec {
            inner: slice.to_vec(),
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Removes and returns the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }

    /// Converts into a plain `Vec`.
    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];

    #[inline]
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array, B: Array> PartialEq<SmallVec<B>> for SmallVec<A>
where
    A::Item: PartialEq<B::Item>,
{
    fn eq(&self, other: &SmallVec<B>) -> bool {
        self.inner[..] == other.inner[..]
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.inner.partial_cmp(&other.inner)
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// `smallvec![]` construction macro, mirroring `vec![]`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut v: SmallVec<[u32; 3]> = SmallVec::from_slice(&[1, 2]);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.iter().sum::<u32>(), 6);
        let w: SmallVec<[u32; 3]> = [1, 2, 3].into_iter().collect();
        assert_eq!(v, w);
    }
}
