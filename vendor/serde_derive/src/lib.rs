//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! in-tree `serde` stand-in's `to_value`/`from_value` traits, using only the
//! compiler's `proc_macro` API (no `syn`/`quote`, which are unavailable
//! offline). Supports the shapes this workspace actually derives on:
//! non-generic named structs, tuple structs, and enums with unit or tuple
//! variants. The only `#[serde(...)]` helper attribute recognized is
//! `#[serde(default)]` on named struct fields: a missing field
//! deserializes to `Default::default()` instead of erroring.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: tolerate absence during deserialization.
    default: bool,
}

enum Item {
    /// Named-field struct: field identifiers in declaration order.
    Struct { name: String, fields: Vec<Field> },
    /// Tuple struct with `n` fields.
    TupleStruct { name: String, arity: usize },
    /// Enum: `(variant name, tuple arity)`, arity 0 for unit variants.
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pushes.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    emit(&body)
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let (f, default) = (&f.name, f.default);
                    if default {
                        format!(
                            "{f}: match ::serde::field(entries, \"{f}\") {{\n\
                                 ::std::result::Result::Ok(v) => \
                                     ::serde::Deserialize::from_value(v)?,\n\
                                 ::std::result::Result::Err(_) => \
                                     ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::field(entries, \"{f}\")?)?,"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let entries = v.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join("\n")
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(v)?))"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| \
                         ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                     if items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::new(\
                             \"tuple arity mismatch for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, n)| *n == 0)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_variants: Vec<&(String, usize)> =
                variants.iter().filter(|(_, n)| *n > 0).collect();
            let data_arms: Vec<String> = data_variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(val)?)),"
                        )
                    } else {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                                 let items = val.as_array().ok_or_else(|| \
                                     ::serde::DeError::new(\"expected array for {name}::{v}\"))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::new(\
                                         \"variant arity mismatch for {name}::{v}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            let val_binder = if data_variants.is_empty() {
                "_val"
            } else {
                "val"
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (key, {val_binder}) = &entries[0];\n\
                                 match key.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"expected a variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    emit(&body)
}

fn emit(body: &str) -> TokenStream {
    let wrapped = format!("#[automatically_derived]\n{body}");
    wrapped
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive stand-in generated invalid code: {e}\n{wrapped}"))
}

// ----- item parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic type `{name}`");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            other => panic!("serde_derive stand-in: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: enum_variants(g.stream()),
            },
            other => panic!("serde_derive stand-in: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Whether the attribute starting at `tokens[i]` (a `#` followed by a
/// bracketed group) is `#[serde(default)]`.
fn is_serde_default_attr(tokens: &[TokenTree], i: usize) -> bool {
    let Some(TokenTree::Group(g)) = tokens.get(i + 1) else {
        return false;
    };
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` field lists, angle-bracket aware, noting
/// `#[serde(default)]` markers.
fn named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let mut default = false;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            default |= is_serde_default_attr(&tokens, i);
            i += 2; // '#' and the bracketed group
        }
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stand-in: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stand-in: expected ':' after field, got {other:?}"),
        }
        let mut angle = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts comma-separated entries at the top level of a tuple-struct or
/// tuple-variant field list (angle-bracket aware, trailing comma tolerant).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_segment = false;
    let mut angle = 0i64;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                in_segment = false;
                continue;
            }
            _ => {}
        }
        if !in_segment {
            count += 1;
            in_segment = true;
        }
    }
    count
}

/// Parses enum variants as `(name, tuple arity)` pairs.
fn enum_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stand-in: expected variant name, got {other:?}"),
        };
        i += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive stand-in: struct-like variant `{name}` unsupported")
                }
                _ => {}
            }
        }
        // Skip to the variant separator (covers explicit discriminants).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, arity));
    }
    variants
}
