//! Offline stand-in for `serde_json`: JSON text ↔ the in-tree `serde`
//! stand-in's [`serde::Value`] tree, with `to_string`, `to_string_pretty`,
//! and `from_str` front doors.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ----- writer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        src: s,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("JSON error at byte {}: {}", self.pos, message))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.src[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[');
        self.skip_ws();
        let mut items = Vec::new();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                self.skip_ws();
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            return Err(self.err("expected ',' or ']' in array"));
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{');
        self.skip_ws();
        let mut entries = Vec::new();
        if self.eat(b'}') {
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                self.skip_ws();
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Object(entries));
            }
            return Err(self.err("expected ',' or '}' in object"));
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                self.src
                    .get(start..self.pos)
                    .ok_or_else(|| self.err("invalid UTF-8 boundary"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("version".into(), Value::U64(1)),
            (
                "items".into(),
                Value::Array(vec![
                    Value::Str("a \"quoted\" name\n".into()),
                    Value::Null,
                    Value::Bool(true),
                    Value::I64(-3),
                ]),
            ),
        ]);
        for rendered in [
            to_string(&WrappedValue(v.clone())).unwrap(),
            to_string_pretty(&WrappedValue(v.clone())).unwrap(),
        ] {
            let back = parse_value(&rendered).unwrap();
            assert_eq!(back, v, "failed on: {rendered}");
        }
    }

    struct WrappedValue(Value);

    impl Serialize for WrappedValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
