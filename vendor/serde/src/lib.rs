//! Offline stand-in for `serde`.
//!
//! The real serde is visitor-based; this stand-in routes everything through
//! one in-memory [`Value`] tree, which is all the workspace needs (its only
//! serialization consumer is `serde_json`). `#[derive(Serialize,
//! Deserialize)]` is provided by the sibling `serde_derive` stand-in and
//! targets these traits.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the interchange format between the derive
/// macros and `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`… or any non-negative count.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up a field in an object's entry list (derive-macro helper).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ----- primitive impls ------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            _ => Err(DeError::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<(String, usize)> = vec![("a".into(), 1)];
        assert_eq!(
            Vec::<(String, usize)>::from_value(&v.to_value()).unwrap(),
            v
        );
    }
}
